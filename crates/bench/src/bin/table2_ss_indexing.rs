//! Table 2: the impact of Seed Selection on *indexing* — construction
//! distance calls of the SN-built graph (hierarchical descent per
//! insertion, i.e. HNSW-style construction) vs the KS-built graph (random
//! warm-up seeds per insertion) on Deep at two tiers, plus the number of
//! additional queries the KS graph can answer before the SN graph
//! finishes building.
//!
//! Paper shape: SN costs more to build (182M extra dist calls at 1M,
//! 22.3B at 25GB ≈ 45K / 1.17M bonus queries for KS).
//!
//! ```sh
//! cargo run --release -p gass-bench --bin table2_ss_indexing
//! ```

use gass_bench::{num_queries, results_dir, small_tiers};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_core::nd::NdStrategy;
use gass_data::DatasetKind;
use gass_eval::{recall_at_k, Table};
use gass_graphs::{HnswIndex, HnswParams, IiGraph, IiParams};

fn main() {
    let k = 10;
    let mut table = Table::new(vec![
        "tier",
        "dists(SN build)",
        "dists(KS build)",
        "overhead(SN-KS)",
        "dists/query@hi-recall(KS)",
        "bonus_queries(KS)",
    ]);

    for tier in small_tiers() {
        let (base, queries) = DatasetKind::Deep.generate(tier.n, num_queries(), 21);
        let truth = gass_data::ground_truth(&base, &queries, k);

        // SN-construction graph: HNSW (hierarchy descent per insertion,
        // RND pruning — the paper's "SN-based graph").
        let sn_graph = HnswIndex::build(
            base.clone(),
            HnswParams { m: 12, ef_construction: 128, seed: 5, threads: 1 },
        );
        // KS-construction graph: the baseline II+RND with random build
        // seeds.
        let ks_graph = IiGraph::build(
            base.clone(),
            IiParams {
                max_degree: 24,
                beam_width: 128,
                nd: NdStrategy::Rnd,
                build_seeds: 8,
                seed: 5,
                threads: 1,
            },
        );

        let sn_build = sn_graph.build_report().dist_calcs;
        let ks_build = ks_graph.build_report().dist_calcs;
        let overhead = sn_build.saturating_sub(ks_build);

        // Per-query cost of the KS graph at its high-recall operating
        // point (L grown until recall >= 0.99 or the sweep ends).
        let mut per_query = 0u64;
        for l in [40usize, 80, 160, 320] {
            let counter = DistCounter::new();
            let params = QueryParams::new(k, l).with_seed_count(16);
            let mut recall = 0.0;
            for (qi, t) in truth.iter().enumerate() {
                let res = ks_graph.search(queries.get(qi as u32), &params, &counter);
                recall += recall_at_k(t, &res.neighbors, k);
            }
            recall /= truth.len() as f64;
            per_query = counter.get() / truth.len() as u64;
            if recall >= 0.99 {
                break;
            }
        }
        let bonus = overhead.checked_div(per_query).unwrap_or(0);

        table.row(vec![
            format!("Deep{}", tier.label),
            sn_build.to_string(),
            ks_build.to_string(),
            overhead.to_string(),
            per_query.to_string(),
            bonus.to_string(),
        ]);
        println!(
            "shape check Deep{} — SN build costs more than KS build: {}",
            tier.label,
            sn_build > ks_build
        );
    }
    table.emit(&results_dir(), "table2_ss_indexing").expect("write results");
}
