//! Extension experiment: serving throughput under cross-request
//! micro-batching vs per-request execution, measured through the real
//! `gass-serve` server with a pipelined open-loop load generator.
//!
//! Two server configurations over the *same* index and the same worker
//! pool — batched (`max_batch = 16` with a 100 us coalescing window) and
//! per-request (`max_batch = 1`: every request is its own dispatch, its
//! own `search_batch_parallel` call, and its own reply write+flush — no
//! cross-request coalescing anywhere) — are each swept over offered
//! arrival rates. A rate is *sustained* when the achieved throughput tracks the
//! offered rate, nothing is shed, and client-observed p99 stays under the
//! bound (10 ms). The acceptance shape: batched serving sustains ≥ 1.5×
//! the per-request max on the 100K tier, at identical recall@10 —
//! batching is observationally invisible, so both configurations answer
//! every query bit-identically and recall *must* match.
//!
//! A final run pushes the batched server far past saturation to show the
//! admission-control failure mode: excess load is shed with fast
//! `overloaded` rejections while the latency of *admitted* requests stays
//! bounded by the queue depth, instead of every request's latency growing
//! without bound.
//!
//! ## Load generator
//!
//! Open-loop means arrivals are scheduled on a wall clock, independent of
//! responses. Each connection is a sender/receiver thread pair: the
//! sender fires requests at their scheduled instants *without waiting for
//! replies* (the protocol pipelines; the server answers in request
//! order), and the receiver matches responses positionally, measuring
//! latency from the **scheduled** arrival — a slow server is charged for
//! the queueing it causes (no coordinated omission), and in-flight work
//! is bounded by the server's admission control, not by the number of
//! connections. Saturation is probed by overdriving (offering far more
//! than the server can serve and reading off the achieved rate), then the
//! sweep ladder brackets and bisects the max sustainable rate.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_serve
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_QUERIES` the recall probe.
//! Output: `results/ext_serve.json`.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::index::AnnIndex;
use gass_core::stats::Histogram;
use gass_eval::{recall_at_k, write_json, Table};
use gass_graphs::{HnswIndex, HnswParams};
use gass_serve::protocol::{decode_response, encode_request, queue_frame, read_frame};
use gass_serve::{serve, Client, QueryRequest, Request, Response, ServeConfig, ServerHandle};
use serde::Serialize;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const K: usize = 10;
/// Client connections. Few but pipelined: on the 1-core testbench every
/// load-generator thread competes with the server for the same core, and
/// per-connection reply coalescing scales with `max_batch / CONNS`.
const CONNS: usize = 2;
/// Sender pacing granularity: sleep past the next due arrival by up to
/// this much, then burst-send everything that has come due. Requests only
/// ever go out *late* (never early) and latency is measured from the
/// scheduled instant, so quantization charges the measurement — while
/// cutting sender sleep/wake syscalls from one per request to at most
/// `1/quantum` per second, which matters when the generator shares the
/// core with the server.
const PACE_QUANTUM: Duration = Duration::from_micros(1000);
/// The acceptance latency bound.
const P99_BOUND_US: u64 = 10_000;
/// Measurement window per swept rate.
const WINDOW_S: f64 = 4.0;
/// Overdriven offered rate for the saturation probe: far enough past
/// capacity to saturate the queue, but not so far that the readers spend
/// the core stamping `overloaded` rejections and bias the anchor low.
const PROBE_RATE: f64 = 16_000.0;

#[derive(Serialize)]
struct RatePoint {
    offered_qps: f64,
    achieved_qps: f64,
    sent: u64,
    completed: u64,
    shed: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_batch: f64,
    sustained: bool,
    attempts: u32,
}

#[derive(Serialize)]
struct ConfigRecord {
    config: &'static str,
    max_batch: usize,
    max_wait_us: u64,
    recall_at_10: f64,
    saturation_probe_qps: f64,
    sweep: Vec<RatePoint>,
    max_sustainable_qps: f64,
}

#[derive(Serialize)]
struct OverloadRecord {
    offered_qps: f64,
    sent: u64,
    completed: u64,
    shed: u64,
    shed_fraction: f64,
    admitted_p50_us: u64,
    admitted_p99_us: u64,
    admitted_p99_bounded: bool,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    n: usize,
    dim: usize,
    k: usize,
    beam_width: usize,
    rerank_factor: usize,
    quant: &'static str,
    workers: usize,
    queue_depth: usize,
    connections: usize,
    host_cores: usize,
    p99_bound_us: u64,
    window_s: f64,
    recall_identical: bool,
    speedup_sustainable_qps: f64,
    notes: &'static str,
    batched: ConfigRecord,
    per_request: ConfigRecord,
    overload: OverloadRecord,
}

/// Context for readers of the JSON: what the measured speedup does and
/// does not mean on this host.
const NOTES: &str = "Server, load generator, and OS share host_cores CPU core(s); \
    on a 1-core host both configurations are search-dominated (~50 us/query of the \
    ~66-75 us/query capacity budget), loopback syscalls are cheap, and p99 at the \
    sustained points is set largely by host scheduler noise, so run-to-run variance \
    of the sustained ratio is substantial. The batched advantage comes from the \
    interleaved multi-lane execution engine (COALESCE_LANES queries in lockstep \
    hiding dependent memory latency) plus per-wakeup amortization; its headroom \
    grows with core count and with index size relative to LLC.";

fn query_request(query: &[f32], beam: usize, rerank: usize) -> QueryRequest {
    QueryRequest {
        k: K,
        beam_width: beam,
        seed_count: 16,
        rerank_factor: rerank,
        deadline_us: 0,
        query: query.to_vec(),
    }
}

/// Pre-encoded query frames, so the hot sender loop does no encoding.
fn encode_frames(queries: &gass_core::VectorStore, beam: usize, rerank: usize) -> Vec<Vec<u8>> {
    (0..queries.len() as u32)
        .map(|qi| encode_request(&Request::Query(query_request(queries.get(qi), beam, rerank))))
        .collect()
}

/// One open-loop run at `rate` requests/s for `duration`, spread over
/// `CONNS` pipelined connections. Returns the merged client-side view
/// plus the server's batch accounting over the window.
fn open_loop(
    addr: SocketAddr,
    handle: &ServerHandle,
    frames: &Arc<Vec<Vec<u8>>>,
    rate: f64,
    duration: Duration,
) -> RatePoint {
    let before = handle.stats();
    // Connect (and let the server spawn its handler pairs) before the
    // clock starts.
    let streams: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).expect("nodelay");
            s
        })
        .collect();
    let total = (rate * duration.as_secs_f64()).ceil() as u64;
    let start = Instant::now() + Duration::from_millis(50);
    let shed = Arc::new(AtomicU64::new(0));
    let hist = Arc::new(Mutex::new(Histogram::new()));
    let mut joins = Vec::new();
    for (c, stream) in streams.into_iter().enumerate() {
        let frames = Arc::clone(frames);
        let shed = Arc::clone(&shed);
        let hist = Arc::clone(&hist);
        joins.push(std::thread::spawn(move || {
            // Connection c owns arrivals c, c+CONNS, c+2·CONNS, …
            let my_total = total.saturating_sub(c as u64).div_ceil(CONNS as u64);
            // Scheduled instants of in-flight requests, pushed before the
            // send; responses arrive in request order, so the receiver
            // pops positionally.
            let pending: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));
            let reader_stream = stream.try_clone().expect("clone stream");
            let receiver = {
                let pending = Arc::clone(&pending);
                let shed = Arc::clone(&shed);
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    let mut r = BufReader::new(reader_stream);
                    let mut local = Histogram::new();
                    let mut local_shed = 0u64;
                    for _ in 0..my_total {
                        let payload =
                            read_frame(&mut r).expect("read response").expect("server closed");
                        let at = pending.lock().unwrap().pop_front().expect("pending arrival");
                        // Hot path peeks the status byte instead of fully
                        // decoding the neighbor list — the receiver shares
                        // the core with the server, so per-response parse
                        // cost is measurement interference.
                        match payload.first() {
                            Some(0) => {
                                debug_assert_eq!(payload.get(1), Some(&b'q'));
                                // Latency from the *scheduled* arrival:
                                // queueing caused by a slow server (or a
                                // late sender) is charged, not omitted.
                                local.record(at.elapsed().as_micros() as u64);
                            }
                            Some(1) => local_shed += 1,
                            _ => panic!("unexpected response: {:?}", decode_response(&payload)),
                        }
                    }
                    shed.fetch_add(local_shed, Ordering::Relaxed);
                    hist.lock().unwrap().merge(&local);
                })
            };
            let mut w = BufWriter::new(stream);
            let at_of = |j: u64| {
                let i = c as u64 + j * CONNS as u64;
                start + Duration::from_secs_f64(i as f64 / rate)
            };
            let mut j = 0u64;
            while j < my_total {
                let at = at_of(j);
                let now = Instant::now();
                if at > now {
                    // Nothing due yet: oversleep the next arrival by the
                    // pacing quantum so one wakeup covers a quantum's
                    // worth of arrivals.
                    std::thread::sleep(at - now + PACE_QUANTUM);
                }
                // Burst-send everything that has come due; the frames
                // coalesce in the buffered writer and flush together.
                let now = Instant::now();
                while j < my_total && at_of(j) <= now {
                    pending.lock().unwrap().push_back(at_of(j));
                    let i = c as u64 + j * CONNS as u64;
                    let frame = &frames[(i % frames.len() as u64) as usize];
                    queue_frame(&mut w, frame).expect("send");
                    j += 1;
                }
                w.flush().expect("flush");
            }
            receiver.join().unwrap();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // Includes the drain tail past the send window: overdriven rates are
    // charged for the backlog they leave behind.
    let elapsed = start.elapsed().as_secs_f64();
    let after = handle.stats();
    let hist = hist.lock().unwrap();
    let completed = hist.count();
    let batches = after.batches - before.batches;
    let batched_jobs = after.completed - before.completed;
    let shed = shed.load(Ordering::Relaxed);
    let p99 = hist.quantile(0.99);
    let achieved_qps = completed as f64 / elapsed;
    RatePoint {
        offered_qps: rate,
        achieved_qps,
        sent: total,
        completed,
        shed,
        p50_us: hist.quantile(0.50),
        p95_us: hist.quantile(0.95),
        p99_us: p99,
        mean_batch: batched_jobs as f64 / (batches.max(1)) as f64,
        // Sustained: tracked the offered rate, shed nothing, met the bound.
        sustained: shed == 0 && achieved_qps >= 0.95 * rate && p99 <= P99_BOUND_US,
        attempts: 1,
    }
}

/// Sequential recall probe over the wire (one connection, no load).
fn served_recall(
    addr: SocketAddr,
    queries: &gass_core::VectorStore,
    truth: &[Vec<gass_core::Neighbor>],
    beam: usize,
    rerank: usize,
) -> f64 {
    let mut client = Client::connect(addr).expect("connect");
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        match client.query(query_request(queries.get(qi as u32), beam, rerank)).unwrap() {
            Response::Neighbors(ns) => {
                let got: Vec<gass_core::Neighbor> =
                    ns.iter().map(|(id, d)| gass_core::Neighbor::new(*id, *d)).collect();
                recall += recall_at_k(row, &got, K);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    recall / truth.len() as f64
}

#[allow(clippy::too_many_arguments)]
fn run_config(
    label: &'static str,
    index: &Arc<gass_core::PrebuiltIndex>,
    cfg: ServeConfig,
    queries: &Arc<gass_core::VectorStore>,
    frames: &Arc<Vec<Vec<u8>>>,
    truth: &[Vec<gass_core::Neighbor>],
    beam: usize,
    rerank: usize,
    table: &mut Table,
) -> ConfigRecord {
    let handle = serve(Arc::clone(index) as Arc<dyn gass_core::AnnIndex>, cfg.clone())
        .expect("bind server");
    let addr = handle.addr();
    let recall = served_recall(addr, queries, truth, beam, rerank);
    // Saturation probe: overdrive far past capacity; the achieved rate
    // (admitted + served, shedding allowed) anchors the sweep ladder.
    let probe = open_loop(addr, &handle, frames, PROBE_RATE, Duration::from_secs_f64(1.25));
    let anchor = probe.achieved_qps;
    eprintln!("[{label}] recall@{K}={recall:.4}, saturation probe ≈ {anchor:.0} qps");

    let window = Duration::from_secs_f64(WINDOW_S);
    let mut sweep: Vec<RatePoint> = Vec::new();
    let mut max_sustained = 0.0f64;
    let mut min_failed = f64::INFINITY;
    let run_rate = |rate: f64,
                    sweep: &mut Vec<RatePoint>,
                    max_sustained: &mut f64,
                    min_failed: &mut f64,
                    table: &mut Table| {
        // Best of two attempts: a single short window on a host the load
        // generator shares with the server sees occasional multi-ms
        // scheduler stalls, so a rate only counts as unsustainable when
        // it fails twice. Applied identically to both configurations.
        let mut p = open_loop(addr, &handle, frames, rate, window);
        if !p.sustained {
            let retry = open_loop(addr, &handle, frames, rate, window);
            if retry.sustained || retry.p99_us < p.p99_us {
                p = retry;
            }
            p.attempts = 2;
        }
        table.row(vec![
            label.to_string(),
            format!("{:.0}", p.offered_qps),
            format!("{:.0}", p.achieved_qps),
            p.shed.to_string(),
            p.p50_us.to_string(),
            p.p99_us.to_string(),
            format!("{:.2}", p.mean_batch),
            if p.sustained { "yes" } else { "no" }.to_string(),
        ]);
        if p.sustained {
            *max_sustained = max_sustained.max(p.offered_qps);
        } else {
            *min_failed = min_failed.min(p.offered_qps);
        }
        sweep.push(p);
    };

    // Coarse ladder around the probe, extended upward until a rate fails
    // (the probe's reject traffic biases the anchor low, so the true max
    // often sits above it), then bisected to tighten the bracket.
    for frac in [0.7, 0.9, 1.05, 1.2] {
        run_rate(anchor * frac, &mut sweep, &mut max_sustained, &mut min_failed, table);
    }
    let mut extensions = 0;
    while min_failed.is_infinite() && max_sustained > 0.0 && extensions < 5 {
        run_rate(max_sustained * 1.12, &mut sweep, &mut max_sustained, &mut min_failed, table);
        extensions += 1;
    }
    for _ in 0..4 {
        if !min_failed.is_finite() || min_failed <= max_sustained * 1.08 {
            break;
        }
        let mid = 0.5 * (max_sustained + min_failed);
        run_rate(mid, &mut sweep, &mut max_sustained, &mut min_failed, table);
    }

    handle.shutdown();
    handle.join();
    ConfigRecord {
        config: label,
        max_batch: cfg.max_batch,
        max_wait_us: cfg.max_wait_us,
        recall_at_10: recall,
        saturation_probe_qps: anchor,
        sweep,
        max_sustainable_qps: max_sustained,
    }
}

fn main() {
    let n = 100_000 * scale();
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    gass_core::set_simd_enabled(true);
    gass_core::set_prefetch_enabled(true);
    let (base, queries) = gass_data::DatasetKind::Deep.generate(n, num_queries().max(64), 333);
    let dim = base.dim();
    let truth = gass_data::ground_truth(&base, &queries, K);
    println!("Extension: micro-batched serving, Deep (n={n}, dim={dim}), k={K}\n");

    eprintln!("building HNSW ({host_cores} threads)...");
    let mut index = HnswIndex::build(
        base.clone(),
        HnswParams { m: 16, ef_construction: 128, seed: 333, threads: host_cores },
    );
    index.freeze();
    index.align_store();
    // Serve on the SQ8 rung (the serving configuration from the
    // compression-ladder work): traversal on codes with exact rerank
    // keeps recall while cutting per-query time, which is exactly the
    // regime where fixed per-request overhead — wakeups, locking,
    // scheduling — is worth amortizing across a batch.
    let graph = index.base_graph().clone();
    let mut prebuilt = gass_core::PrebuiltIndex::new(
        base,
        graph,
        Box::new(gass_core::RandomSeeds::per_query(n, 7)),
        "serve-bench",
    );
    prebuilt.align_store();
    prebuilt.freeze();
    prebuilt.quantize(gass_core::CodecSpec::Sq8);
    let index = Arc::new(prebuilt);

    // Smallest swept beam clearing recall 0.9 through the serving path.
    let rerank = 4;
    let counter = gass_core::DistCounter::new();
    let mut beam = 80;
    for l in [24usize, 32, 40, 56, 80, 128, 192] {
        let params =
            gass_core::QueryParams::new(K, l).with_seed_count(16).with_rerank_factor(rerank);
        let mut r = 0.0;
        for (qi, row) in truth.iter().enumerate() {
            let res = index.search(queries.get(qi as u32), &params, &counter);
            r += recall_at_k(row, &res.neighbors, K);
        }
        r /= truth.len() as f64;
        beam = l;
        if r >= 0.9 {
            eprintln!("operating point: L={l} (recall {r:.4})");
            break;
        }
        eprintln!("L={l}: recall {r:.4} < 0.9, widening");
    }

    let workers = host_cores;
    let queue_depth = 128;
    let queries = Arc::new(queries);
    let frames = Arc::new(encode_frames(&queries, beam, rerank));
    let base_cfg = ServeConfig { workers, queue_depth, ..ServeConfig::default() };
    // A 2 ms window trades a bounded latency floor (well under the 10 ms
    // acceptance bound) for coalescing *below* saturation: at, say,
    // 8K qps the window gathers ~16 requests, so the worker wakeup, the
    // reply write+flush, and the client's read — everything per-dispatch
    // — is paid once per ~16 queries instead of once per query. Backlog
    // alone only creates batches once the server is already behind.
    let batched_cfg = ServeConfig { max_batch: 16, max_wait_us: 100, ..base_cfg.clone() };
    let mut table = Table::new(vec![
        "config",
        "offered_qps",
        "achieved_qps",
        "shed",
        "p50_us",
        "p99_us",
        "mean_batch",
        "sustained",
    ]);

    let batched = run_config(
        "batched",
        &index,
        batched_cfg.clone(),
        &queries,
        &frames,
        &truth,
        beam,
        rerank,
        &mut table,
    );
    let per_request = run_config(
        "per-request",
        &index,
        ServeConfig { max_batch: 1, max_wait_us: 0, ..base_cfg },
        &queries,
        &frames,
        &truth,
        beam,
        rerank,
        &mut table,
    );

    // Overload: the batched server at 2× its sustainable rate. Admission
    // control must shed the excess while the p99 of *admitted* requests
    // stays bounded by the queue (depth × service), not by the offered
    // backlog.
    let handle = serve(Arc::clone(&index) as Arc<dyn gass_core::AnnIndex>, batched_cfg)
        .expect("bind server");
    let rate = (batched.max_sustainable_qps * 2.0).max(500.0);
    let p = open_loop(handle.addr(), &handle, &frames, rate, Duration::from_secs_f64(WINDOW_S));
    handle.shutdown();
    handle.join();
    let overload = OverloadRecord {
        offered_qps: p.offered_qps,
        sent: p.sent,
        completed: p.completed,
        shed: p.shed,
        shed_fraction: p.shed as f64 / p.sent.max(1) as f64,
        admitted_p50_us: p.p50_us,
        admitted_p99_us: p.p99_us,
        // "Bounded" = within 3× the sustainable-regime bound; without
        // admission control the backlog (and p99) grows with the offered
        // rate instead.
        admitted_p99_bounded: p.p99_us <= 3 * P99_BOUND_US,
    };
    table.row(vec![
        "overload(batched)".to_string(),
        format!("{:.0}", p.offered_qps),
        format!("{:.0}", p.achieved_qps),
        p.shed.to_string(),
        p.p50_us.to_string(),
        p.p99_us.to_string(),
        format!("{:.2}", p.mean_batch),
        "shedding".to_string(),
    ]);

    println!("{}", table.render());
    let speedup = batched.max_sustainable_qps / per_request.max_sustainable_qps.max(1.0);
    let recall_identical = (batched.recall_at_10 - per_request.recall_at_10).abs() < 1e-12;
    println!(
        "max sustainable (p99 ≤ {} ms): batched {:.0} qps, per-request {:.0} qps — {:.2}×",
        P99_BOUND_US / 1000,
        batched.max_sustainable_qps,
        per_request.max_sustainable_qps,
        speedup
    );
    println!(
        "overload at {:.0} qps: shed {:.1}%, admitted p99 {:.1} ms",
        overload.offered_qps,
        100.0 * overload.shed_fraction,
        overload.admitted_p99_us as f64 / 1000.0
    );

    let record = Record {
        experiment: "ext_serve",
        n,
        dim,
        k: K,
        beam_width: beam,
        rerank_factor: rerank,
        quant: "sq8",
        workers,
        queue_depth,
        connections: CONNS,
        host_cores,
        p99_bound_us: P99_BOUND_US,
        window_s: WINDOW_S,
        recall_identical,
        speedup_sustainable_qps: speedup,
        notes: NOTES,
        batched,
        per_request,
        overload,
    };
    let path = write_json(&results_dir(), "ext_serve", &record).expect("write results");
    println!("wrote {}", path.display());
}
