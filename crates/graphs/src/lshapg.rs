//! **LSHAPG** — LSH-assisted proximity graph: an HNSW base layer whose
//! queries (i) retrieve seeds from multiple LSH tables instead of the SN
//! descent, and (ii) use *probabilistic routing*: a neighbor's distance is
//! estimated from its LSH projection sketch first, and the exact distance
//! is only computed when the estimate beats the current pruning bound
//! (scaled by a slack factor).
//!
//! The paper finds that this routing can prune *promising* neighbors,
//! forcing larger beam widths for high recall — our implementation
//! reproduces exactly that trade-off (the slack factor trades sketch
//! savings against misrouting).

use crate::common::BuildReport;
use crate::hnsw::{HnswIndex, HnswParams};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::GraphView;
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::neighbor::Neighbor;
use gass_core::reorder::ReorderStrategy;
use gass_core::search::{SearchResult, SearchScratch, SearchStats};
use gass_core::seed::SeedProvider;
use gass_hash::{LshIndex, LshSeeds};

/// LSHAPG construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct LshapgParams {
    /// Base-graph (HNSW) parameters.
    pub hnsw: HnswParams,
    /// Number of LSH tables.
    pub tables: usize,
    /// Projections per table.
    pub projections: usize,
    /// LSH bucket width *factor* (multiplies the data's projection std;
    /// see `LshIndex::build_scaled`).
    pub width: f32,
    /// Routing slack `γ ≥ 1`: evaluate a neighbor exactly only when its
    /// estimated distance is below `γ ·` current bound. `f32::INFINITY`
    /// disables routing (plain HNSW traversal with LSH seeds).
    pub gamma: f32,
}

impl LshapgParams {
    /// Small-scale defaults.
    pub fn small() -> Self {
        Self { hnsw: HnswParams::small(), tables: 4, projections: 8, width: 0.7, gamma: 1.8 }
    }
}

/// A built LSHAPG index.
pub struct LshapgIndex {
    base: HnswIndex,
    lsh: LshSeeds,
    gamma: f32,
    scratch: ScratchPool,
    build: BuildReport,
}

impl LshapgIndex {
    /// Builds the HNSW base and the LSH tables.
    pub fn build(store: gass_core::VectorStore, params: LshapgParams) -> Self {
        let start = std::time::Instant::now();
        let base = HnswIndex::build(store, params.hnsw);
        let lsh_index = LshIndex::build_scaled(
            base.store(),
            params.tables,
            params.projections,
            params.width,
            params.hnsw.seed ^ 0x15b,
        );
        let lsh = LshSeeds::new(lsh_index, 0);
        let build = BuildReport {
            seconds: start.elapsed().as_secs_f64(),
            dist_calcs: base.build_report().dist_calcs,
        };
        Self { base, lsh, gamma: params.gamma, scratch: ScratchPool::new(), build }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The LSH structure.
    pub fn lsh(&self) -> &LshIndex {
        self.lsh.index()
    }

    /// The probabilistic-routing traversal, generic over the base graph's
    /// layout so the frozen CSR form dispatches statically.
    fn routed_traversal<G: GraphView + ?Sized>(
        &self,
        graph: &G,
        space: Space<'_>,
        query: &[f32],
        seeds: &[u32],
        params: &QueryParams,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let sketch = self.lsh.index().query_sketch(query);
        let gamma = self.gamma;
        // Quantized serving routes the gated evaluations through the SQ8
        // codes (the "CSR path" carries a quant view on its `Space`); the
        // sketch still decides *whether* a neighbor is scored at all, the
        // codes decide *how cheaply*. The candidate pool is widened to
        // `rerank_factor * k` so the exact phase-2 re-score below can
        // recover from quantization error.
        let quant = space.quant();
        let pool = match quant {
            Some(q) => params.beam_width.max(params.k.saturating_mul(q.rerank_factor())),
            None => params.beam_width,
        };
        self.scratch.with(space.len(), pool, |scratch| {
            if let Some(q) = quant {
                q.store().prepare_into(query, &mut scratch.prepared);
            }
            let SearchScratch { visited, buffer, prepared } = scratch;
            for &s in seeds {
                if visited.insert(s) {
                    let d = match quant {
                        Some(_) => space.qdist_to(prepared, s),
                        None => space.dist_to(query, s),
                    };
                    stats.evaluated += 1;
                    buffer.insert(Neighbor::new(s, d));
                }
            }
            while let Some(cur) = buffer.next_unexpanded() {
                stats.hops += 1;
                let bound = buffer.bound();
                for &nb in graph.neighbors(cur.id) {
                    if !visited.insert(nb) {
                        continue;
                    }
                    // Start pulling the vector (or its code line) while the
                    // sketch estimate is computed; if routing prunes the
                    // neighbor the prefetch is wasted bandwidth, otherwise
                    // it hides the load.
                    if quant.is_some() {
                        space.qprefetch(nb);
                    } else {
                        space.prefetch(nb);
                    }
                    // Probabilistic routing: sketch estimate gates the
                    // (quantized or exact) evaluation.
                    if bound.is_finite() {
                        let est = self.lsh.index().projected_dist_sq(&sketch, nb);
                        if est > gamma * bound {
                            continue;
                        }
                    }
                    let d = match quant {
                        Some(_) => space.qdist_to(prepared, nb),
                        None => space.dist_to(query, nb),
                    };
                    stats.evaluated += 1;
                    buffer.insert(Neighbor::new(nb, d));
                }
            }
            match quant {
                Some(q) => {
                    // Phase 2: exact re-score of the widened pool, then
                    // keep the true top k.
                    let mut cands = buffer.top_k(params.k.saturating_mul(q.rerank_factor()));
                    for n in &mut cands {
                        n.dist = space.dist_to(query, n.id);
                    }
                    stats.evaluated += cands.len();
                    cands.sort_unstable();
                    cands.truncate(params.k);
                    cands
                }
                None => buffer.top_k(params.k),
            }
        })
    }
}

impl AnnIndex for LshapgIndex {
    fn name(&self) -> String {
        "LSHAPG".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.base.num_vectors()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let store = self.base.store();
        let space = Space::new(store, counter).with_quant(
            self.base.quantized().map(|q| gass_core::QuantView::new(q, params.rerank_factor)),
        );
        let mut seeds = Vec::new();
        self.lsh.seeds(space, query, params.seed_count.max(4), &mut seeds);
        let mut stats = SearchStats::default();
        let neighbors = match self.base.csr() {
            Some(csr) => self.routed_traversal(csr, space, query, &seeds, params, &mut stats),
            None => self.routed_traversal(
                self.base.base_graph(),
                space,
                query,
                &seeds,
                params,
                &mut stats,
            ),
        };
        // The routed traversal runs in the base graph's (possibly
        // relabeled) id space; the base serving state owns the new→old
        // translation.
        self.base.serving().finish(SearchResult { neighbors, stats })
    }

    fn freeze(&mut self) {
        self.base.freeze();
    }

    fn is_frozen(&self) -> bool {
        self.base.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        // The base HNSW owns the store; its codes serve the routed
        // traversal too.
        self.base.quantize(spec);
    }

    fn is_quantized(&self) -> bool {
        self.base.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        // The LSH buckets and sketch rows must follow the base graph's
        // relabeling so seeds and sketch estimates stay in the same id
        // space as the permuted CSR.
        if let Some(map) = self.base.reorder_with(strategy) {
            self.lsh.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.base.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.base.reorder_strategy()
    }

    fn stats(&self) -> IndexStats {
        let mut s = self.base.stats();
        s.aux_bytes += self.lsh.heap_bytes();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::{DistCounter, VectorStore};
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    fn recall(idx: &LshapgIndex, base: &VectorStore, queries: &VectorStore, l: usize) -> f64 {
        let gt = ground_truth(base, queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, l).with_seed_count(12);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        hit as f64 / (10 * gt.len()) as f64
    }

    #[test]
    fn lshapg_reasonable_recall_with_routing() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = LshapgIndex::build(base.clone(), LshapgParams::small());
        let r = recall(&idx, &base, &queries, 96);
        assert!(r > 0.8, "LSHAPG recall too low: {r}");
    }

    #[test]
    fn routing_prunes_evaluations_but_costs_recall() {
        // The paper's LSHAPG finding: probabilistic routing reduces exact
        // evaluations yet can prune promising neighbors, so at a fixed
        // beam width recall does not exceed the unrouted traversal.
        let base = deep_like(500, 3);
        let queries = deep_like(12, 4);
        let routed = LshapgIndex::build(base.clone(), LshapgParams::small());
        let unrouted = LshapgIndex::build(
            base.clone(),
            LshapgParams { gamma: f32::INFINITY, ..LshapgParams::small() },
        );
        let (c_r, c_u) = (DistCounter::new(), DistCounter::new());
        let params = QueryParams::new(10, 48).with_seed_count(12);
        for (_, q) in queries.iter() {
            routed.search(q, &params, &c_r);
            unrouted.search(q, &params, &c_u);
        }
        assert!(
            c_r.get() < c_u.get(),
            "routing should cut exact evaluations: {} vs {}",
            c_r.get(),
            c_u.get()
        );
        let rr = recall(&routed, &base, &queries, 48);
        let ru = recall(&unrouted, &base, &queries, 48);
        assert!(rr <= ru + 0.05, "routing recall {rr} implausibly above unrouted {ru}");
    }

    #[test]
    fn stats_account_lsh_tables() {
        let base = deep_like(200, 5);
        let idx = LshapgIndex::build(base, LshapgParams::small());
        assert!(idx.stats().aux_bytes > 0);
        assert_eq!(idx.name(), "LSHAPG");
    }
}
