//! Extension experiment: sharded serving (IVF-on-top-of-graphs) on the
//! LLC-overflowing `deep-xl` tier from `ext_reorder`.
//!
//! One balanced-k-means partition splits the base into shards, each shard
//! serves its slice through the full PR ladder (HNSW graph, frozen CSR,
//! aligned store, RCM relabeling), and queries route to the `nprobe`
//! nearest partition centroids, merging per-shard answers through one
//! bounded heap. The monolithic comparison point is the strongest
//! single-index configuration the repo has: the same HNSW build served
//! frozen + aligned + RCM-reordered (the `ext_reorder` winner on this
//! tier).
//!
//! Why sharding wins at this scale: a probe searches a graph 1/`shards`
//! the size, so its beam converges in fewer hops over a working set that
//! sits much closer to the LLC — and because each shard holds only a
//! slice of the data, a *narrower* beam reaches the same recall. The
//! sweep therefore finds, per `(shards, nprobe)`, the smallest beam whose
//! recall@10 matches the monolithic operating point, and compares QPS at
//! that equal-recall point. Routing is a free knob: `nprobe` is atomic,
//! so the ladder sweeps recall/QPS without rebuilding anything.
//!
//! Acceptance shape: at the monolithic recall@10 operating point
//! (>= 0.97), the best `(shards, nprobe, beam)` cell reaches at least
//! 1.3x the monolithic single-thread QPS. The JSON also records the
//! recall-vs-nprobe curve at the monolithic beam width, making the
//! routing tradeoff legible: each added probe buys recall and costs
//! QPS.
//!
//! The run also sweeps the **intra-query fan-out ladder** on the
//! 16-shard configuration: workers 1/2/4/8 × nprobe 1/2/4 at each
//! nprobe's equal-recall beam, reporting p50/p99 latency and QPS.
//! Fan-out runs one query's probes concurrently on shard-affine workers
//! (`gass_core::fanout`); answers are bit-identical at every width, so
//! the ladder moves latency only — and only on hosts with spare cores
//! (a `notes` field flags constrained hosts).
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_sharded
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_QUERIES` the query count.
//! Output: `results/ext_sharded.json`.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, PrebuiltIndex, QueryParams};
use gass_core::seed::RandomSeeds;
use gass_core::{ReorderStrategy, SeedProvider, ShardedIndex, ShardedParams};
use gass_eval::{measure_throughput, recall_at_k, write_json, Table};
use gass_graphs::{HnswIndex, HnswParams};
use serde::Serialize;

const K: usize = 10;
const ROUNDS: usize = 15;
/// Throughput repetitions per operating point; the best run is the
/// measurement.
const REPS: usize = 3;
/// Headline requirement: best equal-recall sharded QPS over monolithic.
const SPEEDUP_TARGET: f64 = 1.3;
/// Recall@10 floor for the monolithic operating point.
const RECALL_FLOOR: f64 = 0.97;

#[derive(Serialize)]
struct BaselineRecord {
    method: &'static str,
    reorder: &'static str,
    beam_width: usize,
    recall_at_10: f64,
    dists_per_query: u64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
}

#[derive(Serialize)]
struct ProbePoint {
    nprobe: usize,
    /// Smallest swept beam whose recall clears the operating point (the
    /// widest beam swept when none does — see `at_parity`).
    beam_width: usize,
    recall_at_10: f64,
    /// Recall at the monolithic beam width — the recall-vs-nprobe curve
    /// at a fixed search effort.
    recall_at_baseline_beam: f64,
    dists_per_query: u64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
    speedup_vs_monolithic: f64,
    /// Whether this point matched the monolithic recall operating point.
    at_parity: bool,
}

#[derive(Serialize)]
struct ShardConfigRecord {
    shards: usize,
    build_seconds: f64,
    points: Vec<ProbePoint>,
}

#[derive(Serialize)]
struct FanoutPoint {
    workers: usize,
    nprobe: usize,
    beam_width: usize,
    recall_at_10: f64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
    /// p50 latency at `workers = 1` over p50 at this width (>1 = faster).
    latency_speedup_vs_1w: f64,
}

#[derive(Serialize)]
struct Headline {
    shards: usize,
    nprobe: usize,
    beam_width: usize,
    recall_at_10: f64,
    qps_1t: f64,
    speedup_vs_monolithic: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    dataset: &'static str,
    n: usize,
    dim: usize,
    num_queries: usize,
    k: usize,
    rounds: usize,
    host_cores: usize,
    simd_backend: &'static str,
    baseline: BaselineRecord,
    configs: Vec<ShardConfigRecord>,
    /// Intra-query fan-out ladder (workers x nprobe) on the
    /// `fanout_shards` configuration, at each nprobe's equal-recall beam.
    fanout_shards: usize,
    fanout: Vec<FanoutPoint>,
    speedup_target: f64,
    meets_target: bool,
    headline: Headline,
    notes: String,
}

/// One deterministic, single-threaded pass over the queries in order.
fn deterministic_pass(
    index: &dyn AnnIndex,
    queries: &gass_core::VectorStore,
    truth: &[Vec<gass_core::Neighbor>],
    params: &QueryParams,
) -> (f64, u64) {
    let counter = DistCounter::new();
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, &counter);
        recall += recall_at_k(row, &res.neighbors, K);
    }
    (recall / truth.len() as f64, counter.get())
}

fn best_throughput(
    index: &dyn AnnIndex,
    queries: &gass_core::VectorStore,
    params: &QueryParams,
) -> gass_eval::ThroughputReport {
    (0..REPS)
        .map(|_| measure_throughput(index, queries, params, 1, ROUNDS))
        .max_by(|a, b| a.qps.total_cmp(&b.qps))
        .expect("REPS > 0")
}

fn main() {
    // The `deep-xl` tier of `ext_reorder`: 10x the base Deep analog.
    let n = 1_000_000 * scale();
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    gass_core::set_simd_enabled(true);
    gass_core::set_prefetch_enabled(true);
    println!("Extension: sharded serving (IVF-on-top-of-graphs), n={n}, k={K}\n");

    let all = gass_data::synth::deep_like(n + num_queries(), 333);
    // In-distribution holdout, as in `ext_reorder`: a fresh draw in high
    // dimensions lands between the base clusters.
    let (base, queries) = gass_data::holdout_split(&all, num_queries(), 333);
    drop(all);
    let dim = base.dim();
    let truth = gass_data::ground_truth(&base, &queries, K);
    let hnsw = |store: gass_core::VectorStore, seed: u64, threads: usize| {
        HnswIndex::build(store, HnswParams { m: 16, ef_construction: 128, seed, threads })
    };

    // Monolithic baseline: one HNSW over the full tier, served in the
    // strongest single-index configuration (frozen + aligned + RCM).
    eprintln!("monolithic: building HNSW over {n} vectors ({host_cores} threads)...");
    let built = hnsw(base.clone(), 333, host_cores);
    let mut mono = PrebuiltIndex::new(
        built.store().clone(),
        built.base_graph().clone(),
        Box::new(RandomSeeds::new(n, 7)),
        "monolithic",
    );
    drop(built);
    mono.align_store();
    mono.freeze();
    mono.reorder(ReorderStrategy::Rcm);

    // Smallest swept beam whose recall clears the floor; its recall is
    // the equal-recall operating point every sharded cell must match.
    let mut mono_beam = 0;
    let mut mono_pass = (0.0, 0u64);
    for l in [80usize, 128, 192, 256, 384] {
        let params = QueryParams::new(K, l).with_seed_count(16);
        mono_pass = deterministic_pass(&mono, &queries, &truth, &params);
        mono_beam = l;
        if mono_pass.0 >= RECALL_FLOOR {
            break;
        }
        eprintln!("monolithic: L={l} recall {:.4} < {RECALL_FLOOR}, widening", mono_pass.0);
    }
    let op_recall = mono_pass.0;
    let mono_params = QueryParams::new(K, mono_beam).with_seed_count(16);
    let mono_t = best_throughput(&mono, &queries, &mono_params);
    eprintln!(
        "monolithic: L={mono_beam} recall {op_recall:.4}, {:.0} QPS single-thread",
        mono_t.qps
    );
    let baseline = BaselineRecord {
        method: "hnsw",
        reorder: "rcm",
        beam_width: mono_beam,
        recall_at_10: op_recall,
        dists_per_query: mono_pass.1 / truth.len() as u64,
        qps_1t: mono_t.qps,
        p50_us_1t: mono_t.p50_us,
        p99_us_1t: mono_t.p99_us,
    };
    drop(mono);

    let mut table = Table::new(vec![
        "shards",
        "nprobe",
        "beam",
        "recall@10",
        "dists/query",
        "qps(1t)",
        "p50_us",
        "speedup",
        "parity",
    ]);
    table.row(vec![
        "1 (mono)".into(),
        "-".into(),
        mono_beam.to_string(),
        format!("{:.4}", baseline.recall_at_10),
        baseline.dists_per_query.to_string(),
        format!("{:.0}", baseline.qps_1t),
        format!("{:.1}", baseline.p50_us_1t),
        "1.00x".into(),
        "yes".into(),
    ]);

    // Fan-out ladder host: the middle shard count (16), whose build the
    // loop below reuses rather than rebuilding.
    const FANOUT_SHARDS: usize = 16;
    let mut fanout: Vec<FanoutPoint> = Vec::new();
    let counter = DistCounter::new();
    let mut configs: Vec<ShardConfigRecord> = Vec::new();
    for shards in [8usize, 16, 32] {
        eprintln!("shards={shards}: partitioning + building per-shard HNSW...");
        let t0 = std::time::Instant::now();
        let mut idx =
            ShardedIndex::build_with(&base, &ShardedParams::new(shards), &counter, |s, sub| {
                let built = hnsw(sub.clone(), 333 ^ s as u64, 1);
                let graph = built.base_graph().clone();
                let seeds: Box<dyn SeedProvider> =
                    Box::new(RandomSeeds::per_query(sub.len(), 7));
                (graph, seeds)
            });
        let build_seconds = t0.elapsed().as_secs_f64();
        idx.align_store();
        idx.freeze();
        idx.reorder(ReorderStrategy::Rcm);
        eprintln!("shards={shards}: built in {build_seconds:.0}s, sweeping nprobe ladder");

        let mut points: Vec<ProbePoint> = Vec::new();
        for nprobe in [1usize, 2, 3, 4, 6, 8].into_iter().filter(|&p| p <= shards) {
            idx.set_nprobe(nprobe);
            // Recall-vs-nprobe curve at the monolithic search effort.
            let (curve_recall, _) = deterministic_pass(&idx, &queries, &truth, &mono_params);
            // Smallest beam whose recall matches the monolithic operating
            // point: smaller shards need narrower beams at equal recall.
            let mut chosen = (0usize, 0.0f64, 0u64);
            for l in [16usize, 24, 32, 48, 64, 80, 128, 192] {
                let params = QueryParams::new(K, l).with_seed_count(16);
                let (recall, dists) = deterministic_pass(&idx, &queries, &truth, &params);
                chosen = (l, recall, dists);
                if recall >= op_recall {
                    break;
                }
            }
            let (beam, recall, dists) = chosen;
            let at_parity = recall >= op_recall;
            let params = QueryParams::new(K, beam).with_seed_count(16);
            let t = best_throughput(&idx, &queries, &params);
            let speedup = t.qps / baseline.qps_1t.max(1e-12);
            table.row(vec![
                shards.to_string(),
                nprobe.to_string(),
                beam.to_string(),
                format!("{:.4}", recall),
                (dists / truth.len() as u64).to_string(),
                format!("{:.0}", t.qps),
                format!("{:.1}", t.p50_us),
                format!("{:.2}x", speedup),
                if at_parity { "yes".into() } else { "no".into() },
            ]);
            points.push(ProbePoint {
                nprobe,
                beam_width: beam,
                recall_at_10: recall,
                recall_at_baseline_beam: curve_recall,
                dists_per_query: dists / truth.len() as u64,
                qps_1t: t.qps,
                p50_us_1t: t.p50_us,
                p99_us_1t: t.p99_us,
                speedup_vs_monolithic: speedup,
                at_parity,
            });
        }
        // Intra-query fan-out ladder: workers 1/2/4/8 x nprobe 1/2/4 at
        // each nprobe's equal-recall beam from the sweep above. Fan-out
        // never changes answers (the recall column re-verifies that per
        // cell); what moves is single-query latency, and only when the
        // host has spare cores to run probes on.
        if shards == FANOUT_SHARDS {
            eprintln!("shards={shards}: fan-out ladder (workers x nprobe)...");
            for nprobe in [1usize, 2, 4] {
                idx.set_nprobe(nprobe);
                let beam = points
                    .iter()
                    .find(|p| p.nprobe == nprobe)
                    .map(|p| p.beam_width)
                    .expect("nprobe swept above");
                let params = QueryParams::new(K, beam).with_seed_count(16);
                let mut base_p50 = 0.0f64;
                for workers in [1usize, 2, 4, 8] {
                    gass_core::set_fanout_enabled(true);
                    gass_core::set_fanout_workers(workers);
                    let (recall, _) = deterministic_pass(&idx, &queries, &truth, &params);
                    let t = best_throughput(&idx, &queries, &params);
                    if workers == 1 {
                        base_p50 = t.p50_us;
                    }
                    eprintln!(
                        "  workers={workers} nprobe={nprobe} beam={beam}: recall \
                         {recall:.4}, p50 {:.1}us p99 {:.1}us, {:.0} QPS",
                        t.p50_us, t.p99_us, t.qps
                    );
                    fanout.push(FanoutPoint {
                        workers,
                        nprobe,
                        beam_width: beam,
                        recall_at_10: recall,
                        qps_1t: t.qps,
                        p50_us_1t: t.p50_us,
                        p99_us_1t: t.p99_us,
                        latency_speedup_vs_1w: base_p50 / t.p50_us.max(1e-12),
                    });
                }
                gass_core::set_fanout_workers(1);
            }
        }
        configs.push(ShardConfigRecord { shards, build_seconds, points });
    }

    let (best_cfg, best_point) = configs
        .iter()
        .flat_map(|c| c.points.iter().filter(|p| p.at_parity).map(move |p| (c, p)))
        .max_by(|a, b| a.1.qps_1t.total_cmp(&b.1.qps_1t))
        .expect("at least one sharded point at recall parity");
    let headline = Headline {
        shards: best_cfg.shards,
        nprobe: best_point.nprobe,
        beam_width: best_point.beam_width,
        recall_at_10: best_point.recall_at_10,
        qps_1t: best_point.qps_1t,
        speedup_vs_monolithic: best_point.speedup_vs_monolithic,
    };
    let meets_target = headline.speedup_vs_monolithic >= SPEEDUP_TARGET;
    let notes = if host_cores < 4 {
        format!(
            "fan-out ladder measured on a {host_cores}-core host: intra-query \
             parallelism needs spare cores to run probes on, so widths > 1 only add \
             pool overhead here and the >=1.3x latency target at workers >= 4 is \
             unattainable on this hardware. Answers are bit-identical at every width \
             (property-tested in tests/sharded.rs); the ladder records the \
             constrained-host overhead floor."
        )
    } else {
        String::new()
    };

    let record = Record {
        experiment: "ext_sharded",
        dataset: "deep-xl",
        n,
        dim,
        num_queries: num_queries(),
        k: K,
        rounds: ROUNDS,
        host_cores,
        simd_backend: gass_core::simd_backend(),
        baseline,
        configs,
        fanout_shards: FANOUT_SHARDS,
        fanout,
        speedup_target: SPEEDUP_TARGET,
        meets_target,
        headline,
        notes,
    };

    println!("{}", table.render());
    println!(
        "headline: {} shards, nprobe {}, beam {} -> recall@10 {:.4} at {:.0} QPS, \
         {:.2}x the monolithic frozen+reordered single-thread baseline \
         (target {SPEEDUP_TARGET}x: {})",
        record.headline.shards,
        record.headline.nprobe,
        record.headline.beam_width,
        record.headline.recall_at_10,
        record.headline.qps_1t,
        record.headline.speedup_vs_monolithic,
        if record.meets_target { "met" } else { "MISSED" },
    );
    let path = write_json(&results_dir(), "ext_sharded", &record).expect("write results");
    println!("wrote {}", path.display());
}
