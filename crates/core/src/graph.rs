//! Proximity-graph representations.
//!
//! Two layouts are provided, matching the implementation-impact discussion
//! of the paper (Figures 8 and 17):
//!
//! * [`AdjacencyGraph`] — one `Vec<u32>` per node. Flexible during
//!   construction (degrees fluctuate as edges are added and pruned) but
//!   pointer-chasing at query time.
//! * [`FlatGraph`] — a single contiguous block with fixed per-node slot
//!   count, HNSW-style. Cache-friendly at query time, but reserves
//!   `max_degree` slots per node, which is exactly the quadratic-ish memory
//!   growth the paper attributes to hnswlib's layout.
//! * [`CsrGraph`] — compressed sparse row: one `offsets` array and one
//!   densely packed `neighbors` array, no per-node slack at all. The
//!   read-only serving layout every finished method freezes into
//!   (`AnnIndex::freeze`): contiguous like [`FlatGraph`] but without its
//!   slot rounding, so it is both the smallest and the most
//!   prefetch-friendly representation.
//!
//! Search code is generic over [`GraphView`], so every method can be queried
//! through any layout.

use serde::{Deserialize, Serialize};

/// Read-only view of a directed graph over vector ids.
pub trait GraphView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Out-neighbors of `node`.
    fn neighbors(&self, node: u32) -> &[u32];

    /// Total number of directed edges.
    fn num_edges(&self) -> usize {
        (0..self.num_nodes() as u32).map(|v| self.neighbors(v).len()).sum()
    }

    /// Average out-degree.
    fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum out-degree.
    fn max_degree(&self) -> usize {
        (0..self.num_nodes() as u32).map(|v| self.neighbors(v).len()).max().unwrap_or(0)
    }
}

/// Mutable adjacency-list graph used during construction by every method.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AdjacencyGraph {
    adj: Vec<Vec<u32>>,
}

impl AdjacencyGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n] }
    }

    /// Creates a graph with `n` nodes, reserving `degree_hint` slots each.
    pub fn with_degree_hint(n: usize, degree_hint: usize) -> Self {
        Self { adj: vec![Vec::with_capacity(degree_hint); n] }
    }

    /// Wraps raw adjacency lists (no validation beyond what callers built).
    /// Used by [`crate::par::ConcurrentAdjacency::freeze`] to hand a
    /// concurrently built graph back to the serial world.
    pub fn from_lists(adj: Vec<Vec<u32>>) -> Self {
        Self { adj }
    }

    /// Consumes the graph, yielding its raw adjacency lists.
    pub fn into_lists(self) -> Vec<Vec<u32>> {
        self.adj
    }

    /// Appends a new isolated node, returning its id. Incremental-insertion
    /// methods (NSW, HNSW) grow the graph this way.
    pub fn push_node(&mut self) -> u32 {
        let id = self.adj.len();
        assert!(id < u32::MAX as usize, "graph exceeds u32 id space");
        self.adj.push(Vec::new());
        id as u32
    }

    /// Adds the directed edge `from -> to` unless it already exists or is a
    /// self-loop. Returns `true` if added.
    pub fn add_edge(&mut self, from: u32, to: u32) -> bool {
        if from == to {
            return false;
        }
        let list = &mut self.adj[from as usize];
        if list.contains(&to) {
            return false;
        }
        list.push(to);
        true
    }

    /// Adds both `a -> b` and `b -> a`.
    pub fn add_undirected(&mut self, a: u32, b: u32) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Replaces the neighbor list of `node` wholesale (post-pruning).
    pub fn set_neighbors(&mut self, node: u32, neighbors: Vec<u32>) {
        debug_assert!(!neighbors.contains(&node), "self-loop in neighbor list");
        self.adj[node as usize] = neighbors;
    }

    /// Mutable access to a node's neighbor list.
    pub fn neighbors_mut(&mut self, node: u32) -> &mut Vec<u32> {
        &mut self.adj[node as usize]
    }

    /// Makes the graph undirected by adding every reverse edge
    /// (DPG's final step).
    pub fn undirected_closure(&mut self) {
        let edges: Vec<(u32, u32)> = self
            .adj
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().map(move |&v| (u as u32, v)))
            .collect();
        for (u, v) in edges {
            self.add_edge(v, u);
        }
    }

    /// Heap bytes used by the adjacency lists.
    pub fn heap_bytes(&self) -> usize {
        let lists: usize =
            self.adj.iter().map(|l| l.capacity() * std::mem::size_of::<u32>()).sum();
        lists + self.adj.capacity() * std::mem::size_of::<Vec<u32>>()
    }

    /// Nodes reachable from `start` (BFS). Used by connectivity repair
    /// (NSG/SSG) and by tests.
    pub fn reachable_from(&self, start: u32) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        if self.adj.is_empty() {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start as usize] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// `true` when every node is reachable from `start`.
    pub fn is_connected_from(&self, start: u32) -> bool {
        self.reachable_from(start).iter().all(|&b| b)
    }
}

impl GraphView for AdjacencyGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    #[inline]
    fn neighbors(&self, node: u32) -> &[u32] {
        &self.adj[node as usize]
    }
}

/// Immutable contiguous-layout graph: `slots` entries reserved per node, a
/// per-node count, one allocation. The query-time layout of hnswlib and
/// ParlayANN.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlatGraph {
    slots: usize,
    counts: Vec<u32>,
    edges: Vec<u32>,
}

impl FlatGraph {
    /// Freezes an adjacency graph into flat layout. `slots` defaults to the
    /// graph's maximum out-degree; lists longer than `slots` are truncated
    /// (callers prune before freezing, so truncation is a safety net).
    pub fn from_adjacency(g: &AdjacencyGraph, slots: Option<usize>) -> Self {
        let n = g.num_nodes();
        let slots = slots.unwrap_or_else(|| g.max_degree()).max(1);
        let mut counts = vec![0u32; n];
        let mut edges = vec![0u32; n * slots];
        for v in 0..n as u32 {
            let ns = g.neighbors(v);
            let take = ns.len().min(slots);
            counts[v as usize] = take as u32;
            edges[v as usize * slots..v as usize * slots + take].copy_from_slice(&ns[..take]);
        }
        Self { slots, counts, edges }
    }

    /// Slot count per node.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Heap bytes used by the flat layout (counts + edge block).
    pub fn heap_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u32>()
            + self.edges.capacity() * std::mem::size_of::<u32>()
    }
}

impl GraphView for FlatGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn neighbors(&self, node: u32) -> &[u32] {
        let base = node as usize * self.slots;
        &self.edges[base..base + self.counts[node as usize] as usize]
    }
}

/// Compressed-sparse-row graph: node `v`'s neighbors live at
/// `neighbors[offsets[v] .. offsets[v + 1]]`. Exactly `num_edges` entries
/// plus `n + 1` offsets — no per-node slack — and fully contiguous, which
/// is what makes it the preferred *serving* layout (see
/// [`crate::index::AnnIndex::freeze`]): adjacent lists share cache lines,
/// and a single offsets lookup replaces the per-`Vec` pointer chase of
/// [`AdjacencyGraph`].
///
/// The layout is immutable by construction; build code keeps using the
/// mutable layouts and freezes once at the end.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Freezes any [`GraphView`] into CSR form, preserving neighbor order.
    ///
    /// # Panics
    /// Panics if the graph holds more than `u32::MAX` edges (offsets are
    /// `u32` to halve their footprint; the paper's largest per-graph edge
    /// counts are well below that).
    pub fn from_view<G: GraphView + ?Sized>(g: &G) -> Self {
        let n = g.num_nodes();
        let total = g.num_edges();
        assert!(total <= u32::MAX as usize, "edge count exceeds u32 offset space");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0);
        for v in 0..n as u32 {
            neighbors.extend_from_slice(g.neighbors(v));
            offsets.push(neighbors.len() as u32);
        }
        Self { offsets, neighbors }
    }

    /// Heap bytes used by the CSR arrays.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.capacity() + self.neighbors.capacity()) * std::mem::size_of::<u32>()
    }

    /// Relabels the graph through `map`: the node now labeled `u` gets the
    /// neighbor list of the node previously labeled `map.to_old(u)`, with
    /// every neighbor id rewritten to its new label. Neighbor order within
    /// each list is preserved, so a traversal from remapped seeds is
    /// isomorphic to the original.
    pub fn permute(&self, map: &crate::reorder::IdRemap) -> CsrGraph {
        assert_eq!(map.len(), self.num_nodes(), "remap covers a different node count");
        let mut offsets = Vec::with_capacity(self.offsets.len());
        let mut neighbors = Vec::with_capacity(self.neighbors.len());
        offsets.push(0);
        for new in 0..self.num_nodes() as u32 {
            let old = map.to_old(new);
            neighbors.extend(self.neighbors(old).iter().map(|&v| map.to_new(v)));
            offsets.push(neighbors.len() as u32);
        }
        Self { offsets, neighbors }
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    fn neighbors(&self, node: u32) -> &[u32] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjacencyGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn add_edge_rejects_self_loops_and_duplicates() {
        let mut g = AdjacencyGraph::new(2);
        assert!(!g.add_edge(0, 0));
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edge_and_degree_stats() {
        let g = diamond();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reachability_and_connectivity() {
        let g = diamond();
        assert!(g.is_connected_from(0));
        assert!(!g.is_connected_from(3)); // 3 has no out-edges
        let seen = g.reachable_from(1);
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn undirected_closure_adds_reverses() {
        let mut g = diamond();
        g.undirected_closure();
        assert!(g.neighbors(3).contains(&1));
        assert!(g.neighbors(3).contains(&2));
        assert!(g.is_connected_from(3));
    }

    #[test]
    fn flat_graph_preserves_neighbors() {
        let g = diamond();
        let f = FlatGraph::from_adjacency(&g, None);
        for v in 0..4 {
            assert_eq!(f.neighbors(v), g.neighbors(v));
        }
        assert_eq!(f.num_edges(), g.num_edges());
    }

    #[test]
    fn flat_graph_truncates_to_slots() {
        let mut g = AdjacencyGraph::new(4);
        g.set_neighbors(0, vec![1, 2, 3]);
        let f = FlatGraph::from_adjacency(&g, Some(2));
        assert_eq!(f.neighbors(0), &[1, 2]);
    }

    #[test]
    fn csr_graph_preserves_neighbors_and_order() {
        let g = diamond();
        let c = CsrGraph::from_view(&g);
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_edges(), g.num_edges());
        for v in 0..4 {
            assert_eq!(c.neighbors(v), g.neighbors(v));
        }
        // Also freezes from the flat layout (slot slack dropped).
        let f = FlatGraph::from_adjacency(&g, Some(5));
        let c2 = CsrGraph::from_view(&f);
        for v in 0..4 {
            assert_eq!(c2.neighbors(v), g.neighbors(v));
        }
        assert!(c2.heap_bytes() < f.heap_bytes());
    }

    #[test]
    fn csr_of_empty_graph() {
        let g = AdjacencyGraph::new(0);
        let c = CsrGraph::from_view(&g);
        assert_eq!(c.num_nodes(), 0);
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn push_node_grows_graph() {
        let mut g = AdjacencyGraph::default();
        assert_eq!(g.push_node(), 0);
        assert_eq!(g.push_node(), 1);
        g.add_undirected(0, 1);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn flat_layout_is_denser_than_lists_at_fixed_degree() {
        // With uniform degree, flat layout should not waste beyond slot
        // rounding; sanity-check the memory accounting runs.
        let mut g = AdjacencyGraph::new(100);
        for v in 0..100u32 {
            g.set_neighbors(v, vec![(v + 1) % 100, (v + 2) % 100]);
        }
        let f = FlatGraph::from_adjacency(&g, Some(2));
        assert!(f.heap_bytes() > 0);
        assert!(g.heap_bytes() > 0);
    }
}
