//! Persistence integration: a built graph survives a disk round-trip and
//! serves identical answers through `PrebuiltIndex`.

use gass::prelude::*;
use gass_core::seed::StaticSeeds;
use gass_core::{load_flat_graph, load_store, save_flat_graph, save_store, PrebuiltIndex};

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gass_it_persist");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn hnsw_base_layer_roundtrips() {
    let base = gass::data::synth::deep_like(400, 31);
    let queries = gass::data::synth::deep_like(8, 32);
    let index = HnswIndex::build(base.clone(), HnswParams::small());

    let dir = tmp_dir();
    let sp = dir.join("store.gass");
    let gp = dir.join("graph.gass");
    save_store(&base, &sp).unwrap();
    save_flat_graph(index.base_graph(), &gp).unwrap();

    let reloaded = PrebuiltIndex::new(
        load_store(&sp).unwrap(),
        load_flat_graph(&gp).unwrap(),
        Box::new(StaticSeeds::new(vec![0])),
        "reloaded",
    );

    // Same graph + same seeds => identical traversal => identical answers.
    let counter = DistCounter::new();
    let params = QueryParams::new(5, 64);
    let direct_seeds = StaticSeeds::new(vec![0]);
    let live = PrebuiltIndex::new(
        base.clone(),
        index.base_graph().clone(),
        Box::new(direct_seeds),
        "live",
    );
    for (qi, q) in queries.iter() {
        let a = live.search(q, &params, &counter);
        let b = reloaded.search(q, &params, &counter);
        let ids_a: Vec<u32> = a.neighbors.iter().map(|n| n.id).collect();
        let ids_b: Vec<u32> = b.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(ids_a, ids_b, "query {qi} diverged after reload");
    }
}
