//! Contiguous, row-major storage for dense `f32` vectors.
//!
//! Every method in this workspace operates on a [`VectorStore`]: a single
//! allocation holding the vectors row-major. This mirrors how the evaluated
//! C/C++ implementations lay out their data (one flat buffer, no per-vector
//! indirection) and is what makes the distance kernels in
//! [`crate::distance`] cache-friendly.
//!
//! Two physical layouts are supported:
//!
//! * **packed** (default) — rows are exactly `dim` floats apart, no wasted
//!   space; the layout every store starts in and the one persisted to disk.
//! * **aligned** — the base pointer and every row start on a 64-byte cache
//!   line, with rows padded to a multiple of 16 floats. The SIMD kernels
//!   then never split a load across two lines, and query-time prefetches
//!   pull whole rows. Padding floats are zero and are never exposed:
//!   [`VectorStore::get`] always returns exactly `dim` elements.
//!
//! The layout is a runtime serving choice, not part of the data's
//! identity: both layouts serialize identically, compare by content, and
//! convert freely via [`VectorStore::to_aligned`] /
//! [`VectorStore::to_packed`].
//!
//! A third, read-only backing exists for datasets that overflow RAM:
//! **mapped** — rows live in a memory-mapped persisted section
//! ([`crate::mmap::MmapRegion`]) using the aligned layout's exact
//! geometry (64-byte data area, rows padded to whole cache lines), so the
//! kernel faults pages in on first touch and evicts cold rows under
//! pressure. Mapped stores are immutable ([`VectorStore::push`] /
//! [`VectorStore::get_mut`] panic); every copying operation (`subset`,
//! `permute`, `to_aligned`) produces an ordinary heap store.

use serde::{Deserialize, Serialize};

/// Floats per 64-byte cache line.
const LINE_F32: usize = 16;

/// One cache line of floats; the allocation unit of the aligned layout.
/// `repr(align(64))` makes any `Vec<CacheLine>`'s base pointer — and hence
/// every padded row — 64-byte aligned.
#[derive(Clone, Copy, Debug)]
#[repr(align(64))]
struct CacheLine(#[allow(dead_code)] [f32; LINE_F32]); // read via pointer casts in raw()/raw_mut()

/// Physical storage backing a [`VectorStore`].
#[derive(Clone, Debug)]
enum Storage {
    /// Rows `dim` floats apart in an ordinary `Vec`.
    Packed(Vec<f32>),
    /// Rows `stride` floats apart in cache-line units.
    Aligned(Vec<CacheLine>),
    /// Read-only rows in a memory-mapped persisted section (aligned
    /// geometry). Clones share the mapping.
    Mapped(crate::mmap::MmapRegion),
}

impl Default for Storage {
    fn default() -> Self {
        Storage::Packed(Vec::new())
    }
}

/// Dense collection of `f32` vectors with a fixed dimensionality.
///
/// Vector `i` occupies `raw[i*stride .. i*stride + dim]` (with
/// `stride == dim` for the packed layout). Identifiers are `u32`
/// throughout the workspace (a deliberate size choice: adjacency lists
/// dominate index memory, and 32-bit ids halve them relative to `usize`).
#[derive(Clone, Debug, Default)]
pub struct VectorStore {
    dim: usize,
    stride: usize,
    len: usize,
    data: Storage,
}

/// Row stride of the aligned layout: `dim` rounded up to a whole number of
/// cache lines (16 floats).
pub(crate) fn aligned_stride(dim: usize) -> usize {
    dim.next_multiple_of(LINE_F32)
}

impl VectorStore {
    /// Creates an empty packed store for vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, stride: dim, len: 0, data: Storage::Packed(Vec::new()) }
    }

    /// Creates an empty packed store with capacity reserved for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, stride: dim, len: 0, data: Storage::Packed(Vec::with_capacity(dim * n)) }
    }

    /// Creates an empty **aligned** store: 64-byte-aligned base, rows
    /// padded to whole cache lines (see the module docs).
    pub fn aligned(dim: usize) -> Self {
        Self::aligned_with_capacity(dim, 0)
    }

    /// Creates an empty aligned store with capacity reserved for `n`
    /// vectors.
    pub fn aligned_with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        let stride = aligned_stride(dim);
        let lines = Vec::with_capacity(n * stride / LINE_F32);
        Self { dim, stride, len: 0, data: Storage::Aligned(lines) }
    }

    /// Builds a packed store from a flat buffer of `n * dim` floats.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`, or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        let len = data.len() / dim;
        Self { dim, stride: dim, len, data: Storage::Packed(data) }
    }

    /// Builds a packed store by copying an iterator of vector rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<'a, I>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut store = Self::new(dim);
        for row in rows {
            store.push(row);
        }
        store
    }

    /// Wraps a memory-mapped data area as a read-only store. The region
    /// must hold `len` rows in the aligned geometry: rows
    /// `aligned_stride(dim)` floats apart, zero-padded, starting at a
    /// 64-byte-aligned offset (persisted mapped sections guarantee this).
    ///
    /// # Panics
    /// Panics if `dim == 0` or the region size disagrees with
    /// `len * stride` floats.
    pub fn from_mapped(dim: usize, len: usize, region: crate::mmap::MmapRegion) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        let stride = aligned_stride(dim);
        assert_eq!(
            region.len(),
            len * stride * std::mem::size_of::<f32>(),
            "mapped region size disagrees with {len} rows of stride {stride}"
        );
        // Fail fast on misaligned sections rather than on first access.
        let _ = region.as_f32s();
        Self { dim, stride, len, data: Storage::Mapped(region) }
    }

    /// `true` when rows live in a memory-mapped (or file-backed fallback)
    /// region rather than on the heap.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Storage::Mapped(_))
    }

    /// Copies this store into the aligned layout (same vectors, same ids).
    pub fn to_aligned(&self) -> VectorStore {
        let mut out = Self::aligned_with_capacity(self.dim, self.len);
        for (_, row) in self.iter() {
            out.push(row);
        }
        out
    }

    /// Copies this store into the packed layout (same vectors, same ids).
    pub fn to_packed(&self) -> VectorStore {
        let mut out = Self::with_capacity(self.dim, self.len);
        for (_, row) in self.iter() {
            out.push(row);
        }
        out
    }

    /// `true` when rows are cache-line aligned and padded (the aligned
    /// heap layout and the mapped backing share this geometry).
    #[inline]
    pub fn is_aligned(&self) -> bool {
        matches!(self.data, Storage::Aligned(_) | Storage::Mapped(_))
    }

    /// Floats between consecutive row starts (`== dim()` when packed).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The raw storage in row-major order. Rows are [`Self::stride`]
    /// floats apart; the aligned layout's zero padding is included.
    #[inline]
    fn raw(&self) -> &[f32] {
        match &self.data {
            Storage::Packed(v) => v,
            Storage::Aligned(lines) => unsafe {
                // Sound: `CacheLine` is `repr(align(64))` over `[f32; 16]`,
                // fully initialized, so the allocation is `len*16` valid
                // floats.
                std::slice::from_raw_parts(lines.as_ptr().cast::<f32>(), lines.len() * LINE_F32)
            },
            Storage::Mapped(region) => region.as_f32s(),
        }
    }

    /// Mutable view of the raw storage (same shape as [`Self::raw`]).
    #[inline]
    fn raw_mut(&mut self) -> &mut [f32] {
        match &mut self.data {
            Storage::Packed(v) => v,
            Storage::Aligned(lines) => unsafe {
                std::slice::from_raw_parts_mut(
                    lines.as_mut_ptr().cast::<f32>(),
                    lines.len() * LINE_F32,
                )
            },
            Storage::Mapped(_) => panic!("mapped stores are read-only"),
        }
    }

    /// Appends one vector, returning its id.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`, or if the store already holds
    /// `u32::MAX` vectors.
    pub fn push(&mut self, v: &[f32]) -> u32 {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        let id = self.len;
        assert!(id < u32::MAX as usize, "vector store exceeds u32 id space");
        match &mut self.data {
            Storage::Packed(data) => data.extend_from_slice(v),
            Storage::Mapped(_) => panic!("mapped stores are read-only"),
            Storage::Aligned(lines) => {
                let mut rest = v;
                for _ in 0..self.stride / LINE_F32 {
                    let mut line = [0.0f32; LINE_F32];
                    let take = rest.len().min(LINE_F32);
                    line[..take].copy_from_slice(&rest[..take]);
                    rest = &rest[take..];
                    lines.push(CacheLine(line));
                }
            }
        }
        self.len += 1;
        id as u32
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows vector `id` (always exactly `dim` elements; padding is
    /// never exposed).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn get(&self, id: u32) -> &[f32] {
        let start = id as usize * self.stride;
        &self.raw()[start..start + self.dim]
    }

    /// Mutably borrows vector `id`.
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut [f32] {
        let start = id as usize * self.stride;
        let dim = self.dim;
        &mut self.raw_mut()[start..start + dim]
    }

    /// Hints the CPU to pull vector `id`'s row into L1 (up to the first
    /// two cache lines — enough to cover the latency the beam-search
    /// expansion loop needs to hide). Semantically a no-op; `id` must
    /// still be in bounds.
    #[inline]
    pub fn prefetch(&self, id: u32) {
        let start = id as usize * self.stride;
        let raw = self.raw();
        debug_assert!(start + self.dim <= raw.len());
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        unsafe {
            let p = raw.as_ptr().add(start).cast::<i8>();
            #[cfg(target_arch = "x86_64")]
            {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(p);
                if self.dim > LINE_F32 {
                    _mm_prefetch::<_MM_HINT_T0>(p.add(64));
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                core::arch::asm!(
                    "prfm pldl1keep, [{0}]",
                    in(reg) p,
                    options(nostack, preserves_flags)
                );
                if self.dim > LINE_F32 {
                    core::arch::asm!(
                        "prfm pldl1keep, [{0}]",
                        in(reg) p.add(64),
                        options(nostack, preserves_flags)
                    );
                }
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = raw;
    }

    /// Iterates over `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        (0..self.len as u32).map(|i| (i, self.get(i)))
    }

    /// The underlying flat buffer **of a packed store** (`len * dim`
    /// floats, rows adjacent). Use [`Self::iter`] or [`Self::to_flat_vec`]
    /// for layout-agnostic access.
    ///
    /// # Panics
    /// Panics on an aligned store, whose raw buffer interleaves padding.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        assert!(!self.is_aligned(), "as_flat on an aligned store (use iter()/to_flat_vec())");
        self.raw()
    }

    /// Copies the logical contents into a packed `len * dim` buffer
    /// (padding stripped). Both layouts produce identical output.
    pub fn to_flat_vec(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len * self.dim);
        for (_, row) in self.iter() {
            out.extend_from_slice(row);
        }
        out
    }

    /// Heap bytes held by this store (the paper's "raw data" component of
    /// every index footprint report). For the aligned layout this includes
    /// the padding overhead — see [`Self::padding_bytes`] for that share.
    pub fn heap_bytes(&self) -> usize {
        match &self.data {
            Storage::Packed(v) => v.capacity() * std::mem::size_of::<f32>(),
            Storage::Aligned(lines) => lines.capacity() * std::mem::size_of::<CacheLine>(),
            // Kernel-managed: resident share is demand-faulted, not heap.
            Storage::Mapped(_) => 0,
        }
    }

    /// Bytes of the mapped backing file region (zero for heap stores):
    /// the demand-faulted counterpart of [`Self::heap_bytes`].
    pub fn mapped_bytes(&self) -> usize {
        match &self.data {
            Storage::Mapped(region) => region.len(),
            _ => 0,
        }
    }

    /// Bytes spent on alignment padding (zero for the packed layout): the
    /// cost side of the aligned layout's speed/space trade-off.
    pub fn padding_bytes(&self) -> usize {
        (self.stride - self.dim) * self.len * std::mem::size_of::<f32>()
    }

    /// Copies a subset of vectors into a new store (same layout as `self`),
    /// preserving order of `ids`. Used by divide-and-conquer methods
    /// (SPTAG, HCNNG, ELPIS) that build per-partition graphs.
    pub fn subset(&self, ids: &[u32]) -> VectorStore {
        let mut out = if self.is_aligned() {
            VectorStore::aligned_with_capacity(self.dim, ids.len())
        } else {
            VectorStore::with_capacity(self.dim, ids.len())
        };
        for &id in ids {
            out.push(self.get(id));
        }
        out
    }

    /// Copies the store with rows relabeled through `map`: row `u` of the
    /// result is row `map.to_old(u)` of `self`. The physical layout
    /// (packed or aligned) is preserved.
    pub fn permute(&self, map: &crate::reorder::IdRemap) -> VectorStore {
        assert_eq!(map.len(), self.len, "remap covers a different vector count");
        let mut out = if self.is_aligned() {
            VectorStore::aligned_with_capacity(self.dim, self.len)
        } else {
            VectorStore::with_capacity(self.dim, self.len)
        };
        for new in 0..self.len as u32 {
            out.push(self.get(map.to_old(new)));
        }
        out
    }

    /// Computes the exact medoid: the vector minimizing the sum of squared
    /// Euclidean distances to the dataset centroid's nearest representative.
    ///
    /// Following NSG and Vamana, the "medoid" entry point is approximated as
    /// the vector closest to the dataset centroid — an `O(n·d)` computation
    /// rather than the `O(n²·d)` true medoid.
    pub fn centroid_medoid(&self) -> u32 {
        assert!(!self.is_empty(), "medoid of empty store");
        let mut centroid = vec![0.0f64; self.dim];
        for (_, v) in self.iter() {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += *x as f64;
            }
        }
        let n = self.len() as f64;
        for c in &mut centroid {
            *c /= n;
        }
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (id, v) in self.iter() {
            let mut d = 0.0f64;
            for (c, x) in centroid.iter().zip(v) {
                let diff = c - *x as f64;
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = id;
            }
        }
        best
    }
}

// Both layouts serialize as the same `{dim, data}` shape the former
// `derive(Serialize)` produced for the packed-only store, so serialized
// output is layout-independent (and unchanged across the layout's
// introduction).
impl Serialize for VectorStore {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("VectorStore", 2)?;
        st.serialize_field("dim", &self.dim)?;
        st.serialize_field("data", &self.to_flat_vec())?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for VectorStore {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut s = VectorStore::new(3);
        assert!(s.is_empty());
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_splits_rows() {
        let s = VectorStore::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = VectorStore::from_flat(3, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_rejects_wrong_dim() {
        let mut s = VectorStore::new(3);
        s.push(&[1.0]);
    }

    #[test]
    fn iter_yields_all_rows() {
        let s = VectorStore::from_flat(1, vec![9.0, 8.0, 7.0]);
        let rows: Vec<_> = s.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], (2, &[7.0][..]));
    }

    #[test]
    fn subset_preserves_order() {
        let s = VectorStore::from_flat(1, vec![0.0, 10.0, 20.0, 30.0]);
        let sub = s.subset(&[3, 1]);
        assert_eq!(sub.get(0), &[30.0]);
        assert_eq!(sub.get(1), &[10.0]);
    }

    #[test]
    fn centroid_medoid_picks_central_point() {
        // Points on a line: 0, 1, 2, 100. Centroid ~ 25.75, closest is 2.
        let s = VectorStore::from_flat(1, vec![0.0, 1.0, 2.0, 100.0]);
        assert_eq!(s.centroid_medoid(), 2);
    }

    #[test]
    fn from_rows_collects() {
        let rows: Vec<&[f32]> = vec![&[1.0, 0.0], &[0.0, 1.0]];
        let s = VectorStore::from_rows(2, rows);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
    }

    // --- aligned layout -------------------------------------------------

    /// A 5-d store (awkward: 5 < 16, so stride rounds to one full line).
    fn sample_rows() -> Vec<Vec<f32>> {
        (0..7).map(|i| (0..5).map(|j| (i * 5 + j) as f32 * 0.25).collect()).collect()
    }

    #[test]
    fn aligned_rows_start_on_cache_lines() {
        let mut s = VectorStore::aligned(20); // stride rounds to 32
        assert_eq!(s.stride(), 32);
        for r in 0..3 {
            s.push(&(0..20).map(|j| (r * 20 + j) as f32).collect::<Vec<_>>());
        }
        for id in 0..3u32 {
            assert_eq!(s.get(id).as_ptr() as usize % 64, 0, "row {id} misaligned");
            assert_eq!(s.get(id).len(), 20);
        }
    }

    #[test]
    fn aligned_matches_packed_content() {
        let rows = sample_rows();
        let mut packed = VectorStore::new(5);
        let mut aligned = VectorStore::aligned(5);
        for r in &rows {
            assert_eq!(packed.push(r), aligned.push(r));
        }
        assert_eq!(packed.len(), aligned.len());
        for id in 0..rows.len() as u32 {
            assert_eq!(packed.get(id), aligned.get(id), "row {id}");
        }
        assert_eq!(packed.to_flat_vec(), aligned.to_flat_vec());
        assert_eq!(packed.centroid_medoid(), aligned.centroid_medoid());
    }

    #[test]
    fn layout_conversions_roundtrip() {
        let rows = sample_rows();
        let packed = VectorStore::from_rows(5, rows.iter().map(|r| r.as_slice()));
        let aligned = packed.to_aligned();
        assert!(aligned.is_aligned());
        assert!(!packed.is_aligned());
        let back = aligned.to_packed();
        assert_eq!(back.to_flat_vec(), packed.to_flat_vec());
        // Subset preserves its source's layout.
        assert!(aligned.subset(&[1, 3]).is_aligned());
        assert!(!packed.subset(&[1, 3]).is_aligned());
        assert_eq!(aligned.subset(&[1, 3]).get(1), packed.subset(&[1, 3]).get(1));
    }

    #[test]
    fn padding_is_accounted() {
        let packed = VectorStore::from_rows(5, sample_rows().iter().map(|r| r.as_slice()));
        let aligned = packed.to_aligned();
        assert_eq!(packed.padding_bytes(), 0);
        // stride 16, dim 5 -> 11 padding floats per row.
        assert_eq!(aligned.padding_bytes(), 11 * 7 * 4);
        assert!(aligned.heap_bytes() >= aligned.len() * 64);
    }

    #[test]
    fn aligned_get_mut_writes_through() {
        let mut s = VectorStore::aligned(3);
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        s.get_mut(1)[0] = 9.0;
        assert_eq!(s.get(1), &[9.0, 5.0, 6.0]);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "as_flat on an aligned store")]
    fn as_flat_rejects_aligned() {
        let s = VectorStore::aligned(3);
        let _ = s.as_flat();
    }

    #[test]
    fn prefetch_is_a_noop_semantically() {
        let s = VectorStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).to_aligned();
        s.prefetch(0);
        s.prefetch(1);
        assert_eq!(s.get(1), &[3.0, 4.0]);
    }

    #[test]
    fn dim_exactly_one_line_gets_no_padding() {
        let mut s = VectorStore::aligned(16);
        assert_eq!(s.stride(), 16);
        s.push(&[0.5; 16]);
        assert_eq!(s.padding_bytes(), 0);
        assert_eq!(s.get(0), &[0.5; 16]);
    }
}
