//! Concurrent query-throughput measurement: QPS and latency percentiles
//! across a thread pool.
//!
//! The paper times queries sequentially ("mimicking a real-world scenario
//! where queries are unpredictable"); production deployments also care
//! about aggregate throughput under concurrency, which the `AnnIndex`
//! contract supports (`Send + Sync`, per-thread scratch via the pool).
//! This module measures both.

use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_core::store::VectorStore;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Latency/throughput summary for one run.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Queries executed.
    pub queries: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Aggregate queries per second.
    pub qps: f64,
    /// Mean per-query latency in microseconds.
    pub mean_us: f64,
    /// 50th / 95th / 99th percentile latencies in microseconds.
    pub p50_us: f64,
    /// 95th percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Total distance calculations.
    pub dist_calcs: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Runs every query in `queries` (each `rounds` times) across `threads`
/// workers pulling from a shared work queue, and reports QPS plus latency
/// percentiles.
pub fn measure_throughput(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    params: &QueryParams,
    threads: usize,
    rounds: usize,
) -> ThroughputReport {
    assert!(!queries.is_empty(), "throughput over empty query set");
    let threads = threads.max(1);
    let total = queries.len() * rounds.max(1);
    let counter = DistCounter::new();
    let next = AtomicUsize::new(0);
    let collected = std::sync::Mutex::new(Vec::with_capacity(total));

    let wall = std::time::Instant::now();
    gass_core::par::par_workers(threads, |_worker| {
        let mut lat = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            let q = queries.get((i % queries.len()) as u32);
            let t = std::time::Instant::now();
            let res = index.search(q, params, &counter);
            lat.push(t.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(res);
        }
        collected.lock().unwrap().extend(lat);
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = collected.into_inner().unwrap();
    latencies.sort_by(f64::total_cmp);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    ThroughputReport {
        queries: total,
        threads,
        qps: total as f64 / wall_s.max(1e-12),
        mean_us: mean,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        dist_calcs: counter.get(),
    }
}

/// [`measure_throughput`] through the *batch* serving entry point
/// ([`gass_core::index::search_batch_parallel`]) instead of the hand-rolled
/// work queue above: the query set is answered `rounds` times, each round
/// as one parallel batch over the index's shared scratch pool.
///
/// This is the explicit opt-in parallel serving mode — the default
/// evaluation path stays the sequential [`gass_core::index::search_batch`]
/// (the paper times queries one at a time). Per-query results and distance
/// totals are identical to the sequential batch; only scheduling differs.
/// Batch mode has no per-query timer, so `mean_us` is the amortized
/// per-query wall time and the percentile fields are reported as 0.
pub fn measure_throughput_batch(
    index: &dyn AnnIndex,
    queries: &VectorStore,
    params: &QueryParams,
    threads: usize,
    rounds: usize,
) -> ThroughputReport {
    assert!(!queries.is_empty(), "throughput over empty query set");
    let threads = threads.max(1);
    let rounds = rounds.max(1);
    let total = queries.len() * rounds;
    let counter = DistCounter::new();
    let wall = std::time::Instant::now();
    for _ in 0..rounds {
        let res =
            gass_core::index::search_batch_parallel(index, queries, params, &counter, threads);
        std::hint::black_box(res);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    ThroughputReport {
        queries: total,
        threads,
        qps: total as f64 / wall_s.max(1e-12),
        mean_us: wall_s * 1e6 / total as f64,
        p50_us: 0.0,
        p95_us: 0.0,
        p99_us: 0.0,
        dist_calcs: counter.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::index::SerialScanIndex;
    use gass_data::synth::deep_like;

    #[test]
    fn throughput_runs_all_queries() {
        let base = deep_like(300, 1);
        let queries = deep_like(12, 2);
        let idx = SerialScanIndex::new(base);
        let rep = measure_throughput(&idx, &queries, &QueryParams::new(5, 5), 4, 3);
        assert_eq!(rep.queries, 36);
        assert_eq!(rep.threads, 4);
        assert!(rep.qps > 0.0);
        assert!(rep.p50_us <= rep.p95_us && rep.p95_us <= rep.p99_us);
        // Every query scans all 300 vectors.
        assert_eq!(rep.dist_calcs, 36 * 300);
    }

    #[test]
    fn single_thread_matches_total_work() {
        let base = deep_like(100, 3);
        let queries = deep_like(5, 4);
        let idx = SerialScanIndex::new(base);
        let rep = measure_throughput(&idx, &queries, &QueryParams::new(3, 3), 1, 1);
        assert_eq!(rep.queries, 5);
        assert!(rep.mean_us > 0.0);
    }

    #[test]
    fn batch_mode_does_the_same_work() {
        let base = deep_like(200, 5);
        let queries = deep_like(8, 6);
        let idx = SerialScanIndex::new(base);
        let rep = measure_throughput_batch(&idx, &queries, &QueryParams::new(5, 5), 4, 2);
        assert_eq!(rep.queries, 16);
        assert!(rep.qps > 0.0);
        // Same distance totals as the sequential path would produce.
        assert_eq!(rep.dist_calcs, 16 * 200);
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }
}
