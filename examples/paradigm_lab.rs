//! Paradigm lab: compose your own graph method from the paper's design
//! paradigms — pick a Neighborhood Diversification strategy for the
//! incremental-insertion baseline, then pick a Seed Selection strategy at
//! query time, and see how each choice moves the accuracy/efficiency
//! trade-off.
//!
//! ```sh
//! cargo run --release --example paradigm_lab
//! ```

use gass::prelude::*;
use gass_core::seed::{FixedSeed, MedoidSeed, RandomSeeds};
use gass_core::Space;
use gass_eval::{recall_at_k, Table};
use gass_graphs::SnSeeds;
use gass_trees::kdtree::KdForest;

fn main() {
    let n = 8_000;
    let base = gass::data::synth::sift_like(n, 21);
    let queries = gass::data::synth::sift_like(50, 22);
    let k = 10;
    let truth = gass::data::ground_truth(&base, &queries, k);
    println!("SIFT-like: {} x {}d\n", n, base.dim());

    // ------------------------------------------------------------------
    // Axis 1: Neighborhood Diversification during construction.
    // ------------------------------------------------------------------
    println!("== ND strategies on the II baseline (Section 4.2) ==");
    let mut nd_table = Table::new(vec!["ND", "edges", "recall@10(L=48)", "dists/query"]);
    let mut rnd_graph = None;
    for nd in [
        NdStrategy::NoNd,
        NdStrategy::Rnd,
        NdStrategy::rrnd_default(),
        NdStrategy::mond_default(),
    ] {
        let g = IiGraph::build(base.clone(), IiParams::small(nd));
        let counter = DistCounter::new();
        let params = QueryParams::new(k, 48).with_seed_count(8);
        let mut recall = 0.0;
        for (qi, t) in truth.iter().enumerate() {
            let res = g.search(queries.get(qi as u32), &params, &counter);
            recall += recall_at_k(t, &res.neighbors, k);
        }
        nd_table.row(vec![
            nd.label().to_string(),
            format!("{}", g.stats().edges),
            format!("{:.4}", recall / truth.len() as f64),
            format!("{}", counter.get() / truth.len() as u64),
        ]);
        if matches!(nd, NdStrategy::Rnd) {
            rnd_graph = Some(g);
        }
    }
    println!("{}", nd_table.render());

    // ------------------------------------------------------------------
    // Axis 2: Seed Selection at query time, on the same II+RND graph.
    // ------------------------------------------------------------------
    println!("== SS strategies on the same II+RND graph (Section 4.3) ==");
    let g = rnd_graph.expect("RND graph built above");
    let setup_counter = DistCounter::new();
    let space = Space::new(g.store(), &setup_counter);

    let sn = SnSeeds::build(space, 8, 32, 5);
    let kd = KdForest::build(g.store(), 4, 16, 6);
    let md = MedoidSeed::compute(space);
    let sf = FixedSeed::random(n, 7);
    let ks = RandomSeeds::new(n, 8);
    let providers: Vec<(&str, &dyn SeedProvider)> =
        vec![("SN", &sn), ("KD", &kd), ("MD", &md), ("SF", &sf), ("KS", &ks)];

    let mut ss_table = Table::new(vec!["SS", "recall@10(L=48)", "dists/query"]);
    for (label, provider) in providers {
        let counter = DistCounter::new();
        let params = QueryParams::new(k, 48).with_seed_count(16);
        let mut recall = 0.0;
        for (qi, t) in truth.iter().enumerate() {
            let res = g.search_with(provider, queries.get(qi as u32), &params, &counter);
            recall += recall_at_k(t, &res.neighbors, k);
        }
        ss_table.row(vec![
            label.to_string(),
            format!("{:.4}", recall / truth.len() as f64),
            format!("{}", counter.get() / truth.len() as u64),
        ]);
    }
    println!("{}", ss_table.render());
    println!(
        "Paper's take-away: RND/MOND dominate the ND axis; SN and KS dominate \
         the SS axis (SN pulls ahead only at billion scale)."
    );
}
