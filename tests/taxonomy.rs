//! Structural verification of the taxonomy (paper Figure 3): each
//! method's built index must exhibit the paradigms the taxonomy assigns
//! to it.

use gass::prelude::*;
use gass_core::graph::GraphView;

fn deep(n: usize, seed: u64) -> VectorStore {
    gass::data::synth::deep_like(n, seed)
}

#[test]
fn hnsw_exhibits_ii_and_sn() {
    let idx = gass::graphs::HnswIndex::build(deep(500, 1), gass::graphs::HnswParams::small());
    // SN: a non-trivial hierarchy exists and thins geometrically.
    assert!(idx.hierarchy().num_layers() >= 1);
    assert!(idx.hierarchy().layer_len(0) < 500);
    // ND: base degree bounded by 2M.
    assert!(idx.stats().max_degree <= 2 * idx.params().m);
}

#[test]
fn nsw_exhibits_ii_without_nd() {
    let idx = gass::graphs::NswIndex::build(deep(500, 2), gass::graphs::NswParams::small());
    // No pruning: hub degrees exceed M by a lot.
    assert!(idx.stats().max_degree > 2 * 12, "NSW hubs missing: {}", idx.stats().max_degree);
}

#[test]
fn dpg_is_undirected_and_diversified() {
    let idx = gass::graphs::DpgIndex::build(deep(400, 3), gass::graphs::DpgParams::small());
    let g = idx.graph();
    for u in 0..g.num_nodes() as u32 {
        for &v in g.neighbors(u) {
            assert!(g.neighbors(v).contains(&u), "DPG edge {u}->{v} not symmetric");
        }
    }
}

#[test]
fn nsg_is_connected_from_its_medoid() {
    let idx = gass::graphs::NsgIndex::build(deep(400, 4), gass::graphs::NsgParams::small());
    let g = idx.graph();
    let mut seen = vec![false; g.num_nodes()];
    let mut q = std::collections::VecDeque::from([idx.medoid()]);
    seen[idx.medoid() as usize] = true;
    while let Some(u) = q.pop_front() {
        for &v in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                q.push_back(v);
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "NSG connectivity repair failed");
}

#[test]
fn vamana_respects_its_degree_bound() {
    let idx =
        gass::graphs::VamanaIndex::build(deep(400, 5), gass::graphs::VamanaParams::small());
    assert!(idx.stats().max_degree <= 24);
    // RRND with alpha > 1 keeps denser neighborhoods than plain RND would:
    // mean degree should be a healthy fraction of R.
    assert!(idx.stats().avg_degree > 6.0, "Vamana too sparse: {}", idx.stats().avg_degree);
}

#[test]
fn elpis_partitions_cover_the_dataset() {
    let idx = gass::graphs::ElpisIndex::build(deep(700, 6), gass::graphs::ElpisParams::small());
    assert!(idx.num_leaves() >= 2, "DC method must partition");
    assert_eq!(idx.num_vectors(), 700);
}

#[test]
fn hcnng_is_a_merged_mst_union() {
    let idx = gass::graphs::HcnngIndex::build(deep(400, 7), gass::graphs::HcnngParams::small());
    let g = idx.graph();
    // Undirected (MST edges added both ways) and sparse (MST degree cap ×
    // number of clusterings bounds the degree).
    for u in 0..g.num_nodes() as u32 {
        for &v in g.neighbors(u) {
            assert!(g.neighbors(v).contains(&u));
        }
    }
    assert!(g.max_degree() <= 3 * 16, "degree beyond MST-cap × clusterings");
}

#[test]
fn kgraph_lists_are_exactly_k_sized() {
    let idx = gass::graphs::KGraphIndex::build(
        deep(300, 8),
        gass::graphs::KGraphParams { k: 15, ..gass::graphs::KGraphParams::small() },
    );
    let g = idx.graph();
    for u in 0..g.num_nodes() as u32 {
        assert_eq!(g.neighbors(u).len(), 15, "node {u} list size");
    }
}

#[test]
fn sptag_variants_share_graph_recipe_but_not_seeds() {
    let base = deep(600, 9);
    let kdt = gass::graphs::SptagIndex::build(
        base.clone(),
        gass::graphs::SptagParams::small(gass::graphs::SptagVariant::Kdt),
    );
    let bkt = gass::graphs::SptagIndex::build(
        base,
        gass::graphs::SptagParams::small(gass::graphs::SptagVariant::Bkt),
    );
    // Same divisions and refinement -> identical graphs; different seed
    // structures -> different aux footprints.
    assert_eq!(kdt.stats().edges, bkt.stats().edges);
    assert_ne!(kdt.stats().aux_bytes, bkt.stats().aux_bytes);
}

#[test]
fn lshapg_and_ieh_carry_hash_structures() {
    let base = deep(400, 10);
    let lshapg =
        gass::graphs::LshapgIndex::build(base.clone(), gass::graphs::LshapgParams::small());
    let ieh = gass::graphs::IehIndex::build(base, gass::graphs::IehParams::small());
    assert!(lshapg.stats().aux_bytes > 0);
    assert!(ieh.stats().aux_bytes > 0);
    assert!(lshapg.lsh().num_tables() >= 1);
}

#[test]
fn hvs_pyramid_replaces_random_levels() {
    let idx = gass::graphs::HvsIndex::build(deep(500, 11), gass::graphs::HvsParams::small());
    assert_eq!(idx.pyramid().num_levels(), 3);
    assert!(idx.stats().aux_bytes > 0);
}
