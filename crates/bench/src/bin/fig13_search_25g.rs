//! Figure 13: query performance at the 25GB tier (Deep, Sift, SALD,
//! Seismic) plus the power-law distribution study (13e/13f: RandPow 0, 5
//! and 50).
//!
//! Paper shape: SSG/NSG/NGT/HCNNG drop off relative to their 1M showing;
//! ELPIS takes the overall lead (sharing it with SPTAG-BKT on SALD); no
//! method exceeds ~0.8 recall on Seismic; on the power-law family ELPIS
//! stays on top across skew levels and most methods improve as skew
//! grows.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig13_search_25g
//! ```

use gass_bench::{run_search_figure, tiers};
use gass_data::DatasetKind;
use gass_graphs::MethodKind;

fn main() {
    let n = tiers()[1].n;
    // The paper drops KGraph, DPG, SPTAG-KDT, HCNNG and EFANNA from the
    // 25GB plots for clarity (far behind the leaders).
    let methods = [
        MethodKind::Elpis,
        MethodKind::Hnsw,
        MethodKind::Vamana,
        MethodKind::Nsg,
        MethodKind::Ssg,
        MethodKind::Ngt,
        MethodKind::SptagBkt,
        MethodKind::Lshapg,
    ];
    let workloads = [
        (DatasetKind::Deep, n),
        (DatasetKind::Sift, n),
        (DatasetKind::Sald, n),
        (DatasetKind::Seismic, n),
    ];
    run_search_figure("fig13_search_25g", &workloads, &methods, 10, 103);

    // 13e/13f: data distributions.
    let dist_methods = [
        MethodKind::Efanna,
        MethodKind::Vamana,
        MethodKind::Ssg,
        MethodKind::Hnsw,
        MethodKind::Elpis,
        MethodKind::SptagBkt,
    ];
    let pow_workloads = [
        (DatasetKind::RandPow(0), n),
        (DatasetKind::RandPow(5), n),
        (DatasetKind::RandPow(50), n),
    ];
    run_search_figure("fig13ef_powerlaw", &pow_workloads, &dist_methods, 10, 104);
}
