//! **NGT** — Neighborhood Graph and Tree (Yahoo Japan): the variant the
//! paper evaluates builds a *bi-directed k-NN graph* (k-NN lists plus all
//! reverse edges), prunes neighborhoods with RND, and selects query seeds
//! with a Vantage-Point tree.

use crate::common::BuildReport;
use crate::nndescent::KnnGraphState;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use gass_trees::vptree::VpSeeds;

/// NGT construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct NgtParams {
    /// Base k-NN list length.
    pub base_k: usize,
    /// Final out-degree after RND pruning.
    pub max_degree: usize,
    /// NNDescent iterations approximating the k-NN graph.
    pub iters: usize,
    /// VP-tree leaf size (seed structure).
    pub vp_leaf: usize,
    /// RNG seed.
    pub seed: u64,
}

impl NgtParams {
    /// Small-scale defaults.
    pub fn small() -> Self {
        Self { base_k: 20, max_degree: 16, iters: 10, vp_leaf: 12, seed: 42 }
    }
}

/// A built NGT index.
pub struct NgtIndex {
    store: VectorStore,
    graph: AdjacencyGraph,
    serving: ServingState,
    vp: VpSeeds,
    scratch: ScratchPool,
    build: BuildReport,
}

impl NgtIndex {
    /// Builds the index: approximate k-NN graph → bi-direct → RND prune →
    /// VP-tree for seeds.
    pub fn build(store: VectorStore, params: NgtParams) -> Self {
        assert!(store.len() > params.base_k, "need more points than base_k");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let (graph, vp) = {
            let space = Space::new(&store, &counter);
            let mut state = KnnGraphState::random_init(space, params.base_k, params.seed);
            state.run(space, params.iters, params.base_k + 8, 0.002, params.seed ^ 0x17);
            // Bi-directed k-NN graph.
            let mut g = AdjacencyGraph::new(store.len());
            for (u, list) in state.lists().iter().enumerate() {
                for nb in list {
                    g.add_undirected(u as u32, nb.id);
                }
            }
            // RND prune every (now enlarged) neighborhood.
            for u in 0..store.len() as u32 {
                let scored: Vec<Neighbor> = g
                    .neighbors(u)
                    .iter()
                    .map(|&v| Neighbor::new(v, space.dist(u, v)))
                    .collect();
                let kept = NdStrategy::Rnd.diversify(space, u, &scored, params.max_degree);
                g.set_neighbors(u, kept.into_iter().map(|n| n.id).collect());
            }
            let vp = VpSeeds::build(space, params.vp_leaf, params.seed ^ 0x9d);
            (g, vp)
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        Self {
            store,
            graph,
            vp,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The pruned graph.
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }
}

impl AnnIndex for NgtIndex {
    fn name(&self) -> String {
        "NGT".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.vp.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.vp.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.vp.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn ngt_recall_with_vp_seeds() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = NgtIndex::build(base.clone(), NgtParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 128).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.8, "NGT recall too low: {recall}"); // paper rates NGT "medium" accuracy
    }

    #[test]
    fn degree_bounded_after_pruning() {
        let base = deep_like(300, 3);
        let idx = NgtIndex::build(base, NgtParams::small());
        assert!(idx.stats().max_degree <= 16);
        assert!(idx.stats().aux_bytes > 0, "VP tree must be accounted");
        assert_eq!(idx.name(), "NGT");
    }
}
