//! SQ8 scalar quantization: per-dimension affine `u8` codes for bandwidth-
//! bound graph traversal, with exact `f32` rerank at the end of every
//! search.
//!
//! Graph traversal at serving time is memory-bound: every beam step streams
//! whole vector rows through the cache hierarchy. Quantizing each dimension
//! to one byte (`x ≈ min_d + code · Δ_d`, `Δ_d = (max_d − min_d)/255`) cuts
//! that traffic 4×; the induced ranking error is repaired by re-scoring a
//! pool of `rerank_factor · k` leading candidates with exact `f32`
//! distances before returning (kANNolo's and Faiss's standard two-phase
//! scheme).
//!
//! ## Asymmetric distance
//!
//! Queries are **not** quantized. [`QuantizedStore::prepare_into`] shifts
//! the query once per search against the per-dimension grid — `u_d = q_d −
//! min_d` with step `s_d = Δ_d` — after which each candidate distance is
//! `Σ_d (u_d − s_d · c_d)²`: the squared distance between the query and
//! the *decoded* candidate, evaluated directly. This folded form needs no
//! division in the prepare step, no per-lane weight multiply in the
//! kernel (one fused multiply-subtract and one fused multiply-add per
//! lane), and no special case for degenerate constant dimensions —
//! `Δ_d = 0` makes `s_d = 0` and the lane contributes its exact
//! `(q_d − min_d)²` term against code 0.
//!
//! ## Layout and kernels
//!
//! Code rows are padded to whole 64-byte cache lines and the base pointer
//! is 64-byte aligned, mirroring the aligned `f32` layout of
//! [`crate::store::VectorStore`]; the prepared query arrays are zero-padded
//! to the same stride, so padded lanes contribute `(0 − 0·c)² = +0` and
//! never perturb a result. The `u8` kernels ([`l2_sq_u8`],
//! [`l2_sq_u8_batch`]) follow the same bit-identity discipline as the `f32`
//! kernels in [`crate::distance`]: eight accumulator lanes by position
//! `mod 8`, the fixed `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` reduction
//! tree, and zero-padded tails — but with *fused* multiply-adds
//! (`d = u − s·c` and `acc += d·d`, one rounding each), which the scalar
//! reference reproduces exactly through `f32::mul_add`. `u8 → f32`
//! conversion is exact, so AVX2 (+FMA), NEON and the scalar fallback
//! return bit-identical distances; `GASS_NO_SIMD` /
//! [`crate::set_simd_enabled`] select backends exactly as for `f32`, and
//! the rare AVX2-without-FMA host falls back to the scalar reference.

use super::{CodeBuf, CodeLine, CodecSpec, CodecStore, PreparedQuery, LINE_U8};
use crate::store::VectorStore;

/// Row stride of the quantized layout: `dim` rounded up to a whole number
/// of cache lines (64 codes).
pub(crate) fn quant_stride(dim: usize) -> usize {
    dim.next_multiple_of(LINE_U8)
}

// --- the quantized store ------------------------------------------------

/// Per-dimension min/max affine `u8` codes over a whole
/// [`VectorStore`], laid out in cache-line-padded rows.
#[derive(Clone, Debug)]
pub struct QuantizedStore {
    dim: usize,
    stride: usize,
    len: usize,
    mins: Vec<f32>,
    deltas: Vec<f32>,
    codes: CodeBuf,
}

impl QuantizedStore {
    /// Quantizes every vector of `store`: per-dimension min/max over the
    /// data, 255 equal steps per dimension, codes rounded to nearest.
    /// Deterministic — the same store always yields the same codes, which
    /// is what lets persistence re-encode on load.
    ///
    /// # Panics
    /// Panics if `store` is empty.
    pub fn from_store(store: &VectorStore) -> Self {
        assert!(!store.is_empty(), "cannot quantize an empty store");
        let dim = store.dim();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for (_, row) in store.iter() {
            for d in 0..dim {
                mins[d] = mins[d].min(row[d]);
                maxs[d] = maxs[d].max(row[d]);
            }
        }
        let deltas: Vec<f32> = (0..dim).map(|d| (maxs[d] - mins[d]) / 255.0).collect();
        let stride = quant_stride(dim);
        let mut out = Self {
            dim,
            stride,
            len: 0,
            mins,
            deltas,
            codes: CodeBuf::Heap(Vec::with_capacity(store.len() * stride / LINE_U8)),
        };
        for (_, row) in store.iter() {
            out.push_row(row);
        }
        out
    }

    /// Reassembles a store from persisted parts: packed code rows (`dim`
    /// bytes each, no padding) plus the per-dimension affine parameters.
    ///
    /// # Panics
    /// Panics if the lengths are inconsistent or `dim == 0`.
    pub fn from_parts(dim: usize, mins: Vec<f32>, deltas: Vec<f32>, packed: Vec<u8>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert_eq!(mins.len(), dim, "mins length mismatch");
        assert_eq!(deltas.len(), dim, "deltas length mismatch");
        assert!(
            packed.len().is_multiple_of(dim),
            "packed code length {} is not a multiple of dim {}",
            packed.len(),
            dim
        );
        let stride = quant_stride(dim);
        let n = packed.len() / dim;
        let mut out = Self {
            dim,
            stride,
            len: 0,
            mins,
            deltas,
            codes: CodeBuf::Heap(Vec::with_capacity(n * stride / LINE_U8)),
        };
        for row in packed.chunks_exact(dim) {
            let mut rest = row;
            for _ in 0..stride / LINE_U8 {
                let mut line = [0u8; LINE_U8];
                let take = rest.len().min(LINE_U8);
                line[..take].copy_from_slice(&rest[..take]);
                rest = &rest[take..];
                out.codes.push(CodeLine(line));
            }
            out.len += 1;
        }
        out
    }

    fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.dim);
        let mut line = [0u8; LINE_U8];
        let mut fill = 0usize;
        let mut vals = row.iter().zip(self.mins.iter().zip(&self.deltas));
        for _ in 0..self.stride {
            let code = match vals.next() {
                Some((&x, (&lo, &delta))) if delta > 0.0 => {
                    ((x - lo) / delta).round().clamp(0.0, 255.0) as u8
                }
                _ => 0,
            };
            line[fill] = code;
            fill += 1;
            if fill == LINE_U8 {
                self.codes.push(CodeLine(line));
                line = [0u8; LINE_U8];
                fill = 0;
            }
        }
        debug_assert_eq!(fill, 0, "stride is a whole number of lines");
        self.len += 1;
    }

    /// Number of quantized vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Codes between consecutive row starts (a multiple of 64).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Per-dimension minima.
    #[inline]
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-dimension quantization steps (`0` for constant dimensions).
    #[inline]
    pub fn deltas(&self) -> &[f32] {
        &self.deltas
    }

    #[inline]
    fn raw(&self) -> &[u8] {
        self.codes.bytes()
    }

    /// The full padded code row of vector `id` (`stride` bytes; padding
    /// codes are zero and are neutralized by the zero weights of
    /// [`PreparedQuery`]).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn code_row(&self, id: u32) -> &[u8] {
        let start = id as usize * self.stride;
        &self.raw()[start..start + self.stride]
    }

    /// Copies the logical codes into a packed `len * dim` buffer (padding
    /// stripped) — the persisted representation.
    pub fn to_packed_codes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len * self.dim);
        for id in 0..self.len as u32 {
            out.extend_from_slice(&self.code_row(id)[..self.dim]);
        }
        out
    }

    /// Copies the store with code rows relabeled through `map`: row `u` of
    /// the result is row `map.to_old(u)` of `self`. The affine parameters
    /// are global per dimension, so permuted codes are bit-identical to
    /// re-encoding the permuted vectors.
    pub fn permute(&self, map: &crate::reorder::IdRemap) -> QuantizedStore {
        assert_eq!(map.len(), self.len, "remap covers a different vector count");
        let mut codes = vec![CodeLine([0u8; LINE_U8]); self.len * self.stride / LINE_U8];
        let dst = super::lines_as_bytes_mut(&mut codes);
        let src = self.raw();
        for new in 0..self.len {
            let old = map.to_old(new as u32) as usize;
            dst[new * self.stride..(new + 1) * self.stride]
                .copy_from_slice(&src[old * self.stride..(old + 1) * self.stride]);
        }
        Self {
            dim: self.dim,
            stride: self.stride,
            len: self.len,
            mins: self.mins.clone(),
            deltas: self.deltas.clone(),
            codes: CodeBuf::Heap(codes),
        }
    }

    /// Reconstructs vector `id` from its codes (`min_d + c_d · Δ_d`). The
    /// asymmetric distance to a query equals the exact squared distance to
    /// this reconstruction.
    pub fn decode(&self, id: u32) -> Vec<f32> {
        let row = self.code_row(id);
        (0..self.dim).map(|d| self.mins[d] + row[d] as f32 * self.deltas[d]).collect()
    }

    /// Shifts `query` against the quantization grid (see the module docs),
    /// reusing the buffers of `out`. Padding lanes get `u = 0, s = 0`.
    pub fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery) {
        debug_assert_eq!(query.len(), self.dim, "query dimension mismatch");
        out.u.clear();
        out.s.clear();
        out.u.reserve(self.stride);
        out.s.reserve(self.stride);
        for (&q, &lo) in query.iter().zip(&self.mins) {
            out.u.push(q - lo);
        }
        out.s.extend_from_slice(&self.deltas);
        out.u.resize(self.stride, 0.0);
        out.s.resize(self.stride, 0.0);
    }

    /// Kernel span: `dim` rounded up to a whole 8-lane chunk. The lanes
    /// between `dim` and the full line-padded `stride` carry `w = 0` and
    /// contribute exactly `+0.0`, so the kernels can stop here —
    /// bit-identical to running the whole padded row, but up to a third
    /// fewer chunks (e.g. 96 → 96 lanes instead of 128).
    #[inline]
    fn kern_len(&self) -> usize {
        (self.dim + 7) & !7
    }

    /// Asymmetric squared distance from a prepared query to vector `id`.
    #[inline]
    pub fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32 {
        let k = self.kern_len();
        l2_sq_u8(&pq.u[..k], &pq.s[..k], &self.code_row(id)[..k])
    }

    /// Asymmetric squared distances from a prepared query to **four**
    /// vectors at once (bit-identical to four [`Self::dist_prepared`]
    /// calls).
    #[inline]
    pub fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        let k = self.kern_len();
        l2_sq_u8_batch(
            &pq.u[..k],
            &pq.s[..k],
            [
                &self.code_row(ids[0])[..k],
                &self.code_row(ids[1])[..k],
                &self.code_row(ids[2])[..k],
                &self.code_row(ids[3])[..k],
            ],
        )
    }

    /// Hints the CPU to pull vector `id`'s code row into L1 (up to two
    /// cache lines, like [`VectorStore::prefetch`]). Semantically a no-op.
    #[inline]
    pub fn prefetch(&self, id: u32) {
        let start = id as usize * self.stride;
        let raw = self.raw();
        debug_assert!(start + self.dim <= raw.len());
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        unsafe {
            let p = raw.as_ptr().add(start).cast::<i8>();
            #[cfg(target_arch = "x86_64")]
            {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(p);
                if self.dim > LINE_U8 {
                    _mm_prefetch::<_MM_HINT_T0>(p.add(64));
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                core::arch::asm!(
                    "prfm pldl1keep, [{0}]",
                    in(reg) p,
                    options(nostack, preserves_flags)
                );
                if self.dim > LINE_U8 {
                    core::arch::asm!(
                        "prfm pldl1keep, [{0}]",
                        in(reg) p.add(64),
                        options(nostack, preserves_flags)
                    );
                }
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = raw;
    }

    /// Heap bytes held by the codes and affine parameters (the quantized
    /// serving path's memory cost, reported by index footprint harnesses).
    pub fn heap_bytes(&self) -> usize {
        self.codes.heap_bytes()
            + (self.mins.capacity() + self.deltas.capacity()) * std::mem::size_of::<f32>()
    }

    /// Wraps a memory-mapped code area (aligned geometry: rows `stride`
    /// bytes apart, 64-byte-aligned start) with the given affine
    /// parameters — the mapped counterpart of [`Self::from_parts`].
    ///
    /// # Panics
    /// Panics on shape mismatch between the region and `len` rows.
    pub fn from_parts_mapped(
        dim: usize,
        mins: Vec<f32>,
        deltas: Vec<f32>,
        len: usize,
        region: crate::mmap::MmapRegion,
    ) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert_eq!(mins.len(), dim, "mins length mismatch");
        assert_eq!(deltas.len(), dim, "deltas length mismatch");
        let stride = quant_stride(dim);
        assert_eq!(region.len(), len * stride, "mapped code area size mismatch");
        Self { dim, stride, len, mins, deltas, codes: CodeBuf::from_mapped(region) }
    }
}

impl CodecStore for QuantizedStore {
    fn spec(&self) -> CodecSpec {
        CodecSpec::Sq8
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn code_row(&self, id: u32) -> &[u8] {
        self.code_row(id)
    }

    fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery) {
        self.prepare_into(query, out);
    }

    fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32 {
        self.dist_prepared(pq, id)
    }

    fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        self.dist_prepared_batch(pq, ids)
    }

    fn prefetch(&self, id: u32) {
        self.prefetch(id);
    }

    fn decode(&self, id: u32) -> Vec<f32> {
        self.decode(id)
    }

    fn permute(&self, map: &crate::reorder::IdRemap) -> Box<dyn CodecStore> {
        Box::new(QuantizedStore::permute(self, map))
    }

    fn heap_bytes(&self) -> usize {
        self.heap_bytes()
    }

    fn clone_box(&self) -> Box<dyn CodecStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// --- u8 asymmetric-distance kernels -------------------------------------

/// Reduces the eight accumulator lanes in the canonical tree order (same
/// as the `f32` kernels).
#[inline(always)]
pub(crate) fn reduce8(acc: [f32; 8]) -> f32 {
    let c = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    (c[0] + c[2]) + (c[1] + c[3])
}

/// One lane of the asymmetric kernel: fused residual `u − s·c`, fused
/// square-accumulate. Exactly one rounding per operation — what
/// `vfnmadd`/`vfmadd` (AVX2+FMA) and `fmls`/`fmla` (NEON) produce, which
/// is why the backends agree bitwise.
#[inline(always)]
pub(crate) fn lane(u: f32, s: f32, c: u8, acc: f32) -> f32 {
    let d = (-s).mul_add(c as f32, u);
    d.mul_add(d, acc)
}

/// Scalar reference for [`l2_sq_u8`]: eight-lane unrolled squared distance
/// against the decoded candidate, `Σ (u_i − s_i · c_i)²`. Tail elements
/// keep their lane (position `mod 8`), matching the SIMD backends'
/// zero-padded tails.
#[inline]
pub fn l2_sq_u8_scalar(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(u.len(), codes.len());
    debug_assert_eq!(s.len(), codes.len());
    let mut acc = [0.0f32; 8];
    let chunks = u.len() / 8;
    for i in 0..chunks {
        let base = i * 8;
        for l in 0..8 {
            acc[l] = lane(u[base + l], s[base + l], codes[base + l], acc[l]);
        }
    }
    let base = chunks * 8;
    for l in 0..u.len() - base {
        acc[l] = lane(u[base + l], s[base + l], codes[base + l], acc[l]);
    }
    reduce8(acc)
}

/// Scalar reference for [`l2_sq_u8_batch`]: four independent
/// [`l2_sq_u8_scalar`] accumulations sharing each loaded query chunk.
#[inline]
pub fn l2_sq_u8_batch_scalar(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    for c in codes {
        debug_assert_eq!(u.len(), c.len());
    }
    let mut acc = [[0.0f32; 8]; 4];
    let chunks = u.len() / 8;
    for i in 0..chunks {
        let base = i * 8;
        for (v, row) in codes.iter().enumerate() {
            for l in 0..8 {
                acc[v][l] = lane(u[base + l], s[base + l], row[base + l], acc[v][l]);
            }
        }
    }
    let base = chunks * 8;
    let mut out = [0.0f32; 4];
    for (v, row) in codes.iter().enumerate() {
        for l in 0..u.len() - base {
            acc[v][l] = lane(u[base + l], s[base + l], row[base + l], acc[v][l]);
        }
        out[v] = reduce8(acc[v]);
    }
    out
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA `u8` kernels. Codes widen through `vpmovzxbd` +
    //! `vcvtdq2ps` — an exact conversion — then each lane is one
    //! `vfnmadd` (`d = u − s·c`) and one `vfmadd` (`acc += d·d`), exactly
    //! the fused arithmetic of the scalar reference's `f32::mul_add`.
    //! Accumulation is in lane `mod 8` with the canonical reduction. Tails
    //! copy all three streams into zero-padded stack buffers; a
    //! `(0 − 0·0)²` term leaves its accumulator lane bit-unchanged.

    use core::arch::x86_64::*;

    /// Canonical `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` reduction.
    #[inline(always)]
    unsafe fn reduce8(acc: __m256) -> f32 {
        let c = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        let d = _mm_add_ps(c, _mm_movehl_ps(c, c));
        let e = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
        _mm_cvtss_f32(e)
    }

    /// Loads 8 codes and widens them to `f32` (exact for 0..=255).
    #[inline(always)]
    unsafe fn load_codes8(p: *const u8) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(p as *const __m128i)))
    }

    /// One 8-lane step: `acc += (u − s·c)²`, fused.
    #[inline(always)]
    unsafe fn step(acc: __m256, uq: __m256, sq: __m256, pc: *const u8) -> __m256 {
        let d = _mm256_fnmadd_ps(sq, load_codes8(pc), uq);
        _mm256_fmadd_ps(d, d, acc)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn l2_sq_u8(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(u.len(), codes.len());
        debug_assert_eq!(s.len(), codes.len());
        let n = u.len();
        let (pu, ps, pc) = (u.as_ptr(), s.as_ptr(), codes.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 8;
        for i in 0..chunks {
            let uq = _mm256_loadu_ps(pu.add(i * 8));
            let sq = _mm256_loadu_ps(ps.add(i * 8));
            acc = step(acc, uq, sq, pc.add(i * 8));
        }
        let rem = n % 8;
        if rem != 0 {
            let mut ub = [0.0f32; 8];
            let mut sb = [0.0f32; 8];
            let mut cb = [0u8; 8];
            core::ptr::copy_nonoverlapping(pu.add(chunks * 8), ub.as_mut_ptr(), rem);
            core::ptr::copy_nonoverlapping(ps.add(chunks * 8), sb.as_mut_ptr(), rem);
            core::ptr::copy_nonoverlapping(pc.add(chunks * 8), cb.as_mut_ptr(), rem);
            let uq = _mm256_loadu_ps(ub.as_ptr());
            let sq = _mm256_loadu_ps(sb.as_ptr());
            acc = step(acc, uq, sq, cb.as_ptr());
        }
        reduce8(acc)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn l2_sq_u8_batch(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        for c in codes {
            debug_assert_eq!(u.len(), c.len());
        }
        let n = u.len();
        let (pu, ps) = (u.as_ptr(), s.as_ptr());
        let pc = [codes[0].as_ptr(), codes[1].as_ptr(), codes[2].as_ptr(), codes[3].as_ptr()];
        let mut acc = [_mm256_setzero_ps(); 4];
        let chunks = n / 8;
        for i in 0..chunks {
            let uq = _mm256_loadu_ps(pu.add(i * 8));
            let sq = _mm256_loadu_ps(ps.add(i * 8));
            for v in 0..4 {
                acc[v] = step(acc[v], uq, sq, pc[v].add(i * 8));
            }
        }
        let rem = n % 8;
        if rem != 0 {
            let mut ub = [0.0f32; 8];
            let mut sb = [0.0f32; 8];
            core::ptr::copy_nonoverlapping(pu.add(chunks * 8), ub.as_mut_ptr(), rem);
            core::ptr::copy_nonoverlapping(ps.add(chunks * 8), sb.as_mut_ptr(), rem);
            let uq = _mm256_loadu_ps(ub.as_ptr());
            let sq = _mm256_loadu_ps(sb.as_ptr());
            for v in 0..4 {
                let mut cb = [0u8; 8];
                core::ptr::copy_nonoverlapping(pc[v].add(chunks * 8), cb.as_mut_ptr(), rem);
                acc[v] = step(acc[v], uq, sq, cb.as_ptr());
            }
        }
        [reduce8(acc[0]), reduce8(acc[1]), reduce8(acc[2]), reduce8(acc[3])]
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON `u8` kernels: two `float32x4` accumulators model the eight
    //! lanes; codes widen `u8 → u16 → u32 → f32` (exact), tails go through
    //! zero-padded stack buffers. `vfmsq` (`u − s·c`) and `vfmaq`
    //! (`acc += d·d`) are single-rounding fused ops — the same per-lane
    //! arithmetic as the scalar reference's `f32::mul_add`.

    use core::arch::aarch64::*;

    #[inline(always)]
    unsafe fn reduce8(lo: float32x4_t, hi: float32x4_t) -> f32 {
        let c = vaddq_f32(lo, hi);
        let (c0, c1, c2, c3) = (
            vgetq_lane_f32(c, 0),
            vgetq_lane_f32(c, 1),
            vgetq_lane_f32(c, 2),
            vgetq_lane_f32(c, 3),
        );
        (c0 + c2) + (c1 + c3)
    }

    /// Widens 8 codes at `p` into two exact `f32` quads.
    #[inline(always)]
    unsafe fn load_codes8(p: *const u8) -> (float32x4_t, float32x4_t) {
        let wide = vmovl_u8(vld1_u8(p));
        (
            vcvtq_f32_u32(vmovl_u16(vget_low_u16(wide))),
            vcvtq_f32_u32(vmovl_u16(vget_high_u16(wide))),
        )
    }

    #[inline(always)]
    unsafe fn accum(
        lo: &mut float32x4_t,
        hi: &mut float32x4_t,
        pu: *const f32,
        ps: *const f32,
        pc: *const u8,
    ) {
        let (c0, c1) = load_codes8(pc);
        let d0 = vfmsq_f32(vld1q_f32(pu), vld1q_f32(ps), c0);
        let d1 = vfmsq_f32(vld1q_f32(pu.add(4)), vld1q_f32(ps.add(4)), c1);
        *lo = vfmaq_f32(*lo, d0, d0);
        *hi = vfmaq_f32(*hi, d1, d1);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn l2_sq_u8(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(u.len(), codes.len());
        debug_assert_eq!(s.len(), codes.len());
        let n = u.len();
        let (pu, ps, pc) = (u.as_ptr(), s.as_ptr(), codes.as_ptr());
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        let chunks = n / 8;
        for i in 0..chunks {
            accum(&mut lo, &mut hi, pu.add(i * 8), ps.add(i * 8), pc.add(i * 8));
        }
        let rem = n % 8;
        if rem != 0 {
            let mut ub = [0.0f32; 8];
            let mut sb = [0.0f32; 8];
            let mut cb = [0u8; 8];
            core::ptr::copy_nonoverlapping(pu.add(chunks * 8), ub.as_mut_ptr(), rem);
            core::ptr::copy_nonoverlapping(ps.add(chunks * 8), sb.as_mut_ptr(), rem);
            core::ptr::copy_nonoverlapping(pc.add(chunks * 8), cb.as_mut_ptr(), rem);
            accum(&mut lo, &mut hi, ub.as_ptr(), sb.as_ptr(), cb.as_ptr());
        }
        reduce8(lo, hi)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn l2_sq_u8_batch(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        for (o, c) in out.iter_mut().zip(codes) {
            *o = l2_sq_u8(u, s, c);
        }
        out
    }
}

/// The AVX2 kernels also require FMA (`vfnmadd`/`vfmadd`). The two
/// feature flags ship together on every AVX2 part since Haswell, but the
/// gate is checked once anyway — the rare AVX2-without-FMA host falls
/// back to the scalar reference.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn fma_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static FMA: AtomicU8 = AtomicU8::new(0);
    match FMA.load(Ordering::Relaxed) {
        0 => {
            let yes = std::arch::is_x86_feature_detected!("fma");
            FMA.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
            yes
        }
        1 => true,
        _ => false,
    }
}

/// Asymmetric squared distance in code space, `Σ (u_i − s_i · c_i)²`,
/// dispatched to the best available kernel (all backends bit-identical —
/// see the module docs). `u`/`s` come from
/// [`QuantizedStore::prepare_into`].
#[inline]
pub fn l2_sq_u8(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
    match crate::distance::active_backend() {
        #[cfg(target_arch = "x86_64")]
        crate::distance::BACKEND_AVX2 if fma_available() => unsafe {
            avx2::l2_sq_u8(u, s, codes)
        },
        #[cfg(target_arch = "aarch64")]
        crate::distance::BACKEND_NEON => unsafe { neon::l2_sq_u8(u, s, codes) },
        _ => l2_sq_u8_scalar(u, s, codes),
    }
}

/// [`l2_sq_u8`] against **four** code rows at once — the quantized beam
/// search's batched kernel. Bit-identical to four separate calls.
#[inline]
pub fn l2_sq_u8_batch(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    match crate::distance::active_backend() {
        #[cfg(target_arch = "x86_64")]
        crate::distance::BACKEND_AVX2 if fma_available() => unsafe {
            avx2::l2_sq_u8_batch(u, s, codes)
        },
        #[cfg(target_arch = "aarch64")]
        crate::distance::BACKEND_NEON => unsafe { neon::l2_sq_u8_batch(u, s, codes) },
        _ => l2_sq_u8_batch_scalar(u, s, codes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_sq;

    fn ramp_store(n: usize, dim: usize) -> VectorStore {
        let mut s = VectorStore::new(dim);
        for i in 0..n {
            let row: Vec<f32> =
                (0..dim).map(|d| ((i * 31 + d * 7) as f32 * 0.37).sin() * 3.0).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn rows_are_cache_line_aligned_and_padded() {
        let store = ramp_store(5, 100);
        let q = QuantizedStore::from_store(&store);
        assert_eq!(q.stride(), 128);
        assert_eq!(q.len(), 5);
        for id in 0..5u32 {
            assert_eq!(q.code_row(id).as_ptr() as usize % 64, 0, "row {id} misaligned");
            assert!(q.code_row(id)[100..].iter().all(|&c| c == 0), "padding must be zero");
        }
    }

    #[test]
    fn decode_within_one_step_per_dim() {
        let store = ramp_store(20, 13);
        let q = QuantizedStore::from_store(&store);
        for (id, row) in store.iter() {
            let dec = q.decode(id);
            for d in 0..13 {
                let tol = q.deltas()[d] * 0.5 + 1e-6;
                assert!(
                    (dec[d] - row[d]).abs() <= tol,
                    "id={id} dim={d}: {} vs {} (step {})",
                    dec[d],
                    row[d],
                    q.deltas()[d]
                );
            }
        }
    }

    #[test]
    fn constant_dimension_is_exact() {
        let mut store = VectorStore::new(3);
        store.push(&[1.0, 5.5, -2.0]);
        store.push(&[2.0, 5.5, -1.0]);
        let q = QuantizedStore::from_store(&store);
        assert_eq!(q.deltas()[1], 0.0);
        assert_eq!(q.decode(0)[1], 5.5);
        // Asymmetric distance carries the constant dim exactly.
        let query = [1.5f32, 9.0, -1.5];
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        let d = q.dist_prepared(&pq, 0);
        let exact_to_decoded = l2_sq(&query, &q.decode(0));
        assert!((d - exact_to_decoded).abs() < 1e-4, "{d} vs {exact_to_decoded}");
    }

    #[test]
    fn asymmetric_distance_matches_decoded_distance() {
        let store = ramp_store(30, 96);
        let q = QuantizedStore::from_store(&store);
        let query: Vec<f32> = (0..96).map(|d| ((d * 13) as f32 * 0.21).cos() * 2.5).collect();
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        for id in 0..30u32 {
            let asym = q.dist_prepared(&pq, id);
            let exact = l2_sq(&query, &q.decode(id));
            let tol = exact.abs() * 1e-4 + 1e-3;
            assert!((asym - exact).abs() <= tol, "id={id}: {asym} vs {exact}");
        }
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_single() {
        let store = ramp_store(8, 100);
        let q = QuantizedStore::from_store(&store);
        let query: Vec<f32> = (0..100).map(|d| (d as f32 * 0.11).sin()).collect();
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        let batch = q.dist_prepared_batch(&pq, [0, 3, 5, 7]);
        for (i, id) in [0u32, 3, 5, 7].into_iter().enumerate() {
            assert_eq!(batch[i].to_bits(), q.dist_prepared(&pq, id).to_bits());
        }
    }

    #[test]
    fn dispatched_u8_kernels_match_scalar_bitwise() {
        for dim in (1usize..=200).chain([256, 960]) {
            let t: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin() * 9.0).collect();
            let w: Vec<f32> = (0..dim).map(|i| ((i as f32 * 0.3).cos() + 1.5) * 0.01).collect();
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|v| (0..dim).map(|i| ((i * 37 + v * 91) % 256) as u8).collect())
                .collect();
            let refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            assert_eq!(
                l2_sq_u8(&t, &w, refs[0]).to_bits(),
                l2_sq_u8_scalar(&t, &w, refs[0]).to_bits(),
                "dim={dim}"
            );
            let batch = l2_sq_u8_batch(&t, &w, refs);
            let batch_ref = l2_sq_u8_batch_scalar(&t, &w, refs);
            for v in 0..4 {
                assert_eq!(batch[v].to_bits(), batch_ref[v].to_bits(), "dim={dim} v={v}");
            }
        }
    }

    #[test]
    fn single_vector_store_quantizes() {
        let store = VectorStore::from_flat(4, vec![1.0, -2.0, 0.5, 3.0]);
        let q = QuantizedStore::from_store(&store);
        assert_eq!(q.len(), 1);
        // One vector makes every dimension constant: decode is exact.
        assert_eq!(q.decode(0), vec![1.0, -2.0, 0.5, 3.0]);
    }

    #[test]
    fn from_parts_round_trips() {
        let store = ramp_store(9, 33);
        let q = QuantizedStore::from_store(&store);
        let back = QuantizedStore::from_parts(
            q.dim(),
            q.mins().to_vec(),
            q.deltas().to_vec(),
            q.to_packed_codes(),
        );
        assert_eq!(back.len(), q.len());
        for id in 0..9u32 {
            assert_eq!(back.code_row(id), q.code_row(id), "row {id}");
        }
    }

    #[test]
    fn heap_bytes_accounts_codes() {
        let store = ramp_store(16, 70);
        let q = QuantizedStore::from_store(&store);
        // 70 dims -> stride 128 -> two lines per row.
        assert!(q.heap_bytes() >= 16 * 128);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::store::VectorStore;
    use proptest::prelude::*;

    /// A dimension plus same-length rows (the shim's `prop_flat_map`
    /// threads the dimension into the row strategy).
    fn stores() -> impl Strategy<Value = (usize, Vec<Vec<f32>>)> {
        (1usize..=12).prop_flat_map(|dim| {
            prop::collection::vec(prop::collection::vec(-1000.0f32..1000.0, dim), 1..=8)
                .prop_map(move |rows| (dim, rows))
        })
    }

    proptest! {
        /// Encode→decode lands within one quantization step on every
        /// dimension, for arbitrary stores — including single-vector
        /// stores (`rows` can have length 1, making every dimension
        /// degenerate with Δ = 0 and the decode exact).
        #[test]
        fn encode_decode_within_one_step(case in stores()) {
            let (dim, rows) = case;
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let q = QuantizedStore::from_store(&VectorStore::from_flat(dim, flat));
            for d in 0..dim {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for r in &rows {
                    lo = lo.min(r[d]);
                    hi = hi.max(r[d]);
                }
                let step = (hi - lo) / 255.0;
                for (id, r) in rows.iter().enumerate() {
                    let err = (q.decode(id as u32)[d] - r[d]).abs();
                    prop_assert!(
                        err <= step + step * 1e-3 + 1e-4,
                        "dim {} id {}: err {} > step {}", d, id, err, step
                    );
                }
            }
        }

        /// A store of identical rows makes every dimension constant
        /// (Δ = 0): the degenerate path must decode exactly.
        #[test]
        fn constant_dims_decode_exactly(
            dim in 1usize..=12,
            copies in 1usize..=6,
            anchor in -1000.0f32..1000.0,
        ) {
            let row: Vec<f32> = (0..dim).map(|i| anchor + i as f32 * 0.25).collect();
            let flat: Vec<f32> =
                std::iter::repeat_n(row.clone(), copies).flatten().collect();
            let q = QuantizedStore::from_store(&VectorStore::from_flat(dim, flat));
            for id in 0..copies as u32 {
                prop_assert_eq!(q.decode(id), row.clone());
            }
        }

        /// Permuting the encoded store is bit-identical to encoding the
        /// permuted vectors: the affine grids are global per dimension, so
        /// encoding is row-local — the SQ8 leg of the reorder∘quantize
        /// commutation contract.
        #[test]
        fn permute_commutes_with_encode(case in stores(), seed in 0usize..6) {
            let (dim, rows) = case;
            let n = rows.len();
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let q = QuantizedStore::from_store(&VectorStore::from_flat(dim, flat));
            let new_to_old: Vec<u32> =
                (0..n as u32).map(|i| (i as usize + seed) as u32 % n as u32).collect();
            let map = crate::reorder::IdRemap::from_new_to_old(new_to_old.clone()).unwrap();
            let mut permuted = VectorStore::new(dim);
            for &old in &new_to_old {
                permuted.push(&rows[old as usize]);
            }
            let a = q.permute(&map);
            let b = QuantizedStore::from_store(&permuted);
            prop_assert_eq!(a.mins(), b.mins());
            prop_assert_eq!(a.deltas(), b.deltas());
            for id in 0..n as u32 {
                prop_assert_eq!(a.code_row(id), b.code_row(id), "row {}", id);
            }
        }
    }
}
