//! Lloyd's k-means and the *balanced* variant used by Balanced K-means
//! Trees (SPTAG-BKT's seed-selection structure).
//!
//! The implementation lives in [`gass_core::kmeans`] — the workspace's
//! single k-means home, shared with PQ codebook training and
//! `ShardedIndex` partitioning. These wrappers keep the tree-substrate
//! signature: they operate over an id subset of a `VectorStore` through a
//! [`Space`] so divide-and-conquer methods can cluster recursively without
//! copying vectors, and every point ↔ centroid distance is counted through
//! the space's counter so clustering cost shows up in construction
//! accounting.

use gass_core::distance::Space;

pub use gass_core::kmeans::Clustering;

/// Standard Lloyd's k-means over `ids`, `iters` refinement rounds.
///
/// # Panics
/// Panics if `ids` is empty or `k == 0`.
pub fn kmeans(space: Space<'_>, ids: &[u32], k: usize, iters: usize, seed: u64) -> Clustering {
    gass_core::kmeans::kmeans(space.store(), ids, k, iters, seed, space.counter())
}

/// Balanced k-means (Malinen & Fränti style, greedy approximation): like
/// Lloyd's, but each cluster accepts at most `ceil(n/k)` points per round.
/// Points are processed in order of assignment confidence (gap between
/// best and second-best centroid), so strongly attached points claim their
/// cluster first.
pub fn balanced_kmeans(
    space: Space<'_>,
    ids: &[u32],
    k: usize,
    iters: usize,
    seed: u64,
) -> Clustering {
    gass_core::kmeans::balanced_kmeans(space.store(), ids, k, iters, seed, space.counter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// Two well-separated 2-d blobs of 20 points each.
    fn blobs() -> VectorStore {
        let mut s = VectorStore::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            s.push(&[rng.random_range(-0.1..0.1f32), rng.random_range(-0.1..0.1f32)]);
        }
        for _ in 0..20 {
            s.push(&[10.0 + rng.random_range(-0.1..0.1f32), rng.random_range(-0.1..0.1f32)]);
        }
        s
    }

    #[test]
    fn kmeans_separates_blobs() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..40).collect();
        let c = kmeans(space, &ids, 2, 10, 1);
        // All points in the same blob share a cluster.
        let first = c.assignment[0];
        assert!(c.assignment[..20].iter().all(|&a| a == first));
        let second = c.assignment[20];
        assert_ne!(first, second);
        assert!(c.assignment[20..].iter().all(|&a| a == second));
        assert!(counter.get() > 0, "clustering cost must be counted");
    }

    #[test]
    fn kmeans_handles_k_larger_than_n() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = vec![0, 1, 2];
        let c = kmeans(space, &ids, 10, 3, 1);
        assert_eq!(c.centroids.len(), 3);
        assert_eq!(c.assignment.len(), 3);
    }

    #[test]
    fn balanced_kmeans_caps_cluster_sizes() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..40).collect();
        // 4 clusters over 40 points -> each cluster must hold exactly <=10.
        let c = balanced_kmeans(space, &ids, 4, 6, 9);
        let groups = c.groups(&ids);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert!(g.len() <= 10, "balanced cluster exceeded capacity: {}", g.len());
        }
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn groups_partition_input() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (5..25).collect();
        let c = kmeans(space, &ids, 3, 4, 2);
        let groups = c.groups(&ids);
        let mut all: Vec<u32> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, ids);
    }

    #[test]
    fn wrapper_matches_core_implementation() {
        // The dedup contract: trees' k-means IS gass_core's k-means.
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..40).collect();
        let a = balanced_kmeans(space, &ids, 4, 6, 9);
        let b = gass_core::kmeans::balanced_kmeans(&store, &ids, 4, 6, 9, &DistCounter::new());
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }
}
