//! Method shootout: build every evaluated method on one dataset and print
//! a comparison table (indexing time, construction distance calls, index
//! size, recall and query cost at a fixed beam width) — a miniature of the
//! paper's Figures 7/9/12 in one screen.
//!
//! ```sh
//! cargo run --release --example method_shootout [n]
//! ```

use gass::prelude::*;
use gass_eval::{evaluate_at, fmt_bytes, fmt_count, footprint, Table};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let base = gass::data::synth::deep_like(n, 42);
    let queries = gass::data::synth::deep_like(50, 7);
    let k = 10;
    let truth = gass::data::ground_truth(&base, &queries, k);
    println!("Deep-like: {} x {}d, {} queries, k={k}\n", n, base.dim(), queries.len());

    let mut table = Table::new(vec![
        "method",
        "build_s",
        "build_dists",
        "index_size",
        "recall@10(L=64)",
        "dists/query",
    ]);

    for kind in MethodKind::all_sota() {
        let t = std::time::Instant::now();
        let built = build_method(kind, base.clone(), 1);
        let build_s = t.elapsed().as_secs_f64();
        let p = evaluate_at(built.index.as_ref(), &queries, &truth, k, 64, 16);
        let fp = footprint(built.index.as_ref(), &base);
        table.row(vec![
            kind.name(),
            format!("{build_s:.2}"),
            fmt_count(built.build.dist_calcs),
            fmt_bytes(fp.total()),
            format!("{:.4}", p.recall),
            fmt_count(p.dist_calcs / queries.len() as u64),
        ]);
        eprintln!("done: {}", kind.name());
    }

    println!("{}", table.render());
    println!(
        "(index_size includes the raw vectors, per the paper's convention; \
         ELPIS additionally duplicates vectors into its leaf graphs)"
    );
}
