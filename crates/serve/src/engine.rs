//! Coalesced batch execution: the compute half of the server, separated
//! from the socket half so tests can drive it directly.
//!
//! A drained micro-batch is grouped by identical [`QueryParams`] (in
//! practice one group — serving traffic shares a configuration), and the
//! whole group is answered through one [`AnnIndex::search_coalesced`]
//! call running inline on the worker's core. On a quantized
//! [`gass_core::PrebuiltIndex`] that is the interleaved multi-lane
//! engine ([`gass_core::beam_search_coalesced`]): the batch's queries
//! advance in lockstep so each one's dependent memory latency hides
//! under the others' compute — the batch executes *faster per query*
//! than the same queries one at a time.
//!
//! Batching is observationally invisible: `search_coalesced` answers
//! bit-identically to the sequential per-query loop, so a batch of N
//! returns bit-identical neighbors, distances, and counter totals to N
//! individual `index.search` calls (property-tested in
//! `tests/batch_invisibility.rs`).

use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_core::search::SearchResult;

/// Key of a coalescing group: every field of [`QueryParams`] that alters
/// the search, including the termination policy (a deadline-clamped
/// `max_dists` must not be grouped with unclamped jobs — they would run
/// under the wrong budget).
fn params_key(p: &QueryParams) -> (usize, usize, usize, usize, u8, u32, usize) {
    use gass_core::TerminationPolicy as Tp;
    let (policy, arg) = match p.term {
        Tp::Fixed => (0u8, 0u32),
        Tp::Saturation { patience } => (1, patience as u32),
        Tp::DistRatio { eps } => (2, eps.to_bits()),
    };
    (p.k, p.beam_width, p.seed_count, p.rerank_factor, policy, arg, p.max_dists)
}

/// Answers `jobs` (query vector + params each) against `index`,
/// coalescing params-identical runs into single batch calls. Results are
/// returned in job order.
///
/// # Panics
/// Panics if any query's dimensionality differs from the index's — the
/// connection layer rejects those as `BadRequest` before enqueueing.
pub fn execute_coalesced(
    index: &dyn AnnIndex,
    jobs: &[(Vec<f32>, QueryParams)],
    counter: &DistCounter,
) -> Vec<SearchResult> {
    let dim = index.dim();
    let mut results: Vec<Option<SearchResult>> = (0..jobs.len()).map(|_| None).collect();
    // Group params-identical jobs, preserving first-seen group order and
    // job order within each group.
    let mut groups: Vec<(QueryParams, Vec<usize>)> = Vec::new();
    for (i, (query, params)) in jobs.iter().enumerate() {
        assert_eq!(query.len(), dim, "engine fed a dim-mismatched query");
        match groups.iter_mut().find(|(p, _)| params_key(p) == params_key(params)) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((*params, vec![i])),
        }
    }
    for (params, idxs) in &groups {
        // The group runs inline on this worker's core through the
        // index's coalesced engine: `PrebuiltIndex` interleaves up to
        // `COALESCE_LANES` quantized searches in lockstep so one lane's
        // memory latency hides under another's compute; every index
        // answers bit-identically to the sequential per-query loop.
        let queries: Vec<&[f32]> = idxs.iter().map(|&i| jobs[i].0.as_slice()).collect();
        let batch = index.search_coalesced(&queries, params, counter);
        for (&i, res) in idxs.iter().zip(batch) {
            results[i] = Some(res);
        }
    }
    results.into_iter().map(|r| r.expect("every job answered")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::index::SerialScanIndex;
    use gass_core::store::VectorStore;

    #[test]
    fn mixed_params_batches_scatter_back_in_job_order() {
        let store = VectorStore::from_flat(1, (0..32).map(|i| i as f32).collect());
        let index = SerialScanIndex::new(store);
        let p1 = QueryParams::new(1, 4);
        let p3 = QueryParams::new(3, 8);
        let jobs = vec![(vec![4.2], p1), (vec![9.9], p3), (vec![0.1], p1), (vec![30.7], p3)];
        let counter = DistCounter::new();
        let out = execute_coalesced(&index, &jobs, &counter);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].neighbors.len(), 1);
        assert_eq!(out[0].neighbors[0].id, 4);
        assert_eq!(out[1].neighbors.len(), 3);
        assert_eq!(out[1].neighbors[0].id, 10);
        assert_eq!(out[2].neighbors[0].id, 0);
        assert_eq!(out[3].neighbors[0].id, 31);
        // Four scans of 32 vectors, coalesced into two batch calls.
        assert_eq!(counter.get(), 4 * 32);
    }

    #[test]
    fn empty_batch_is_fine() {
        let store = VectorStore::from_flat(1, vec![0.0]);
        let index = SerialScanIndex::new(store);
        let counter = DistCounter::new();
        assert!(execute_coalesced(&index, &[], &counter).is_empty());
    }
}
