//! Figure 12: query performance at the 1M tier across six datasets and
//! every method — recall vs distance calculations curves.
//!
//! Paper shape: ELPIS and NSG/SSG lead on Sift; HCNNG/ELPIS on Seismic;
//! NGT/SSG/NSG on Deep; HCNNG then SPTAG/NSG on SALD; NSG/SSG and HNSW on
//! ImageNet; LSHAPG needs more computation for high accuracy everywhere.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig12_search_1m
//! ```

use gass_bench::{run_search_figure, tiers};
use gass_data::DatasetKind;
use gass_graphs::MethodKind;

fn main() {
    let n = tiers()[0].n;
    let workloads = [
        (DatasetKind::Sift, n),
        (DatasetKind::Deep, n),
        (DatasetKind::Seismic, n),
        (DatasetKind::Sald, n),
        (DatasetKind::ImageNet, n),
        (DatasetKind::Gist, n / 4), // 960-d: smaller sample, as flagged in DESIGN.md
    ];
    run_search_figure("fig12_search_1m", &workloads, &MethodKind::all_sota(), 10, 101);
    println!(
        "Read as Fig. 12: per dataset, plot recall (x) vs dist_calcs_per_query \
         (y, log). The leaders should match the paper's per-dataset ranking."
    );
}
