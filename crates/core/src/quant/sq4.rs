//! SQ4 scalar quantization: per-dimension affine 4-bit codes, two
//! dimensions per byte — half the traversal traffic of SQ8 for one extra
//! unpack step in the kernel.
//!
//! The grid is the SQ8 grid with 15 steps instead of 255: `x ≈ min_d +
//! c_d · Δ_d` with `Δ_d = (max_d − min_d)/15` and `c_d ∈ 0..=15`. Codes
//! pack two per byte — even dimension `2k` in the **low** nibble of byte
//! `k`, odd dimension `2k+1` in the **high** nibble — and rows pad to
//! whole 64-byte cache lines from a 64-byte-aligned base, mirroring the
//! SQ8 layout at half the width.
//!
//! ## Kernels
//!
//! The asymmetric distance is the same folded form as SQ8 —
//! `Σ_d (u_d − s_d · c_d)²` against [`PreparedQuery::u`]/[`PreparedQuery::s`]
//! — evaluated by [`l2_sq_u4`]/[`l2_sq_u4_batch`] over the packed rows.
//! SIMD backends *widen* each 8-byte group into 16 sequential dimension
//! codes (mask the nibbles apart, re-interleave to natural dimension
//! order, then the exact `u8 → f32` conversion of the SQ8 kernels) and run
//! the identical fused multiply-subtract / multiply-add lane arithmetic:
//! lane `d mod 8`, the canonical `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`
//! reduction, zero-padded tails. The scalar reference reproduces the same
//! per-lane sequence through `f32::mul_add`, so AVX2(+FMA), NEON and
//! scalar agree bitwise. A phantom high nibble after an odd final
//! dimension meets `u = s = 0` and contributes `+0.0`.

use super::sq8::{lane, reduce8};
use super::{
    lines_as_bytes_mut, CodeBuf, CodeLine, CodecSpec, CodecStore, PreparedQuery, LINE_U8,
};
use crate::store::VectorStore;

/// Levels per dimension (4-bit codes).
const LEVELS: f32 = 15.0;

/// Bytes between consecutive row starts: two dims per byte, rounded up to
/// whole cache lines.
pub(crate) fn sq4_stride(dim: usize) -> usize {
    dim.div_ceil(2).next_multiple_of(LINE_U8)
}

/// Per-dimension min/max affine 4-bit codes over a whole [`VectorStore`],
/// nibble-packed into cache-line-padded rows.
#[derive(Clone, Debug)]
pub struct Sq4Store {
    dim: usize,
    stride: usize,
    len: usize,
    mins: Vec<f32>,
    deltas: Vec<f32>,
    codes: CodeBuf,
}

impl Sq4Store {
    /// Quantizes every vector of `store`: per-dimension min/max, 15 equal
    /// steps per dimension, codes rounded to nearest. Deterministic.
    ///
    /// # Panics
    /// Panics if `store` is empty.
    pub fn from_store(store: &VectorStore) -> Self {
        assert!(!store.is_empty(), "cannot quantize an empty store");
        let dim = store.dim();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for (_, row) in store.iter() {
            for d in 0..dim {
                mins[d] = mins[d].min(row[d]);
                maxs[d] = maxs[d].max(row[d]);
            }
        }
        let deltas: Vec<f32> = (0..dim).map(|d| (maxs[d] - mins[d]) / LEVELS).collect();
        let stride = sq4_stride(dim);
        let mut out = Self {
            dim,
            stride,
            len: 0,
            mins,
            deltas,
            codes: CodeBuf::Heap(Vec::with_capacity(store.len() * stride / LINE_U8)),
        };
        for (_, row) in store.iter() {
            out.push_row(row);
        }
        out
    }

    /// Reassembles a store from persisted parts: packed code rows
    /// (`ceil(dim/2)` bytes each, no padding) plus the per-dimension
    /// affine parameters.
    ///
    /// # Panics
    /// Panics if the lengths are inconsistent or `dim == 0`.
    pub fn from_parts(dim: usize, mins: Vec<f32>, deltas: Vec<f32>, packed: Vec<u8>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert_eq!(mins.len(), dim, "mins length mismatch");
        assert_eq!(deltas.len(), dim, "deltas length mismatch");
        let row_bytes = dim.div_ceil(2);
        assert!(
            packed.len().is_multiple_of(row_bytes),
            "packed code length {} is not a multiple of row width {}",
            packed.len(),
            row_bytes
        );
        let stride = sq4_stride(dim);
        let n = packed.len() / row_bytes;
        let mut codes = vec![CodeLine([0u8; LINE_U8]); n * stride / LINE_U8];
        let raw = lines_as_bytes_mut(&mut codes);
        for (id, row) in packed.chunks_exact(row_bytes).enumerate() {
            raw[id * stride..id * stride + row_bytes].copy_from_slice(row);
        }
        Self { dim, stride, len: n, mins, deltas, codes: CodeBuf::Heap(codes) }
    }

    /// Reassembles a store over a mapped code area (row geometry identical
    /// to the heap layout: `stride` bytes per row from a 64-byte base).
    ///
    /// # Panics
    /// Panics if parameter lengths or the region size are inconsistent.
    pub fn from_parts_mapped(
        dim: usize,
        mins: Vec<f32>,
        deltas: Vec<f32>,
        len: usize,
        region: crate::mmap::MmapRegion,
    ) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert_eq!(mins.len(), dim, "mins length mismatch");
        assert_eq!(deltas.len(), dim, "deltas length mismatch");
        let stride = sq4_stride(dim);
        assert_eq!(region.len(), len * stride, "mapped code area size mismatch");
        Self { dim, stride, len, mins, deltas, codes: CodeBuf::from_mapped(region) }
    }

    fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.dim);
        let code = |d: usize| -> u8 {
            match (row.get(d), self.deltas.get(d)) {
                (Some(&x), Some(&delta)) if delta > 0.0 => {
                    ((x - self.mins[d]) / delta).round().clamp(0.0, LEVELS) as u8
                }
                _ => 0,
            }
        };
        let mut line = [0u8; LINE_U8];
        let mut fill = 0usize;
        for byte in 0..self.stride {
            line[fill] = code(2 * byte) | (code(2 * byte + 1) << 4);
            fill += 1;
            if fill == LINE_U8 {
                self.codes.push(CodeLine(line));
                line = [0u8; LINE_U8];
                fill = 0;
            }
        }
        debug_assert_eq!(fill, 0, "stride is a whole number of lines");
        self.len += 1;
    }

    /// Number of quantized vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes between consecutive row starts (a multiple of 64).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Per-dimension minima.
    #[inline]
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-dimension quantization steps (`0` for constant dimensions).
    #[inline]
    pub fn deltas(&self) -> &[f32] {
        &self.deltas
    }

    /// The full padded code row of vector `id` (`stride` bytes).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn code_row(&self, id: u32) -> &[u8] {
        let start = id as usize * self.stride;
        &self.codes.bytes()[start..start + self.stride]
    }

    /// Copies the logical code bytes into a packed `len * ceil(dim/2)`
    /// buffer (padding stripped) — the persisted representation.
    pub fn to_packed_codes(&self) -> Vec<u8> {
        let row_bytes = self.dim.div_ceil(2);
        let mut out = Vec::with_capacity(self.len * row_bytes);
        for id in 0..self.len as u32 {
            out.extend_from_slice(&self.code_row(id)[..row_bytes]);
        }
        out
    }

    /// Copies the store with code rows relabeled through `map` (the affine
    /// parameters are global per dimension, so permuted codes are
    /// bit-identical to re-encoding the permuted vectors).
    pub fn permute(&self, map: &crate::reorder::IdRemap) -> Sq4Store {
        assert_eq!(map.len(), self.len, "remap covers a different vector count");
        let mut codes = vec![CodeLine([0u8; LINE_U8]); self.len * self.stride / LINE_U8];
        let dst = lines_as_bytes_mut(&mut codes);
        let src = self.codes.bytes();
        for new in 0..self.len {
            let old = map.to_old(new as u32) as usize;
            dst[new * self.stride..(new + 1) * self.stride]
                .copy_from_slice(&src[old * self.stride..(old + 1) * self.stride]);
        }
        Self {
            dim: self.dim,
            stride: self.stride,
            len: self.len,
            mins: self.mins.clone(),
            deltas: self.deltas.clone(),
            codes: CodeBuf::Heap(codes),
        }
    }

    /// Reconstructs vector `id` from its codes (`min_d + c_d · Δ_d`).
    pub fn decode(&self, id: u32) -> Vec<f32> {
        let row = self.code_row(id);
        (0..self.dim)
            .map(|d| {
                let byte = row[d / 2];
                let c = if d % 2 == 0 { byte & 0x0F } else { byte >> 4 };
                self.mins[d] + c as f32 * self.deltas[d]
            })
            .collect()
    }

    /// Shifts `query` against the quantization grid (`u_d = q_d − min_d`,
    /// `s_d = Δ_d`), zero-padded to the kernel span.
    pub fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery) {
        debug_assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let k = self.kern_len();
        out.u.clear();
        out.s.clear();
        out.u.reserve(k);
        out.s.reserve(k);
        for (&q, &lo) in query.iter().zip(&self.mins) {
            out.u.push(q - lo);
        }
        out.s.extend_from_slice(&self.deltas);
        out.u.resize(k, 0.0);
        out.s.resize(k, 0.0);
    }

    /// Kernel span in dimensions: `dim` rounded up to a whole 16-dim
    /// chunk (8 code bytes). Padding lanes carry `u = s = 0` and
    /// contribute `+0.0`.
    #[inline]
    fn kern_len(&self) -> usize {
        (self.dim + 15) & !15
    }

    /// Asymmetric squared distance from a prepared query to vector `id`.
    #[inline]
    pub fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32 {
        let k = self.kern_len();
        l2_sq_u4(&pq.u[..k], &pq.s[..k], &self.code_row(id)[..k / 2])
    }

    /// Asymmetric squared distances to **four** vectors at once
    /// (bit-identical to four [`Self::dist_prepared`] calls).
    #[inline]
    pub fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        let k = self.kern_len();
        l2_sq_u4_batch(
            &pq.u[..k],
            &pq.s[..k],
            [
                &self.code_row(ids[0])[..k / 2],
                &self.code_row(ids[1])[..k / 2],
                &self.code_row(ids[2])[..k / 2],
                &self.code_row(ids[3])[..k / 2],
            ],
        )
    }

    /// Hints the CPU to pull vector `id`'s code row into L1. Semantically
    /// a no-op.
    #[inline]
    pub fn prefetch(&self, id: u32) {
        let start = id as usize * self.stride;
        let raw = self.codes.bytes();
        debug_assert!(start + self.dim.div_ceil(2) <= raw.len());
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        unsafe {
            let p = raw.as_ptr().add(start).cast::<i8>();
            #[cfg(target_arch = "x86_64")]
            {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(p);
                if self.dim > 2 * LINE_U8 {
                    _mm_prefetch::<_MM_HINT_T0>(p.add(64));
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                core::arch::asm!(
                    "prfm pldl1keep, [{0}]",
                    in(reg) p,
                    options(nostack, preserves_flags)
                );
                if self.dim > 2 * LINE_U8 {
                    core::arch::asm!(
                        "prfm pldl1keep, [{0}]",
                        in(reg) p.add(64),
                        options(nostack, preserves_flags)
                    );
                }
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = raw;
    }

    /// Heap bytes held by the codes and affine parameters (mapped code
    /// areas count zero; their residency is kernel-managed).
    pub fn heap_bytes(&self) -> usize {
        self.codes.heap_bytes()
            + (self.mins.capacity() + self.deltas.capacity()) * std::mem::size_of::<f32>()
    }
}

impl CodecStore for Sq4Store {
    fn spec(&self) -> CodecSpec {
        CodecSpec::Sq4
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn code_row(&self, id: u32) -> &[u8] {
        self.code_row(id)
    }

    fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery) {
        self.prepare_into(query, out);
    }

    fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32 {
        self.dist_prepared(pq, id)
    }

    fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        self.dist_prepared_batch(pq, ids)
    }

    fn prefetch(&self, id: u32) {
        self.prefetch(id);
    }

    fn decode(&self, id: u32) -> Vec<f32> {
        self.decode(id)
    }

    fn permute(&self, map: &crate::reorder::IdRemap) -> Box<dyn CodecStore> {
        Box::new(Sq4Store::permute(self, map))
    }

    fn heap_bytes(&self) -> usize {
        self.heap_bytes()
    }

    fn clone_box(&self) -> Box<dyn CodecStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// --- nibble-packed asymmetric-distance kernels ---------------------------

/// Scalar reference for [`l2_sq_u4`]: `Σ_d (u_d − s_d · c_d)²` over
/// nibble-packed codes, dimensions in natural order, accumulator lane
/// `d mod 8`, the canonical reduction — the exact per-lane sequence of the
/// SIMD backends. `codes` holds `ceil(n/2)` bytes; a trailing high nibble
/// past `n` is ignored.
#[inline]
pub fn l2_sq_u4_scalar(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(u.len(), s.len());
    debug_assert_eq!(codes.len(), u.len().div_ceil(2));
    let mut acc = [0.0f32; 8];
    for d in 0..u.len() {
        let byte = codes[d / 2];
        let c = if d % 2 == 0 { byte & 0x0F } else { byte >> 4 };
        acc[d % 8] = lane(u[d], s[d], c, acc[d % 8]);
    }
    reduce8(acc)
}

/// Scalar reference for [`l2_sq_u4_batch`]: four independent
/// [`l2_sq_u4_scalar`] accumulations.
#[inline]
pub fn l2_sq_u4_batch_scalar(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    [
        l2_sq_u4_scalar(u, s, codes[0]),
        l2_sq_u4_scalar(u, s, codes[1]),
        l2_sq_u4_scalar(u, s, codes[2]),
        l2_sq_u4_scalar(u, s, codes[3]),
    ]
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA SQ4 kernels: 8 packed bytes unpack to 16 sequential
    //! dimension codes (`vpand`/`vpsrlw` mask the nibbles apart,
    //! `vpunpcklbw` re-interleaves to natural order), widen exactly to
    //! `f32`, then two fused 8-lane steps per chunk — the same `vfnmadd` /
    //! `vfmadd` arithmetic as the SQ8 kernels, same lane discipline, same
    //! reduction. Tails copy into zero-padded stack buffers.

    use core::arch::x86_64::*;

    /// Canonical `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` reduction.
    #[inline(always)]
    unsafe fn reduce8(acc: __m256) -> f32 {
        let c = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        let d = _mm_add_ps(c, _mm_movehl_ps(c, c));
        let e = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
        _mm_cvtss_f32(e)
    }

    /// Unpacks 8 packed bytes at `p` into 16 sequential dimension codes
    /// widened to two exact `f32` octets.
    #[inline(always)]
    unsafe fn load_codes16(p: *const u8) -> (__m256, __m256) {
        let b = _mm_loadl_epi64(p as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let lo = _mm_and_si128(b, mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(b), mask);
        let il = _mm_unpacklo_epi8(lo, hi); // d0, d1, ..., d15
        (
            _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(il)),
            _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128::<8>(il))),
        )
    }

    /// One fused 8-lane step: `acc += (u − s·c)²`.
    #[inline(always)]
    unsafe fn step(acc: __m256, uq: __m256, sq: __m256, cf: __m256) -> __m256 {
        let d = _mm256_fnmadd_ps(sq, cf, uq);
        _mm256_fmadd_ps(d, d, acc)
    }

    /// One 16-dim chunk (both octets) against pre-unpacked codes.
    #[inline(always)]
    unsafe fn chunk(acc: __m256, pu: *const f32, ps: *const f32, pc: *const u8) -> __m256 {
        let (c0, c1) = load_codes16(pc);
        let acc = step(acc, _mm256_loadu_ps(pu), _mm256_loadu_ps(ps), c0);
        step(acc, _mm256_loadu_ps(pu.add(8)), _mm256_loadu_ps(ps.add(8)), c1)
    }

    /// Copies the `rem`-dim tail (floats and packed bytes) into zero-padded
    /// stack buffers.
    #[inline(always)]
    unsafe fn tail_buffers(
        u: &[f32],
        s: &[f32],
        codes: &[u8],
        chunks: usize,
        rem: usize,
    ) -> ([f32; 16], [f32; 16], [u8; 8]) {
        let mut ub = [0.0f32; 16];
        let mut sb = [0.0f32; 16];
        let mut cb = [0u8; 8];
        core::ptr::copy_nonoverlapping(u.as_ptr().add(chunks * 16), ub.as_mut_ptr(), rem);
        core::ptr::copy_nonoverlapping(s.as_ptr().add(chunks * 16), sb.as_mut_ptr(), rem);
        let tail_bytes = codes.len() - chunks * 8;
        core::ptr::copy_nonoverlapping(
            codes.as_ptr().add(chunks * 8),
            cb.as_mut_ptr(),
            tail_bytes,
        );
        (ub, sb, cb)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn l2_sq_u4(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(u.len(), s.len());
        debug_assert_eq!(codes.len(), u.len().div_ceil(2));
        let n = u.len();
        let (pu, ps, pc) = (u.as_ptr(), s.as_ptr(), codes.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 16;
        for i in 0..chunks {
            acc = chunk(acc, pu.add(i * 16), ps.add(i * 16), pc.add(i * 8));
        }
        let rem = n % 16;
        if rem != 0 {
            let (ub, sb, cb) = tail_buffers(u, s, codes, chunks, rem);
            acc = chunk(acc, ub.as_ptr(), sb.as_ptr(), cb.as_ptr());
        }
        reduce8(acc)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn l2_sq_u4_batch(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        for c in codes {
            debug_assert_eq!(c.len(), u.len().div_ceil(2));
        }
        let n = u.len();
        let (pu, ps) = (u.as_ptr(), s.as_ptr());
        let pc = [codes[0].as_ptr(), codes[1].as_ptr(), codes[2].as_ptr(), codes[3].as_ptr()];
        let mut acc = [_mm256_setzero_ps(); 4];
        let chunks = n / 16;
        for i in 0..chunks {
            let uq0 = _mm256_loadu_ps(pu.add(i * 16));
            let sq0 = _mm256_loadu_ps(ps.add(i * 16));
            let uq1 = _mm256_loadu_ps(pu.add(i * 16 + 8));
            let sq1 = _mm256_loadu_ps(ps.add(i * 16 + 8));
            for v in 0..4 {
                let (c0, c1) = load_codes16(pc[v].add(i * 8));
                acc[v] = step(step(acc[v], uq0, sq0, c0), uq1, sq1, c1);
            }
        }
        let rem = n % 16;
        if rem != 0 {
            for v in 0..4 {
                let (ub, sb, cb) = tail_buffers(u, s, codes[v], chunks, rem);
                acc[v] = chunk(acc[v], ub.as_ptr(), sb.as_ptr(), cb.as_ptr());
            }
        }
        [reduce8(acc[0]), reduce8(acc[1]), reduce8(acc[2]), reduce8(acc[3])]
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON SQ4 kernels: nibbles mask apart (`vand`/`vshr`), `vzip`
    //! re-interleaves to natural dimension order, the SQ8 widening chain
    //! (`u8 → u16 → u32 → f32`, exact) feeds the same `vfmsq`/`vfmaq`
    //! fused arithmetic with two `float32x4` accumulators modeling the
    //! eight lanes.

    use core::arch::aarch64::*;

    #[inline(always)]
    unsafe fn reduce8(lo: float32x4_t, hi: float32x4_t) -> f32 {
        let c = vaddq_f32(lo, hi);
        let (c0, c1, c2, c3) = (
            vgetq_lane_f32(c, 0),
            vgetq_lane_f32(c, 1),
            vgetq_lane_f32(c, 2),
            vgetq_lane_f32(c, 3),
        );
        (c0 + c2) + (c1 + c3)
    }

    /// Widens 8 sequential codes into two exact `f32` quads.
    #[inline(always)]
    unsafe fn widen8(codes: uint8x8_t) -> (float32x4_t, float32x4_t) {
        let wide = vmovl_u8(codes);
        (
            vcvtq_f32_u32(vmovl_u16(vget_low_u16(wide))),
            vcvtq_f32_u32(vmovl_u16(vget_high_u16(wide))),
        )
    }

    /// One fused 8-lane step over dims at `pu`/`ps` with codes `c`.
    #[inline(always)]
    unsafe fn accum(
        lo: &mut float32x4_t,
        hi: &mut float32x4_t,
        pu: *const f32,
        ps: *const f32,
        c: uint8x8_t,
    ) {
        let (c0, c1) = widen8(c);
        let d0 = vfmsq_f32(vld1q_f32(pu), vld1q_f32(ps), c0);
        let d1 = vfmsq_f32(vld1q_f32(pu.add(4)), vld1q_f32(ps.add(4)), c1);
        *lo = vfmaq_f32(*lo, d0, d0);
        *hi = vfmaq_f32(*hi, d1, d1);
    }

    /// One 16-dim chunk from 8 packed bytes at `pc`.
    #[inline(always)]
    unsafe fn chunk(
        lo: &mut float32x4_t,
        hi: &mut float32x4_t,
        pu: *const f32,
        ps: *const f32,
        pc: *const u8,
    ) {
        let b = vld1_u8(pc);
        let nlo = vand_u8(b, vdup_n_u8(0x0F));
        let nhi = vshr_n_u8::<4>(b);
        let il = vzip_u8(nlo, nhi); // (d0..d7, d8..d15)
        accum(lo, hi, pu, ps, il.0);
        accum(lo, hi, pu.add(8), ps.add(8), il.1);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn l2_sq_u4(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(u.len(), s.len());
        debug_assert_eq!(codes.len(), u.len().div_ceil(2));
        let n = u.len();
        let (pu, ps, pc) = (u.as_ptr(), s.as_ptr(), codes.as_ptr());
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        let chunks = n / 16;
        for i in 0..chunks {
            chunk(&mut lo, &mut hi, pu.add(i * 16), ps.add(i * 16), pc.add(i * 8));
        }
        let rem = n % 16;
        if rem != 0 {
            let mut ub = [0.0f32; 16];
            let mut sb = [0.0f32; 16];
            let mut cb = [0u8; 8];
            core::ptr::copy_nonoverlapping(pu.add(chunks * 16), ub.as_mut_ptr(), rem);
            core::ptr::copy_nonoverlapping(ps.add(chunks * 16), sb.as_mut_ptr(), rem);
            let tail_bytes = codes.len() - chunks * 8;
            core::ptr::copy_nonoverlapping(pc.add(chunks * 8), cb.as_mut_ptr(), tail_bytes);
            chunk(&mut lo, &mut hi, ub.as_ptr(), sb.as_ptr(), cb.as_ptr());
        }
        reduce8(lo, hi)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn l2_sq_u4_batch(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        for (o, c) in out.iter_mut().zip(codes) {
            *o = l2_sq_u4(u, s, c);
        }
        out
    }
}

/// Asymmetric squared distance over nibble-packed 4-bit codes,
/// `Σ_d (u_d − s_d · c_d)²`, dispatched to the best available kernel (all
/// backends bit-identical — see the module docs). `u`/`s` come from
/// [`Sq4Store::prepare_into`]; `codes` holds `ceil(u.len()/2)` bytes.
#[inline]
pub fn l2_sq_u4(u: &[f32], s: &[f32], codes: &[u8]) -> f32 {
    match crate::distance::active_backend() {
        #[cfg(target_arch = "x86_64")]
        crate::distance::BACKEND_AVX2 if super::sq8::fma_available() => unsafe {
            avx2::l2_sq_u4(u, s, codes)
        },
        #[cfg(target_arch = "aarch64")]
        crate::distance::BACKEND_NEON => unsafe { neon::l2_sq_u4(u, s, codes) },
        _ => l2_sq_u4_scalar(u, s, codes),
    }
}

/// [`l2_sq_u4`] against **four** code rows at once. Bit-identical to four
/// separate calls.
#[inline]
pub fn l2_sq_u4_batch(u: &[f32], s: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    match crate::distance::active_backend() {
        #[cfg(target_arch = "x86_64")]
        crate::distance::BACKEND_AVX2 if super::sq8::fma_available() => unsafe {
            avx2::l2_sq_u4_batch(u, s, codes)
        },
        #[cfg(target_arch = "aarch64")]
        crate::distance::BACKEND_NEON => unsafe { neon::l2_sq_u4_batch(u, s, codes) },
        _ => l2_sq_u4_batch_scalar(u, s, codes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_sq;

    fn ramp_store(n: usize, dim: usize) -> VectorStore {
        let mut s = VectorStore::new(dim);
        for i in 0..n {
            let row: Vec<f32> =
                (0..dim).map(|d| ((i * 31 + d * 7) as f32 * 0.37).sin() * 3.0).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn rows_are_cache_line_aligned_and_half_width() {
        let store = ramp_store(5, 100);
        let q = Sq4Store::from_store(&store);
        assert_eq!(q.stride(), 64, "50 packed bytes round to one line");
        assert_eq!(q.len(), 5);
        for id in 0..5u32 {
            assert_eq!(q.code_row(id).as_ptr() as usize % 64, 0, "row {id} misaligned");
            assert!(q.code_row(id)[50..].iter().all(|&c| c == 0), "padding must be zero");
        }
        // Half the SQ8 footprint on a 128-dim store.
        let wide = ramp_store(4, 128);
        assert_eq!(Sq4Store::from_store(&wide).stride(), 64);
        assert_eq!(super::super::QuantizedStore::from_store(&wide).stride(), 128);
    }

    #[test]
    fn decode_within_one_step_per_dim() {
        let store = ramp_store(20, 13);
        let q = Sq4Store::from_store(&store);
        for (id, row) in store.iter() {
            let dec = q.decode(id);
            for d in 0..13 {
                let tol = q.deltas()[d] * 0.5 + 1e-6;
                assert!(
                    (dec[d] - row[d]).abs() <= tol,
                    "id={id} dim={d}: {} vs {} (step {})",
                    dec[d],
                    row[d],
                    q.deltas()[d]
                );
            }
        }
    }

    #[test]
    fn constant_dimension_is_exact() {
        let mut store = VectorStore::new(3);
        store.push(&[1.0, 5.5, -2.0]);
        store.push(&[2.0, 5.5, -1.0]);
        let q = Sq4Store::from_store(&store);
        assert_eq!(q.deltas()[1], 0.0);
        assert_eq!(q.decode(0)[1], 5.5);
        let query = [1.5f32, 9.0, -1.5];
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        let d = q.dist_prepared(&pq, 0);
        let exact_to_decoded = l2_sq(&query, &q.decode(0));
        assert!((d - exact_to_decoded).abs() < 1e-4, "{d} vs {exact_to_decoded}");
    }

    #[test]
    fn asymmetric_distance_matches_decoded_distance() {
        let store = ramp_store(30, 96);
        let q = Sq4Store::from_store(&store);
        let query: Vec<f32> = (0..96).map(|d| ((d * 13) as f32 * 0.21).cos() * 2.5).collect();
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        for id in 0..30u32 {
            let asym = q.dist_prepared(&pq, id);
            let exact = l2_sq(&query, &q.decode(id));
            let tol = exact.abs() * 1e-4 + 1e-3;
            assert!((asym - exact).abs() <= tol, "id={id}: {asym} vs {exact}");
        }
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_single() {
        let store = ramp_store(8, 100);
        let q = Sq4Store::from_store(&store);
        let query: Vec<f32> = (0..100).map(|d| (d as f32 * 0.11).sin()).collect();
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        let batch = q.dist_prepared_batch(&pq, [0, 3, 5, 7]);
        for (i, id) in [0u32, 3, 5, 7].into_iter().enumerate() {
            assert_eq!(batch[i].to_bits(), q.dist_prepared(&pq, id).to_bits());
        }
    }

    #[test]
    fn dispatched_u4_kernels_match_scalar_bitwise() {
        for dim in (1usize..=200).chain([256, 960]) {
            let t: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin() * 9.0).collect();
            let w: Vec<f32> = (0..dim).map(|i| ((i as f32 * 0.3).cos() + 1.5) * 0.01).collect();
            let bytes = dim.div_ceil(2);
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|v| (0..bytes).map(|i| ((i * 37 + v * 91) % 256) as u8).collect())
                .collect();
            let refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            assert_eq!(
                l2_sq_u4(&t, &w, refs[0]).to_bits(),
                l2_sq_u4_scalar(&t, &w, refs[0]).to_bits(),
                "dim={dim}"
            );
            let batch = l2_sq_u4_batch(&t, &w, refs);
            let batch_ref = l2_sq_u4_batch_scalar(&t, &w, refs);
            for v in 0..4 {
                assert_eq!(batch[v].to_bits(), batch_ref[v].to_bits(), "dim={dim} v={v}");
            }
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let store = ramp_store(9, 33);
        let q = Sq4Store::from_store(&store);
        let back = Sq4Store::from_parts(
            q.dim(),
            q.mins().to_vec(),
            q.deltas().to_vec(),
            q.to_packed_codes(),
        );
        assert_eq!(back.len(), q.len());
        for id in 0..9u32 {
            assert_eq!(back.code_row(id), q.code_row(id), "row {id}");
        }
    }

    #[test]
    fn heap_bytes_accounts_codes() {
        let store = ramp_store(16, 200);
        let q = Sq4Store::from_store(&store);
        // 200 dims -> 100 packed bytes -> two lines per row.
        assert!(q.heap_bytes() >= 16 * 128);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn stores() -> impl Strategy<Value = (usize, Vec<Vec<f32>>)> {
        (1usize..=12).prop_flat_map(|dim| {
            prop::collection::vec(prop::collection::vec(-1000.0f32..1000.0, dim), 1..=8)
                .prop_map(move |rows| (dim, rows))
        })
    }

    proptest! {
        /// Encode→decode lands within one (15-step) quantization step on
        /// every dimension, for arbitrary stores.
        #[test]
        fn encode_decode_within_one_step(case in stores()) {
            let (dim, rows) = case;
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let q = Sq4Store::from_store(&VectorStore::from_flat(dim, flat));
            for d in 0..dim {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for r in &rows {
                    lo = lo.min(r[d]);
                    hi = hi.max(r[d]);
                }
                let step = (hi - lo) / 15.0;
                for (id, r) in rows.iter().enumerate() {
                    let err = (q.decode(id as u32)[d] - r[d]).abs();
                    prop_assert!(
                        err <= step + step * 1e-3 + 1e-4,
                        "dim {} id {}: err {} > step {}", d, id, err, step
                    );
                }
            }
        }

        /// A store of identical rows makes every dimension constant
        /// (Δ = 0): the degenerate path must decode exactly.
        #[test]
        fn constant_dims_decode_exactly(
            dim in 1usize..=12,
            copies in 1usize..=6,
            anchor in -1000.0f32..1000.0,
        ) {
            let row: Vec<f32> = (0..dim).map(|i| anchor + i as f32 * 0.25).collect();
            let flat: Vec<f32> =
                std::iter::repeat_n(row.clone(), copies).flatten().collect();
            let q = Sq4Store::from_store(&VectorStore::from_flat(dim, flat));
            for id in 0..copies as u32 {
                prop_assert_eq!(q.decode(id), row.clone());
            }
        }

        /// Permuting the encoded store is bit-identical to encoding the
        /// permuted vectors: the affine grids are global per dimension, so
        /// encoding is row-local — the SQ4 leg of the reorder∘quantize
        /// commutation contract.
        #[test]
        fn permute_commutes_with_encode(case in stores(), seed in 0usize..6) {
            let (dim, rows) = case;
            let n = rows.len();
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let q = Sq4Store::from_store(&VectorStore::from_flat(dim, flat));
            let new_to_old: Vec<u32> =
                (0..n as u32).map(|i| (i as usize + seed) as u32 % n as u32).collect();
            let map = crate::reorder::IdRemap::from_new_to_old(new_to_old.clone()).unwrap();
            let mut permuted = VectorStore::new(dim);
            for &old in &new_to_old {
                permuted.push(&rows[old as usize]);
            }
            let a = q.permute(&map);
            let b = Sq4Store::from_store(&permuted);
            prop_assert_eq!(a.mins(), b.mins());
            prop_assert_eq!(a.deltas(), b.deltas());
            for id in 0..n as u32 {
                prop_assert_eq!(a.code_row(id), b.code_row(id), "row {}", id);
            }
        }
    }
}
