//! Intra-query parallel fan-out: a resident worker pool that runs the
//! `nprobe` per-shard probes of **one** query concurrently.
//!
//! [`crate::par`] covers throughput parallelism — spawn scoped threads,
//! split a batch, join. A single query's probe fan-out is the opposite
//! regime: a handful of ~100µs tasks where thread spawn/join would cost
//! more than the work. [`FanoutPool`] keeps its workers resident and
//! parked on a condvar; submitting a fan-out is one queue push + wake,
//! and the **caller participates in claiming**, so every probe completes
//! even if pool workers are busy elsewhere (no handoff deadlock, and
//! `workers = 1` degenerates to exactly the sequential loop).
//!
//! Determinism contract (the same one every optimization since PR 1
//! carries): fan-out only reorders *which thread* runs each probe.
//! Per-shard searches are independent and internally deterministic,
//! [`crate::distance::DistCounter`] bumps are shared relaxed atomics
//! whose totals commute, and the caller merges results in ranked-centroid
//! order after the barrier — so neighbors, distance bits, and counter
//! totals are bit-identical to the sequential loop at any worker count.
//!
//! Work is claimed **node-affine**: submissions present one index list
//! per NUMA node, each worker drains its own node's list before stealing
//! from the next ([`crate::numa`] pins pool worker `w` to node
//! `w % num_nodes`), so probes run on the socket that holds the shard's
//! memory when placement is available — and degrade to plain work
//! stealing when it is not.
//!
//! Toggles mirror the SIMD/mmap pattern: `GASS_NO_FANOUT=1` /
//! [`set_fanout_enabled`] for A/B runs, and `GASS_FANOUT_WORKERS` /
//! [`set_fanout_workers`] for the executor count (`0` = all cores;
//! unset defaults to `1`, i.e. fan-out stays off unless asked for —
//! per-query parallelism spends the same cores inter-query serving
//! would, so it is an explicit latency-over-throughput choice).

use crate::numa;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

const FANOUT_UNINIT: u8 = 0;
const FANOUT_ON: u8 = 1;
const FANOUT_OFF: u8 = 2;

static FANOUT_MODE: AtomicU8 = AtomicU8::new(FANOUT_UNINIT);

#[cold]
fn init_fanout_mode() -> u8 {
    let off = std::env::var("GASS_NO_FANOUT").is_ok_and(|v| !v.is_empty() && v != "0");
    let m = if off { FANOUT_OFF } else { FANOUT_ON };
    FANOUT_MODE.store(m, Ordering::Relaxed);
    m
}

/// Whether fan-out is allowed at all (not disabled via `GASS_NO_FANOUT=1`
/// or [`set_fanout_enabled`]). Even when enabled, fan-out only engages
/// once [`set_fanout_workers`] (or `GASS_FANOUT_WORKERS`) asks for more
/// than one executor.
#[inline]
pub fn fanout_enabled() -> bool {
    let m = FANOUT_MODE.load(Ordering::Relaxed);
    let m = if m == FANOUT_UNINIT { init_fanout_mode() } else { m };
    m == FANOUT_ON
}

/// In-process override for A/B runs: `false` forces the sequential probe
/// loop regardless of the worker knob.
pub fn set_fanout_enabled(on: bool) {
    FANOUT_MODE.store(if on { FANOUT_ON } else { FANOUT_OFF }, Ordering::Relaxed);
}

/// Requested executor count. `usize::MAX` = unset (consult the
/// environment on first read), `0` = all cores, else the literal count.
static FANOUT_WORKERS: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets the fan-out executor count: `0` means "all available cores",
/// `1` disables fan-out (the sequential loop), `n > 1` runs probes on
/// `n` executors — the calling thread plus `n - 1` resident pool workers.
pub fn set_fanout_workers(n: usize) {
    FANOUT_WORKERS.store(n, Ordering::Relaxed);
}

#[cold]
fn init_fanout_workers() -> usize {
    let n = std::env::var("GASS_FANOUT_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    FANOUT_WORKERS.store(n, Ordering::Relaxed);
    n
}

/// The executor count a fan-out would use right now, after resolving the
/// knob, the environment default, and the A/B toggle. `1` means the
/// sequential loop runs.
pub fn fanout_workers() -> usize {
    if !fanout_enabled() {
        return 1;
    }
    let n = FANOUT_WORKERS.load(Ordering::Relaxed);
    let n = if n == usize::MAX { init_fanout_workers() } else { n };
    crate::par::effective_threads(n)
}

/// One submitted fan-out: a lifetime-erased closure plus per-node work
/// lists and the completion barrier. The submitting caller blocks in
/// [`FanoutPool::run`] until `pending` drains, which is what makes the
/// raw `ctx` pointer sound — the closure (and everything it borrows)
/// provably outlives every execution.
struct TaskState {
    ctx: *const (),
    run: unsafe fn(*const (), usize),
    /// Work indices grouped by preferred NUMA node.
    lists: Vec<Vec<usize>>,
    /// Per-node claim cursors; claims past a list's end spill to the
    /// next node (work stealing in node order).
    cursors: Vec<AtomicUsize>,
    /// Executions not yet finished; the last decrement signals `done`.
    pending: AtomicUsize,
    done: Mutex<bool>,
    cv: Condvar,
}

// SAFETY: `ctx` points at a closure the submitting thread keeps alive
// until `pending` reaches zero (it blocks on `done` in `run`), and the
// closure is required to be `Sync` at the only construction site.
unsafe impl Send for TaskState {}
unsafe impl Sync for TaskState {}

impl TaskState {
    /// Claims one not-yet-run index, preferring `node`'s list and
    /// stealing from subsequent nodes in order. `None` once exhausted.
    fn claim(&self, node: usize) -> Option<usize> {
        let nodes = self.lists.len();
        for off in 0..nodes {
            let n = (node + off) % nodes;
            let c = self.cursors[n].fetch_add(1, Ordering::Relaxed);
            if c < self.lists[n].len() {
                return Some(self.lists[n][c]);
            }
        }
        None
    }

    /// Whether every index has been claimed (not necessarily finished).
    fn exhausted(&self) -> bool {
        self.cursors.iter().zip(&self.lists).all(|(c, l)| c.load(Ordering::Relaxed) >= l.len())
    }

    /// Runs one claimed index and signals the barrier on the last one.
    fn execute(&self, idx: usize) {
        // SAFETY: see the Send/Sync justification — ctx is live and Sync.
        unsafe { (self.run)(self.ctx, idx) };
        // AcqRel: release this execution's writes into the counter's RMW
        // chain; the final decrementer acquires them all before signaling.
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }
}

struct Queue {
    tasks: VecDeque<Arc<TaskState>>,
    shutdown: bool,
}

struct PoolInner {
    queue: Mutex<Queue>,
    cv: Condvar,
}

/// The resident intra-query fan-out pool — see the module docs. Holds
/// `executors - 1` parked worker threads; the submitting caller is the
/// remaining executor.
pub struct FanoutPool {
    inner: Arc<PoolInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    executors: usize,
}

impl FanoutPool {
    /// A pool presenting `executors` total executors (clamped to ≥ 1):
    /// the caller plus `executors - 1` resident workers, each pinned to
    /// NUMA node `w % num_nodes` where placement is available.
    pub fn new(executors: usize) -> Self {
        let executors = executors.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(Queue { tasks: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        });
        let threads = (1..executors)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("gass-fanout-{w}"))
                    .spawn(move || {
                        let node = numa::node_of_worker(w);
                        numa::pin_to_node(node);
                        worker_loop(&inner, node);
                    })
                    .expect("spawn fan-out worker")
            })
            .collect();
        Self { inner, threads, executors }
    }

    /// Total executors (caller included).
    pub fn executors(&self) -> usize {
        self.executors
    }

    /// Runs `f(i)` once for every index in `lists` (one list per NUMA
    /// node; workers prefer their own node's list) and returns after all
    /// executions finish. The caller claims work too, so completion never
    /// waits on pool scheduling.
    pub fn run<F>(&self, lists: Vec<Vec<usize>>, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        let total: usize = lists.iter().map(Vec::len).sum();
        if total == 0 {
            return;
        }
        unsafe fn call<F: Fn(usize)>(ctx: *const (), i: usize) {
            // SAFETY: ctx was erased from an `&F` that outlives the task.
            unsafe { (*(ctx as *const F))(i) }
        }
        let cursors = lists.iter().map(|_| AtomicUsize::new(0)).collect();
        let task = Arc::new(TaskState {
            ctx: f as *const F as *const (),
            run: call::<F>,
            lists,
            cursors,
            pending: AtomicUsize::new(total),
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.tasks.push_back(Arc::clone(&task));
        }
        self.inner.cv.notify_all();
        // The caller is executor 0: drain from node 0's list first.
        while let Some(idx) = task.claim(0) {
            task.execute(idx);
        }
        let mut done = task.done.lock().unwrap();
        while !*done {
            done = task.cv.wait(done).unwrap();
        }
    }

    /// [`Self::run`] returning per-index results: slot `i` of the output
    /// holds `Some(f(i))` for every `i` in `lists` (`None` for indices
    /// `< n` the lists skip).
    pub fn map<R, F>(&self, lists: Vec<Vec<usize>>, n: usize, f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        use std::cell::UnsafeCell;
        struct Slots<'a, R>(&'a [UnsafeCell<Option<R>>]);
        // SAFETY: each slot is written by exactly one claimant (claim
        // hands out every index once), and reads happen only after the
        // run barrier.
        unsafe impl<R: Send> Sync for Slots<'_, R> {}
        impl<R> Slots<'_, R> {
            fn set(&self, i: usize, v: R) {
                // SAFETY: unique writer per slot, see the Sync impl.
                unsafe { *self.0[i].get() = Some(v) };
            }
        }
        let slots: Vec<UnsafeCell<Option<R>>> = (0..n).map(|_| UnsafeCell::new(None)).collect();
        let view = Slots(&slots);
        let view = &view;
        self.run(lists, &|i| view.set(i, f(i)));
        slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

impl Drop for FanoutPool {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.inner.cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(inner: &PoolInner, node: usize) {
    loop {
        let task = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                while q.tasks.front().is_some_and(|t| t.exhausted()) {
                    q.tasks.pop_front();
                }
                if let Some(t) = q.tasks.front() {
                    break Arc::clone(t);
                }
                if q.shutdown {
                    return;
                }
                q = inner.cv.wait(q).unwrap();
            }
        };
        while let Some(idx) = task.claim(node) {
            task.execute(idx);
        }
    }
}

/// The process-wide pool serving [`crate::sharded::ShardedIndex`]
/// fan-outs, rebuilt whenever the resolved executor count changes (the
/// bench ladder sweeps worker counts in one process). `None` when the
/// resolved count is ≤ 1 — callers run their sequential loop.
pub fn shared_pool() -> Option<Arc<FanoutPool>> {
    static POOL: Mutex<Option<(usize, Arc<FanoutPool>)>> = Mutex::new(None);
    let want = fanout_workers();
    if want <= 1 {
        return None;
    }
    let mut slot = POOL.lock().unwrap();
    match &*slot {
        Some((have, pool)) if *have == want => Some(Arc::clone(pool)),
        _ => {
            // Drop the stale pool (joining its workers) before standing
            // up the resized one.
            *slot = None;
            let pool = Arc::new(FanoutPool::new(want));
            *slot = Some((want, Arc::clone(&pool)));
            Some(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_covers_every_index_once_at_any_width() {
        for executors in [1, 2, 3, 8] {
            let pool = FanoutPool::new(executors);
            let lists = vec![vec![0, 2, 4, 6], vec![1, 3, 5]];
            let out = pool.map(lists, 8, |i| i * i);
            for (i, got) in out.iter().enumerate().take(7) {
                assert_eq!(*got, Some(i * i), "executors={executors}");
            }
            assert_eq!(out[7], None, "index outside the lists stays empty");
        }
    }

    #[test]
    fn caller_completes_work_alone_and_pool_is_reusable() {
        let pool = FanoutPool::new(1); // no pool threads: caller drains all
        for round in 0..3 {
            let hits = AtomicUsize::new(0);
            pool.run(vec![(0..50).collect()], &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 50, "round={round}");
        }
        assert_eq!(pool.executors(), 1);
    }

    #[test]
    fn many_submissions_through_one_pool() {
        let pool = FanoutPool::new(4);
        for n in [0usize, 1, 5, 33] {
            let sum = AtomicUsize::new(0);
            pool.run(vec![(0..n).collect()], &|i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn knobs_resolve_and_gate_the_shared_pool() {
        set_fanout_enabled(true);
        set_fanout_workers(1);
        assert_eq!(fanout_workers(), 1);
        assert!(shared_pool().is_none(), "one executor means the sequential loop");

        set_fanout_workers(3);
        let a = shared_pool().expect("pool at 3 executors");
        assert_eq!(a.executors(), 3);
        let b = shared_pool().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same count reuses the pool");

        set_fanout_workers(2);
        let c = shared_pool().unwrap();
        assert_eq!(c.executors(), 2, "count change rebuilds the pool");

        set_fanout_enabled(false);
        assert_eq!(fanout_workers(), 1);
        assert!(shared_pool().is_none(), "A/B toggle forces sequential");
        set_fanout_enabled(true);
        set_fanout_workers(1);
    }
}
