//! Figure-1 style best-so-far race: how quickly does each family of
//! vector search find the right image?
//!
//! The paper's motivating figure embeds ImageNet with ResNet50 and races
//! a graph method (ELPIS), a slower graph method (EFANNA), a hash method
//! (QALSH) and an exact serial scan, plotting the best-so-far answer over
//! time. Here the embeddings are the ImageNet-like analog, and the racers
//! are ELPIS, EFANNA, an LSH candidate scan, and the serial scan.
//!
//! ```sh
//! cargo run --release --example image_retrieval
//! ```

use gass::prelude::*;
use gass_core::Space;

fn main() {
    let n = 20_000;
    let base = gass::data::synth::imagenet_like(n, 11);
    let query = gass::data::synth::imagenet_like(1, 99);
    let q = query.get(0);
    println!("ImageNet-like collection: {} x {}d\n", base.len(), base.dim());

    // Truth for reference.
    let truth = gass::data::exact_knn(&base, q, 1)[0];
    println!("true NN: id {} at dist {:.4}\n", truth.id, truth.dist.sqrt());

    // --- Exact serial scan: time to completion ------------------------
    let counter = DistCounter::new();
    let t = std::time::Instant::now();
    let space = Space::new(&base, &counter);
    let exact = gass_core::serial_scan(space, q, 1);
    let scan_time = t.elapsed().as_secs_f64();
    println!(
        "SerialScan : bsf id {:>6}  final after {:>9.3}ms ({} dists)",
        exact[0].id,
        scan_time * 1e3,
        counter.get()
    );

    // --- LSH: candidate retrieval + verification ----------------------
    let t = std::time::Instant::now();
    let lsh = gass::hash::LshIndex::build(&base, 6, 8, 8.0, 3);
    let lsh_build = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let cands = lsh.candidates(q, 512);
    let mut best = Neighbor::new(u32::MAX, f32::INFINITY);
    for id in cands {
        let d = gass_core::l2_sq(q, base.get(id));
        if d < best.dist {
            best = Neighbor::new(id, d);
        }
    }
    println!(
        "LSH        : bsf id {:>6}  answer in {:>9.3}ms (+{:.0}ms build)",
        best.id,
        t.elapsed().as_secs_f64() * 1e3,
        lsh_build * 1e3
    );

    // --- EFANNA (slower graph family in Fig. 1) -----------------------
    let t = std::time::Instant::now();
    let efanna =
        gass::graphs::EfannaIndex::build(base.clone(), gass::graphs::EfannaParams::small());
    let ef_build = t.elapsed().as_secs_f64();
    let counter = DistCounter::new();
    let t = std::time::Instant::now();
    let res = efanna.search(q, &QueryParams::new(1, 64).with_seed_count(16), &counter);
    println!(
        "EFANNA     : bsf id {:>6}  answer in {:>9.3}ms ({} dists, +{:.0}ms build)",
        res.neighbors[0].id,
        t.elapsed().as_secs_f64() * 1e3,
        counter.get(),
        ef_build * 1e3
    );

    // --- ELPIS (the paper's fast graph family) ------------------------
    let t = std::time::Instant::now();
    let elpis = ElpisIndex::build(base.clone(), ElpisParams::small());
    let elpis_build = t.elapsed().as_secs_f64();
    let counter = DistCounter::new();
    let t = std::time::Instant::now();
    let res = elpis.search(q, &QueryParams::new(1, 48), &counter);
    let elpis_time = t.elapsed().as_secs_f64();
    println!(
        "ELPIS      : bsf id {:>6}  answer in {:>9.3}ms ({} dists, +{:.0}ms build)",
        res.neighbors[0].id,
        elpis_time * 1e3,
        counter.get(),
        elpis_build * 1e3
    );

    println!(
        "\nELPIS answered {:.0}x faster than the serial scan with the same answer: {}",
        scan_time / elpis_time.max(1e-9),
        res.neighbors[0].id == exact[0].id
    );
}
