//! Figure 5: ND strategies on the II baseline — recall vs distance
//! calculations for RND / RRND / MOND / NoND on Deep and Sift at
//! increasing size tiers.
//!
//! Paper shape to reproduce: RND and MOND consistently best, RRND next,
//! NoND worst; the gap widens with dataset size, especially at high
//! recall.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig05_nd
//! ```

use gass_bench::{beam_sweep, num_queries, results_dir, small_tiers};
use gass_core::nd::NdStrategy;
use gass_data::DatasetKind;
use gass_eval::Table;
use gass_graphs::{IiGraph, IiParams};

fn main() {
    let k = 10;
    let strategies = [
        NdStrategy::Rnd,
        NdStrategy::mond_default(),
        NdStrategy::rrnd_default(),
        NdStrategy::NoNd,
    ];
    let mut table =
        Table::new(vec!["dataset", "tier", "nd", "L", "recall", "dist_calcs_per_query"]);

    for kind in [DatasetKind::Deep, DatasetKind::Sift] {
        for tier in small_tiers() {
            let (base, queries) = kind.generate(tier.n, num_queries(), 31);
            let truth = gass_data::ground_truth(&base, &queries, k);
            for nd in strategies {
                // The paper's setting R=60, L=800 scaled to our tier.
                let params = IiParams {
                    max_degree: 24,
                    beam_width: 128,
                    nd,
                    build_seeds: 8,
                    seed: 5,
                    threads: 1,
                };
                let g = IiGraph::build(base.clone(), params);
                // The reference implementations (NSG-lineage) initialize
                // the candidate pool with L random nodes; mirror that so
                // seed coverage scales with the beam.
                let points: Vec<_> = beam_sweep()
                    .into_iter()
                    .map(|l| gass_eval::evaluate_at(&g, &queries, &truth, k, l, l))
                    .collect();
                for p in points {
                    table.row(vec![
                        kind.name(),
                        tier.label.to_string(),
                        nd.label().to_string(),
                        p.beam_width.to_string(),
                        format!("{:.4}", p.recall),
                        (p.dist_calcs / queries.len() as u64).to_string(),
                    ]);
                }
                eprintln!("done: {} {} {}", kind.name(), tier.label, nd.label());
            }
        }
    }
    table.emit(&results_dir(), "fig05_nd").expect("write results");

    println!(
        "Read the series as the paper's Fig. 5: for each (dataset, tier), \
         plot recall (x) against dist_calcs_per_query (y); RND/MOND should \
         sit lowest, NoND highest, with the gap growing at the larger tier."
    );
}
