//! Extension experiment: cache-locality graph reordering — relabeling the
//! frozen CSR, the aligned vectors, and (when present) the SQ8 codes with
//! one locality-preserving permutation at freeze time.
//!
//! Per dataset, one HNSW base graph is built once; each strategy then
//! serves it through a fresh `PrebuiltIndex` (store clone + graph clone +
//! KS seeds) in the PR 3 serving configuration (SIMD + prefetch + frozen
//! CSR + aligned store), reordered with that strategy. Because reordering
//! is an isomorphism of the traversal, every strategy must return
//! *identical* results — same recall@10 and same `DistCounter` totals as
//! the unreordered baseline — so wall-clock QPS is the entire story.
//!
//! Alongside QPS the harness reports the cache-miss proxy the relabeling
//! optimizes: the mean absolute id-distance over all CSR edges
//! (`mean_edge_span`). A traversal hop from `u` to a neighbor `v`
//! touches rows `u` and `v` of the vector store; the smaller the typical
//! |u - v|, the closer those rows sit in memory and the likelier the
//! next hop hits cache or an already-open TLB page.
//!
//! Acceptance shape: at recall@10 of at least 0.97 the best strategy
//! reaches at least 1.15x the unreordered single-thread QPS, with
//! bit-identical recall and distance totals across all strategies. The
//! gain tracks how far the serving state overflows the last-level
//! cache: on hosts whose LLC swallows the 100K Deep analog outright
//! (~51 MB), the headline shows up on the tiers that do overflow it —
//! the Gist analog and the 10x `deep-xl` tier.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_reorder
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_QUERIES` the query count.
//! Output: `results/ext_reorder.json`.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, PrebuiltIndex, QueryParams};
use gass_core::seed::RandomSeeds;
use gass_core::{mean_edge_span, ReorderStrategy};
use gass_eval::{measure_throughput, recall_at_k, write_json, Table};
use gass_graphs::{HnswIndex, HnswParams};
use serde::Serialize;

const K: usize = 10;
const ROUNDS: usize = 15;
/// Throughput repetitions per strategy; the best run is the measurement.
const REPS: usize = 3;

#[derive(Serialize)]
struct StrategyRecord {
    strategy: String,
    recall_at_10: f64,
    dist_total: u64,
    mean_edge_span: f64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
    speedup_vs_none: f64,
}

#[derive(Serialize)]
struct DatasetRecord {
    dataset: &'static str,
    n: usize,
    dim: usize,
    beam_width: usize,
    /// Every strategy returned the baseline's exact recall and distance
    /// totals (reordering is results-invariant).
    identical_results: bool,
    best_strategy: String,
    best_speedup_1t: f64,
    strategies: Vec<StrategyRecord>,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    num_queries: usize,
    k: usize,
    rounds: usize,
    host_cores: usize,
    simd_backend: &'static str,
    datasets: Vec<DatasetRecord>,
}

/// One deterministic, single-threaded pass over the queries in order.
/// Each strategy runs it on a *fresh* index whose KS seeder starts from
/// the same RNG state, so identical labelings of the same graph must
/// produce identical `(recall, dist_total)` pairs.
fn deterministic_pass(
    index: &PrebuiltIndex,
    queries: &gass_core::VectorStore,
    truth: &[Vec<gass_core::Neighbor>],
    params: &QueryParams,
) -> (f64, u64) {
    let counter = DistCounter::new();
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, &counter);
        recall += recall_at_k(row, &res.neighbors, K);
    }
    (recall / truth.len() as f64, counter.get())
}

/// A fresh serving instance over the shared base graph: KS seeds, aligned
/// store, frozen CSR, relabeled with `strategy`.
fn serve(
    store: &gass_core::VectorStore,
    graph: &gass_core::FlatGraph,
    strategy: ReorderStrategy,
) -> PrebuiltIndex {
    let n = store.len();
    let mut index = PrebuiltIndex::new(
        store.clone(),
        graph.clone(),
        Box::new(RandomSeeds::new(n, 7)),
        strategy.as_str(),
    );
    index.align_store();
    index.freeze();
    index.reorder(strategy);
    index
}

fn main() {
    let n = 100_000 * scale();
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    gass_core::set_simd_enabled(true);
    gass_core::set_prefetch_enabled(true);
    println!("Extension: cache-locality graph reordering, n={n}, k={K}\n");

    let mut datasets: Vec<DatasetRecord> = Vec::new();
    let mut table = Table::new(vec![
        "dataset",
        "strategy",
        "recall@10",
        "dists/query",
        "edge_span",
        "qps(1t)",
        "p50_us",
        "p99_us",
        "speedup",
    ]);

    // Three tiers spanning the LLC boundary: the 100K Deep analog
    // (~51 MB serving state) fits small-server LLCs outright, the Gist
    // analog (~440 MB) overflows via wide rows, and the 10x `deep-xl`
    // tier (~512 MB) overflows via node count — the latency-bound case
    // reordering targets most directly.
    type Synth = fn(usize, u64) -> gass_core::VectorStore;
    let tiers: [(&str, usize, Synth); 3] = [
        ("deep", n, gass_data::synth::deep_like),
        ("gist", n, gass_data::synth::gist_like),
        ("deep-xl", 10 * n, gass_data::synth::deep_like),
    ];
    for (name, dn, synth) in tiers {
        let all = synth(dn + num_queries(), 333);
        // In-distribution holdout, as in `ext_quantized`: a fresh draw in
        // high dimensions lands between the base clusters and the recall
        // operating point becomes unreachable.
        let (base, queries) = gass_data::holdout_split(&all, num_queries(), 333);
        drop(all);
        let dim = base.dim();
        let truth = gass_data::ground_truth(&base, &queries, K);

        eprintln!("{name}: building HNSW ({host_cores} threads)...");
        let built = HnswIndex::build(
            base,
            HnswParams { m: 16, ef_construction: 128, seed: 333, threads: host_cores },
        );
        let store = built.store().clone();
        let graph = built.base_graph().clone();
        drop(built);

        // Smallest swept beam width whose baseline recall clears the 0.97
        // operating point (KS seeding needs a little more beam than the
        // hierarchy descent at equal recall).
        let mut beam_width = 0;
        let baseline_pass = {
            let mut pass = (0.0, 0u64);
            for l in [80usize, 128, 192, 256, 384] {
                let index = serve(&store, &graph, ReorderStrategy::None);
                let params = QueryParams::new(K, l).with_seed_count(16);
                pass = deterministic_pass(&index, &queries, &truth, &params);
                beam_width = l;
                if pass.0 >= 0.97 {
                    break;
                }
                eprintln!("{name}: L={l} recall {:.4} < 0.97, widening", pass.0);
            }
            pass
        };
        let params = QueryParams::new(K, beam_width).with_seed_count(16);

        let mut identical = true;
        let mut strategies: Vec<StrategyRecord> = Vec::new();
        for strategy in ReorderStrategy::ALL {
            let index = serve(&store, &graph, strategy);
            let span = mean_edge_span(index.serving().csr().expect("frozen serving state"));
            let (recall, dists) = deterministic_pass(&index, &queries, &truth, &params);
            if (recall, dists) != baseline_pass {
                identical = false;
                eprintln!(
                    "{name}: {strategy} diverged: recall {recall:.4} vs {:.4}, \
                     dists {dists} vs {}",
                    baseline_pass.0, baseline_pass.1
                );
            }
            let t1 = (0..REPS)
                .map(|_| measure_throughput(&index, &queries, &params, 1, ROUNDS))
                .max_by(|a, b| a.qps.total_cmp(&b.qps))
                .unwrap();
            eprintln!("done: {name} {strategy}");
            strategies.push(StrategyRecord {
                strategy: strategy.to_string(),
                recall_at_10: recall,
                dist_total: dists,
                mean_edge_span: span,
                qps_1t: t1.qps,
                p50_us_1t: t1.p50_us,
                p99_us_1t: t1.p99_us,
                speedup_vs_none: 0.0, // filled below
            });
        }
        let none_qps = strategies[0].qps_1t.max(1e-12);
        for s in &mut strategies {
            s.speedup_vs_none = s.qps_1t / none_qps;
        }
        for s in &strategies {
            table.row(vec![
                name.to_string(),
                s.strategy.clone(),
                format!("{:.4}", s.recall_at_10),
                (s.dist_total / truth.len() as u64).to_string(),
                format!("{:.0}", s.mean_edge_span),
                format!("{:.0}", s.qps_1t),
                format!("{:.1}", s.p50_us_1t),
                format!("{:.1}", s.p99_us_1t),
                format!("{:.2}x", s.speedup_vs_none),
            ]);
        }
        assert!(
            identical,
            "{name}: reordering must be results-invariant (see divergence above)"
        );
        let best = strategies[1..]
            .iter()
            .max_by(|a, b| a.qps_1t.total_cmp(&b.qps_1t))
            .expect("non-empty strategy sweep");
        datasets.push(DatasetRecord {
            dataset: name,
            n: dn,
            dim,
            beam_width,
            identical_results: identical,
            best_strategy: best.strategy.clone(),
            best_speedup_1t: best.speedup_vs_none,
            strategies,
        });
    }

    let record = Record {
        experiment: "ext_reorder",
        num_queries: num_queries(),
        k: K,
        rounds: ROUNDS,
        host_cores,
        simd_backend: gass_core::simd_backend(),
        datasets,
    };

    println!("{}", table.render());
    for d in &record.datasets {
        println!(
            "{}: best strategy {} at {:.2}x single-thread QPS over the \
             unreordered serving baseline (recall@10 and distance totals \
             identical across all strategies: {})",
            d.dataset, d.best_strategy, d.best_speedup_1t, d.identical_results
        );
    }
    let path = write_json(&results_dir(), "ext_reorder", &record).expect("write results");
    println!("wrote {}", path.display());
}
