//! **SPTAG** (Microsoft): a Divide-and-Conquer method. The dataset is
//! hierarchically divided several times with random Trinary-Projection
//! trees; an *exact* k-NN graph is computed inside every leaf; the
//! per-division graphs are merged and the merged neighborhoods are RND
//! diversified. Seeds come from auxiliary trees built on the data:
//! K-D trees (**SPTAG-KDT**) or Balanced K-means trees (**SPTAG-BKT**).

use crate::common::{exact_knn_subset, BuildReport};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_core::reorder::{IdRemap, ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use gass_trees::bkt::BktSeeds;
use gass_trees::kdtree::KdForest;
use gass_trees::tptree::TpPartition;

/// Which auxiliary seed structure a SPTAG build uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SptagVariant {
    /// K-D-tree seeds (SPTAG-KDT).
    Kdt,
    /// Balanced-k-means-tree seeds (SPTAG-BKT).
    Bkt,
}

/// SPTAG construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SptagParams {
    /// Number of independent TP-tree divisions (overlap comes from
    /// repetition).
    pub divisions: usize,
    /// TP-tree leaf size (per-leaf exact k-NN graphs are `O(leaf²)`).
    pub leaf_size: usize,
    /// Per-leaf k-NN list length.
    pub knn_k: usize,
    /// Final out-degree after RND refinement of the merged graph.
    pub max_degree: usize,
    /// Seed structure variant.
    pub variant: SptagVariant,
    /// RNG seed.
    pub seed: u64,
}

impl SptagParams {
    /// Small-scale defaults for the given variant.
    pub fn small(variant: SptagVariant) -> Self {
        // The reference SPTAG builds dozens of TP trees with sizeable
        // leaves and refines each partition graph — by far the most
        // expensive builder in the paper (Fig. 7). Eight divisions with
        // ~200-point leaves reproduce that cost profile at our tiers.
        Self { divisions: 8, leaf_size: 200, knn_k: 12, max_degree: 24, variant, seed: 42 }
    }
}

enum Seeder {
    Kdt(KdForest),
    Bkt(BktSeeds),
}

impl Seeder {
    fn seeds(&self, space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        match self {
            Seeder::Kdt(f) => f.seeds(space, query, count, out),
            Seeder::Bkt(b) => b.seeds(space, query, count, out),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Seeder::Kdt(f) => f.heap_bytes(),
            Seeder::Bkt(b) => b.heap_bytes(),
        }
    }

    fn reorder(&mut self, map: &IdRemap) {
        match self {
            Seeder::Kdt(f) => f.reorder(map),
            Seeder::Bkt(b) => b.reorder(map),
        }
    }
}

/// A built SPTAG index.
pub struct SptagIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    seeder: Seeder,
    variant: SptagVariant,
    scratch: ScratchPool,
    build: BuildReport,
}

impl SptagIndex {
    /// Builds the index: repeated TP divisions → per-leaf exact k-NN →
    /// merge → RND refine → seed trees.
    pub fn build(store: VectorStore, params: SptagParams) -> Self {
        assert!(store.len() > params.leaf_size, "dataset smaller than one leaf");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let all_ids: Vec<u32> = (0..n as u32).collect();
        let (graph, seeder) = {
            let space = Space::new(&store, &counter);
            let mut merged = AdjacencyGraph::with_degree_hint(n, params.knn_k * 2);
            for div in 0..params.divisions.max(1) {
                let part = TpPartition::build(
                    &store,
                    &all_ids,
                    params.leaf_size,
                    params.seed.wrapping_add(div as u64),
                );
                for leaf in part.leaves() {
                    let lists = exact_knn_subset(space, leaf, params.knn_k);
                    for (pos, list) in lists.iter().enumerate() {
                        let u = leaf[pos];
                        for nb in list {
                            merged.add_edge(u, nb.id);
                        }
                    }
                }
            }
            // RND refinement of merged neighborhoods.
            for u in 0..n as u32 {
                let scored: Vec<Neighbor> = merged
                    .neighbors(u)
                    .iter()
                    .map(|&v| Neighbor::new(v, space.dist(u, v)))
                    .collect();
                let kept = NdStrategy::Rnd.diversify(space, u, &scored, params.max_degree);
                merged.set_neighbors(u, kept.into_iter().map(|k| k.id).collect());
            }
            let seeder = match params.variant {
                SptagVariant::Kdt => {
                    Seeder::Kdt(KdForest::build(&store, 4, 16, params.seed ^ 0x4d))
                }
                SptagVariant::Bkt => {
                    Seeder::Bkt(BktSeeds::build(space, 8, 24, params.seed ^ 0xb4))
                }
            };
            (merged, seeder)
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let flat = FlatGraph::from_adjacency(&graph, Some(params.max_degree));
        Self {
            store,
            graph: flat,
            seeder,
            variant: params.variant,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The merged, refined graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl AnnIndex for SptagIndex {
    fn name(&self) -> String {
        match self.variant {
            SptagVariant::Kdt => "SPTAG-KDT".to_string(),
            SptagVariant::Bkt => "SPTAG-BKT".to_string(),
        }
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeder.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeder.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.seeder.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    fn recall(idx: &SptagIndex, base: &VectorStore, queries: &VectorStore) -> f64 {
        let gt = ground_truth(base, queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 80).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        hit as f64 / (10 * gt.len()) as f64
    }

    #[test]
    fn sptag_kdt_recall() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = SptagIndex::build(base.clone(), SptagParams::small(SptagVariant::Kdt));
        let r = recall(&idx, &base, &queries);
        assert!(r > 0.85, "SPTAG-KDT recall too low: {r}");
        assert_eq!(idx.name(), "SPTAG-KDT");
    }

    #[test]
    fn sptag_bkt_recall() {
        let base = deep_like(500, 3);
        let queries = deep_like(15, 4);
        let idx = SptagIndex::build(base.clone(), SptagParams::small(SptagVariant::Bkt));
        let r = recall(&idx, &base, &queries);
        assert!(r > 0.85, "SPTAG-BKT recall too low: {r}");
        assert_eq!(idx.name(), "SPTAG-BKT");
    }

    #[test]
    fn more_divisions_cost_more_but_connect_more() {
        let base = deep_like(400, 5);
        let one = SptagIndex::build(
            base.clone(),
            SptagParams { divisions: 1, ..SptagParams::small(SptagVariant::Kdt) },
        );
        let four = SptagIndex::build(
            base,
            SptagParams { divisions: 4, ..SptagParams::small(SptagVariant::Kdt) },
        );
        assert!(four.build_report().dist_calcs > one.build_report().dist_calcs);
        assert!(four.stats().edges >= one.stats().edges);
    }
}
