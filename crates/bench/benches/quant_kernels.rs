//! Scalar vs SIMD code-space distance micro-benchmarks at the paper's
//! dataset dimensionalities (Glove 25/100, Deep 96, Sift 128, Gist 960),
//! mirroring `simd_kernels` for the f32 path. The dispatched kernels
//! (`l2_sq_u8`, `l2_sq_u8_batch`, `pq_scan`, `pq_scan_batch`) pick
//! AVX2/NEON at runtime; the `*_scalar` rows pin the reference the
//! dispatcher falls back to under `GASS_NO_SIMD`. The `pq_scan` rows are
//! the 16-entry LUT compare-select scan over 4-bit PQ codes (m = dim/6
//! subquantizers), the inner loop of PQ traversal.
//!
//! Inputs come from real code stores so the rows carry the padded stride
//! (SQ8) / chunked LUT layout (PQ) the serving path sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_core::quant::{
    l2_sq_u8, l2_sq_u8_batch, l2_sq_u8_batch_scalar, l2_sq_u8_scalar, pq_scan, pq_scan_batch,
    pq_scan_batch_scalar, pq_scan_scalar, PqStore,
};
use gass_core::{PreparedQuery, QuantizedStore, VectorStore};
use std::hint::black_box;

fn sample_store(dim: usize) -> (VectorStore, Vec<f32>) {
    let gen = |phase: f32| (0..dim).map(move |i| (i as f32 * 0.37 + phase).sin());
    let flat: Vec<f32> = (0..5).flat_map(|v| gen(1.0 + v as f32)).collect();
    (VectorStore::from_flat(dim, flat), gen(0.0).collect())
}

fn quantized(dim: usize) -> (QuantizedStore, PreparedQuery) {
    let (base, query) = sample_store(dim);
    let store = QuantizedStore::from_store(&base);
    let mut pq = PreparedQuery::default();
    store.prepare_into(&query, &mut pq);
    (store, pq)
}

fn pq_encoded(dim: usize) -> (PqStore, PreparedQuery) {
    let (base, query) = sample_store(dim);
    let store = PqStore::from_store(&base, None);
    let mut pq = PreparedQuery::default();
    store.prepare_into(&query, &mut pq);
    (store, pq)
}

fn bench_quant_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_kernels");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for dim in [25usize, 96, 100, 128, 960] {
        let (store, pq) = quantized(dim);
        let (u, s) = (pq.u(), pq.s());
        let row = store.code_row(0);
        let rows = [store.code_row(1), store.code_row(2), store.code_row(3), store.code_row(4)];
        group.bench_with_input(BenchmarkId::new("l2_sq_u8/simd", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_u8(black_box(u), black_box(s), black_box(row)))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq_u8/scalar", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_u8_scalar(black_box(u), black_box(s), black_box(row)))
        });
        group.bench_with_input(
            BenchmarkId::new("l2_sq_u8_batch/simd", dim),
            &dim,
            |bench, _| {
                bench.iter(|| l2_sq_u8_batch(black_box(u), black_box(s), black_box(rows)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("l2_sq_u8_batch/scalar", dim),
            &dim,
            |bench, _| {
                bench
                    .iter(|| l2_sq_u8_batch_scalar(black_box(u), black_box(s), black_box(rows)))
            },
        );

        // PQ LUT scan at the same dims (m = dim/6 subquantizers, 4-bit
        // codes): the 16-entry compare-select kernel vs its scalar
        // reference, single-row and 4-row batch.
        let (pstore, ppq) = pq_encoded(dim);
        let lut = ppq.lut();
        let prow = pstore.code_row(0);
        let prows =
            [pstore.code_row(1), pstore.code_row(2), pstore.code_row(3), pstore.code_row(4)];
        group.bench_with_input(BenchmarkId::new("pq_scan/simd", dim), &dim, |bench, _| {
            bench.iter(|| pq_scan(black_box(lut), black_box(prow)))
        });
        group.bench_with_input(BenchmarkId::new("pq_scan/scalar", dim), &dim, |bench, _| {
            bench.iter(|| pq_scan_scalar(black_box(lut), black_box(prow)))
        });
        group.bench_with_input(
            BenchmarkId::new("pq_scan_batch/simd", dim),
            &dim,
            |bench, _| bench.iter(|| pq_scan_batch(black_box(lut), black_box(prows))),
        );
        group.bench_with_input(
            BenchmarkId::new("pq_scan_batch/scalar", dim),
            &dim,
            |bench, _| bench.iter(|| pq_scan_batch_scalar(black_box(lut), black_box(prows))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quant_kernels);
criterion_main!(benches);
