//! **EFANNA** — NP-based graph with K-D-tree bootstrapping: randomized
//! truncated K-D trees supply each node's initial neighbor candidates,
//! NNDescent refines them, and the same trees provide query-time seeds
//! (the **KD** strategy).

use crate::common::BuildReport;
use crate::nndescent::KnnGraphState;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use gass_trees::kdtree::KdForest;

/// EFANNA construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EfannaParams {
    /// Neighbors kept per node.
    pub k: usize,
    /// Number of randomized K-D trees.
    pub num_trees: usize,
    /// K-D-tree leaf size.
    pub leaf_size: usize,
    /// Candidates retrieved per node from the forest for initialization.
    pub init_candidates: usize,
    /// Maximum NNDescent iterations.
    pub iters: usize,
    /// Per-node join sample size.
    pub sample: usize,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). Forest
    /// candidate retrieval and the NNDescent join distances parallelize
    /// without changing the result: the built graph is bit-identical at
    /// any thread count.
    pub threads: usize,
}

impl EfannaParams {
    /// Small-scale defaults.
    pub fn small() -> Self {
        Self {
            k: 20,
            num_trees: 4,
            leaf_size: 16,
            init_candidates: 40,
            iters: 8,
            sample: 24,
            seed: 42,
            threads: 0,
        }
    }
}

/// A built EFANNA index: refined k-NN graph + the K-D forest it was
/// bootstrapped from (reused for seed selection).
pub struct EfannaIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    forest: KdForest,
    scratch: ScratchPool,
    build: BuildReport,
}

impl EfannaIndex {
    /// Builds the index: forest → initial candidates → NNDescent.
    pub fn build(store: VectorStore, params: EfannaParams) -> Self {
        assert!(store.len() > params.k, "need more points than k");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let forest = KdForest::build(&store, params.num_trees, params.leaf_size, params.seed);
        let graph = {
            let space = Space::new(&store, &counter);
            let threads = gass_core::effective_threads(params.threads);
            // Per-node forest lookups are independent reads.
            let candidates: Vec<Vec<u32>> = gass_core::par_map(threads, store.len(), |u| {
                forest.candidates(store.get(u as u32), params.init_candidates)
            });
            let mut state = KnnGraphState::from_candidates(space, params.k, candidates);
            state.pad_random(space, params.seed ^ 0x9ad);
            state.run_with(
                space,
                params.iters,
                params.sample,
                0.002,
                params.seed ^ 0xefa,
                threads,
            );
            let mut g = AdjacencyGraph::new(store.len());
            for (u, list) in state.lists().iter().enumerate() {
                g.set_neighbors(u as u32, list.iter().map(|n| n.id).collect());
            }
            FlatGraph::from_adjacency(&g, Some(params.k))
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        Self {
            store,
            graph,
            forest,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The refined k-NN graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }

    /// The K-D forest (EFANNA's base structure; NSG and SSG reuse it).
    pub fn forest(&self) -> &KdForest {
        &self.forest
    }

    /// Consumes the index, handing the pieces to a derived method (NSG and
    /// SSG both take "an EFANNA graph" as their base).
    pub fn into_parts(self) -> (VectorStore, FlatGraph, KdForest, BuildReport) {
        (self.store, self.graph, self.forest, self.build)
    }
}

impl AnnIndex for EfannaIndex {
    fn name(&self) -> String {
        "EFANNA".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.forest.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.forest.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.forest.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn efanna_recall_with_kd_seeds() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = EfannaIndex::build(base.clone(), EfannaParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 80).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.85, "EFANNA recall too low: {recall}");
    }

    #[test]
    fn kd_bootstrap_beats_random_initialization() {
        // EFANNA's pitch: tree-based initialization starts NNDescent from
        // a far better graph than a random start. Compare the *initial*
        // graph recall of the two bootstraps (before any refinement).
        use crate::nndescent::KnnGraphState;
        let base = deep_like(400, 3);
        let forest = gass_trees::kdtree::KdForest::build(&base, 4, 16, 42);
        let counter = DistCounter::new();
        let space = Space::new(&base, &counter);
        let candidates: Vec<Vec<u32>> =
            (0..400u32).map(|u| forest.candidates(base.get(u), 40)).collect();
        let kd_init = KnnGraphState::from_candidates(space, 10, candidates);
        let rand_init = KnnGraphState::random_init(space, 10, 7);
        let kd_recall = kd_init.graph_recall(space);
        let rand_recall = rand_init.graph_recall(space);
        assert!(
            kd_recall > rand_recall + 0.3,
            "KD bootstrap ({kd_recall}) should far exceed random init ({rand_recall})"
        );
    }

    #[test]
    fn stats_include_forest_bytes() {
        let base = deep_like(150, 5);
        let idx = EfannaIndex::build(base, EfannaParams::small());
        assert!(idx.stats().aux_bytes > 0, "forest must be accounted");
        assert_eq!(idx.name(), "EFANNA");
    }
}
