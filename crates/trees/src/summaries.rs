//! Classic data-series summarizations surveyed in the paper's Section 2 —
//! PAA and SAX — with their lower-bounding distances.
//!
//! These are the ancestors of the EAPCA summarization ELPIS builds on
//! (PAA keeps per-segment means; EAPCA adds standard deviations; SAX
//! quantizes PAA into symbols). Provided as substrates for summarization
//! experiments and for composing new DC-style methods; each carries its
//! standard lower-bounding distance so pruning stays admissible.

use gass_core::store::VectorStore;

/// Piecewise Aggregate Approximation: per-segment means over equal-length
/// segments (remainder absorbed by the last one).
#[derive(Clone, Debug, PartialEq)]
pub struct Paa {
    /// One mean per segment.
    pub means: Vec<f32>,
    /// Original dimensionality (needed by the lower bound).
    pub dim: usize,
}

/// Computes the PAA of `v` with `segments` segments.
///
/// # Panics
/// Panics if `segments == 0` or exceeds `v.len()`.
pub fn paa(v: &[f32], segments: usize) -> Paa {
    assert!(segments > 0 && segments <= v.len(), "invalid segment count");
    let base = v.len() / segments;
    let mut means = Vec::with_capacity(segments);
    for s in 0..segments {
        let start = s * base;
        let end = if s + 1 == segments { v.len() } else { start + base };
        let seg = &v[start..end];
        means.push(seg.iter().sum::<f32>() / seg.len() as f32);
    }
    Paa { means, dim: v.len() }
}

/// Squared PAA lower bound: `Σ len_seg · (Δmean)² ≤ ‖a − b‖²`
/// (Cauchy–Schwarz per segment).
pub fn paa_lower_bound(a: &Paa, b: &Paa) -> f32 {
    assert_eq!(a.means.len(), b.means.len(), "segment mismatch");
    assert_eq!(a.dim, b.dim, "dimension mismatch");
    let segments = a.means.len();
    let base = a.dim / segments;
    let mut lb = 0.0f32;
    for s in 0..segments {
        let len = if s + 1 == segments { a.dim - base * (segments - 1) } else { base };
        let d = a.means[s] - b.means[s];
        lb += len as f32 * d * d;
    }
    lb
}

/// Breakpoints dividing the standard normal into `a` equiprobable regions
/// (SAX's alphabet), for alphabet sizes 2..=8 (the common range).
fn sax_breakpoints(alphabet: usize) -> &'static [f32] {
    match alphabet {
        2 => &[0.0],
        3 => &[-0.43, 0.43],
        4 => &[-0.67, 0.0, 0.67],
        5 => &[-0.84, -0.25, 0.25, 0.84],
        6 => &[-0.97, -0.43, 0.0, 0.43, 0.97],
        7 => &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
        8 => &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
        _ => panic!("SAX alphabet must be between 2 and 8"),
    }
}

/// Symbolic Aggregate Approximation: PAA means quantized into an
/// equiprobable-normal alphabet.
#[derive(Clone, Debug, PartialEq)]
pub struct Sax {
    /// One symbol (0-based) per segment.
    pub symbols: Vec<u8>,
    /// Alphabet size.
    pub alphabet: usize,
    /// Original dimensionality.
    pub dim: usize,
}

/// Computes the SAX word of `v` (via PAA) with the given segment count
/// and alphabet size (2–8). Input is assumed z-normalized, per SAX's
/// contract.
pub fn sax(v: &[f32], segments: usize, alphabet: usize) -> Sax {
    let p = paa(v, segments);
    let bps = sax_breakpoints(alphabet);
    let symbols =
        p.means.iter().map(|&m| bps.iter().take_while(|&&b| m >= b).count() as u8).collect();
    Sax { symbols, alphabet, dim: v.len() }
}

/// MINDIST: the classic SAX lower bound between two words (squared). Two
/// symbols one apart contribute zero; farther symbols contribute the gap
/// between the nearer breakpoints.
pub fn sax_mindist_sq(a: &Sax, b: &Sax) -> f32 {
    assert_eq!(a.symbols.len(), b.symbols.len(), "segment mismatch");
    assert_eq!(a.alphabet, b.alphabet, "alphabet mismatch");
    assert_eq!(a.dim, b.dim, "dimension mismatch");
    let bps = sax_breakpoints(a.alphabet);
    let segments = a.symbols.len();
    let len = a.dim as f32 / segments as f32;
    let mut acc = 0.0f32;
    for (&sa, &sb) in a.symbols.iter().zip(&b.symbols) {
        let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
        if hi - lo >= 2 {
            let d = bps[hi as usize - 1] - bps[lo as usize];
            acc += len * d * d;
        }
    }
    acc
}

/// Summarizes every vector of a store with PAA (row-major convenience).
pub fn paa_store(store: &VectorStore, segments: usize) -> Vec<Paa> {
    store.iter().map(|(_, v)| paa(v, segments)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eapca;
    use gass_core::l2_sq;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn paa_of_constant_segments() {
        let p = paa(&[1.0, 1.0, 2.0, 2.0, 3.0, 3.0], 3);
        assert_eq!(p.means, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn paa_lower_bound_is_admissible() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..300 {
            let a: Vec<f32> = (0..24).map(|_| rng.random_range(-2.0..2.0f32)).collect();
            let b: Vec<f32> = (0..24).map(|_| rng.random_range(-2.0..2.0f32)).collect();
            for segs in [1usize, 3, 6, 24] {
                let lb = paa_lower_bound(&paa(&a, segs), &paa(&b, segs));
                let exact = l2_sq(&a, &b);
                assert!(lb <= exact + 1e-3, "PAA lb {lb} > exact {exact} at {segs} segs");
            }
        }
    }

    #[test]
    fn paa_bound_never_beats_eapca_bound() {
        // EAPCA adds std terms on top of PAA's mean terms, so its bound
        // dominates PAA's (both admissible).
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let a: Vec<f32> = (0..16).map(|_| rng.random_range(-2.0..2.0f32)).collect();
            let b: Vec<f32> = (0..16).map(|_| rng.random_range(-2.0..2.0f32)).collect();
            let p = paa_lower_bound(&paa(&a, 4), &paa(&b, 4));
            let lens = [4usize, 4, 4, 4];
            let e = eapca::lower_bound_pair(
                &eapca::summarize(&a, 4),
                &eapca::summarize(&b, 4),
                &lens,
            );
            assert!(e + 1e-4 >= p, "EAPCA {e} should dominate PAA {p}");
        }
    }

    #[test]
    fn sax_symbols_are_ordered() {
        // Increasing values map to non-decreasing symbols.
        let v = [-2.0f32, -0.5, 0.0, 0.5, 2.0];
        let s = sax(&v, 5, 4);
        for w in s.symbols.windows(2) {
            assert!(w[0] <= w[1], "symbols out of order: {:?}", s.symbols);
        }
        assert_eq!(s.symbols[0], 0);
        assert_eq!(*s.symbols.last().unwrap() as usize, 3);
    }

    #[test]
    fn sax_mindist_is_admissible_on_znormalized_series() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut a: Vec<f32> = (0..32).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            let mut b: Vec<f32> = (0..32).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            gass_data::synth::znormalize(&mut a);
            gass_data::synth::znormalize(&mut b);
            for alpha in [3usize, 5, 8] {
                let lb = sax_mindist_sq(&sax(&a, 8, alpha), &sax(&b, 8, alpha));
                let exact = l2_sq(&a, &b);
                assert!(
                    lb <= exact + 1e-3,
                    "SAX mindist {lb} > exact {exact} at alphabet {alpha}"
                );
            }
        }
    }

    #[test]
    fn adjacent_symbols_contribute_zero() {
        let a = Sax { symbols: vec![2, 3], alphabet: 4, dim: 8 };
        let b = Sax { symbols: vec![3, 2], alphabet: 4, dim: 8 };
        assert_eq!(sax_mindist_sq(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "alphabet must be between")]
    fn oversized_alphabet_rejected() {
        let _ = sax(&[0.0; 8], 2, 20);
    }

    #[test]
    fn paa_store_covers_all_rows() {
        let store = VectorStore::from_flat(4, vec![0.0; 12]);
        assert_eq!(paa_store(&store, 2).len(), 3);
    }
}
