//! Persistence: build once, save to disk, reload and serve — plus a
//! concurrent-throughput measurement of the reloaded index.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

use gass::prelude::*;
use gass_core::seed::RandomSeeds;
use gass_core::{load_flat_graph, load_store, save_flat_graph, save_store, PrebuiltIndex};
use gass_eval::measure_throughput;

fn main() {
    let n = 10_000;
    let base = gass::data::synth::sift_like(n, 42);
    let queries = gass::data::synth::sift_like(64, 43);

    // --- Build and save -----------------------------------------------
    let t = std::time::Instant::now();
    let index = HnswIndex::build(
        base.clone(),
        HnswParams { m: 12, ef_construction: 96, seed: 7, threads: 1 },
    );
    println!("built HNSW over {n} vectors in {:.2}s", t.elapsed().as_secs_f64());

    let dir = std::env::temp_dir().join("gass_persistence_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let store_path = dir.join("sift_like.store.gass");
    let graph_path = dir.join("sift_like.hnsw.gass");
    save_store(&base, &store_path).expect("save store");
    save_flat_graph(index.base_graph(), &graph_path).expect("save graph");
    println!(
        "saved: {} ({} bytes) + {} ({} bytes)",
        store_path.display(),
        std::fs::metadata(&store_path).unwrap().len(),
        graph_path.display(),
        std::fs::metadata(&graph_path).unwrap().len(),
    );

    // --- Reload and serve ----------------------------------------------
    let t = std::time::Instant::now();
    let store = load_store(&store_path).expect("load store");
    let graph = load_flat_graph(&graph_path).expect("load graph");
    let served = PrebuiltIndex::new(
        store,
        graph,
        Box::new(RandomSeeds::new(n, 1)),
        "HNSW(base, reloaded)",
    );
    println!("reloaded in {:.3}s\n", t.elapsed().as_secs_f64());

    // Reloaded answers must match the live index on its base layer.
    let counter = DistCounter::new();
    let params = QueryParams::new(10, 80).with_seed_count(16);
    let live = index.search(queries.get(0), &params, &counter);
    let reloaded = served.search(queries.get(0), &params, &counter);
    println!(
        "query 0: live top-1 = {} | reloaded top-1 = {} (dist {:.4} vs {:.4})",
        live.neighbors[0].id,
        reloaded.neighbors[0].id,
        live.neighbors[0].dist.sqrt(),
        reloaded.neighbors[0].dist.sqrt()
    );

    // --- Concurrent throughput on the reloaded index --------------------
    for threads in [1usize, 4, 8] {
        let rep = measure_throughput(&served, &queries, &params, threads, 4);
        println!(
            "threads={threads:<2} qps={:>9.0}  p50={:>7.1}us p95={:>7.1}us p99={:>7.1}us",
            rep.qps, rep.p50_us, rep.p95_us, rep.p99_us
        );
    }
}
