//! Table 3: the comparative-analysis grid — per method, a Good/Medium/Bad
//! grade on query efficiency, accuracy, query tuning burden, indexing
//! efficiency, indexing footprint, and indexing tuning burden.
//!
//! Efficiency/accuracy/footprint grades are computed from live
//! measurements at one tier (tercile thresholds across methods); the
//! tuning-burden columns are structural (number of user-facing knobs in
//! each method's parameter struct), which is how the paper assesses them.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin table3_summary
//! ```

use gass_bench::{num_queries, results_dir, tiers};
use gass_data::DatasetKind;
use gass_eval::{cost_to_reach, evaluate_at, Table};
use gass_graphs::{build_method, MethodKind};

fn grade(rank: usize, total: usize) -> &'static str {
    if rank * 3 < total {
        "good"
    } else if rank * 3 < 2 * total {
        "medium"
    } else {
        "bad"
    }
}

/// Number of user-facing tuning knobs per phase (structural count from
/// each method's parameter struct; search knobs are L plus any extras
/// like nprobe).
fn knobs(kind: MethodKind) -> (usize, usize) {
    // (index knobs, search knobs)
    match kind {
        MethodKind::Hnsw => (2, 1),   // M, ef | L
        MethodKind::Nsg => (2, 1),    // R, L_build (base inherited) | L
        MethodKind::Ssg => (3, 1),    // R, pool, theta | L
        MethodKind::Vamana => (3, 1), // R, L, alpha | L
        MethodKind::Dpg => (3, 1),
        MethodKind::Efanna => (5, 2), // k, trees, leaf, cands, iters | L, seeds
        MethodKind::KGraph => (4, 2),
        MethodKind::Ngt => (4, 1),
        MethodKind::SptagKdt | MethodKind::SptagBkt => (5, 2),
        MethodKind::Elpis => (3, 2), // leaf, M, ef | L, nprobe
        MethodKind::Lshapg => (5, 2),
        MethodKind::Hcnng => (3, 1),
        MethodKind::Nsw => (2, 1),
        MethodKind::Baseline(_) => (3, 1),
    }
}

fn main() {
    let n = tiers()[0].n;
    let k = 10;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 303);
    let truth = gass_data::ground_truth(&base, &queries, k);
    let raw = base.heap_bytes();

    struct Row {
        name: String,
        q_cost: u64,
        recall: f64,
        build_s: f64,
        footprint: usize,
        knobs_idx: usize,
        knobs_q: usize,
    }

    let mut rows: Vec<Row> = Vec::new();
    for kind in MethodKind::all_sota() {
        let t = std::time::Instant::now();
        let built = build_method(kind, base.clone(), 303);
        let build_s = t.elapsed().as_secs_f64();
        let p = evaluate_at(built.index.as_ref(), &queries, &truth, k, 80, 16);
        // Query efficiency is judged at matched recall (0.95), as the
        // paper does: cheap-but-wrong methods must not look efficient.
        let at_target = cost_to_reach(
            built.index.as_ref(),
            &queries,
            &truth,
            k,
            0.95,
            &[20, 40, 80, 160, 320, 640],
            16,
        );
        let s = built.index.stats();
        let (ki, kq) = knobs(kind);
        rows.push(Row {
            name: kind.name(),
            q_cost: at_target.map_or(u64::MAX, |pt| pt.dist_calcs),
            recall: p.recall,
            build_s,
            footprint: raw + s.graph_bytes + s.aux_bytes,
            knobs_idx: ki,
            knobs_q: kq,
        });
        eprintln!("done: {}", kind.name());
    }

    // Rank-based terciles per criterion.
    let rank_of = |values: &[f64], v: f64, ascending: bool| -> usize {
        values.iter().filter(|&&x| if ascending { x < v } else { x > v }).count()
    };
    let q_costs: Vec<f64> = rows.iter().map(|r| r.q_cost as f64).collect();
    let recalls: Vec<f64> = rows.iter().map(|r| r.recall).collect();
    let builds: Vec<f64> = rows.iter().map(|r| r.build_s).collect();
    let foots: Vec<f64> = rows.iter().map(|r| r.footprint as f64).collect();
    let kis: Vec<f64> = rows.iter().map(|r| r.knobs_idx as f64).collect();
    let kqs: Vec<f64> = rows.iter().map(|r| r.knobs_q as f64).collect();
    let total = rows.len();

    let mut table = Table::new(vec![
        "method",
        "query_efficiency",
        "accuracy",
        "query_tuning",
        "index_efficiency",
        "index_footprint",
        "index_tuning",
    ]);
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            grade(rank_of(&q_costs, r.q_cost as f64, true), total).to_string(),
            grade(rank_of(&recalls, r.recall, false), total).to_string(),
            grade(rank_of(&kqs, r.knobs_q as f64, true), total).to_string(),
            grade(rank_of(&builds, r.build_s, true), total).to_string(),
            grade(rank_of(&foots, r.footprint as f64, true), total).to_string(),
            grade(rank_of(&kis, r.knobs_idx as f64, true), total).to_string(),
        ]);
    }
    table.emit(&results_dir(), "table3_summary").expect("write results");
    println!(
        "Paper's Table 3 headline: HNSW / ELPIS / Vamana good across the \
         board; EFANNA / KGraph bad across the board; SPTAG good accuracy \
         but bad indexing."
    );
}
