//! Compressed serving codecs: a ladder of code stores for bandwidth-bound
//! graph traversal, with exact `f32` rerank at the end of every search.
//!
//! Graph traversal at serving time is memory-bound: every beam step streams
//! whole vector rows through the cache hierarchy. The [`CodecStore`] trait
//! abstracts the compressed row store behind the two-phase contract every
//! codec shares — traverse on compact codes, then re-score a
//! `rerank_factor · k` candidate pool with exact `f32` distances before
//! returning (kANNolo's and Faiss's standard scheme). Three rungs:
//!
//! * [`QuantizedStore`] (**SQ8**, [`sq8`]) — per-dimension affine `u8`
//!   codes, 4× less traffic than `f32`, near-lossless traversal ranking;
//! * [`Sq4Store`] (**SQ4**, [`sq4`]) — per-dimension affine 4-bit codes,
//!   two dimensions per byte, 8× less traffic, widened SIMD unpack into
//!   the same fused asymmetric arithmetic;
//! * [`PqStore`] (**PQ**, [`pq`]) — product quantization, `m`
//!   subquantizers × 4-bit codes over k-means codebooks, distances scanned
//!   from a per-query 16-entry LUT with SIMD compare-select kernels
//!   (`vpshufb`/`tbl`-style register-resident tables).
//!
//! Every codec keeps the bit-identity discipline of [`crate::distance`]:
//! the portable scalar kernel is the reference and the AVX2/NEON backends
//! reproduce it bitwise, so `GASS_NO_SIMD` and the CI matrix legs exercise
//! the same numerics. Returned distances are always exact `f32` — the
//! codec only reorders the traversal frontier.

use crate::reorder::IdRemap;
use crate::store::VectorStore;
use std::sync::atomic::{AtomicU8, Ordering};

pub mod pq;
pub mod sq4;
pub mod sq8;

pub use pq::{
    pq_auto_m, pq_scan, pq_scan_batch, pq_scan_batch_scalar, pq_scan_scalar, PqStore,
};
pub use sq4::{l2_sq_u4, l2_sq_u4_batch, l2_sq_u4_batch_scalar, l2_sq_u4_scalar, Sq4Store};
pub use sq8::{
    l2_sq_u8, l2_sq_u8_batch, l2_sq_u8_batch_scalar, l2_sq_u8_scalar, QuantizedStore,
};

/// Codes per 64-byte cache line — the row-stride granularity shared by the
/// byte-packed codecs.
pub const LINE_U8: usize = 64;

/// One cache line of codes; the allocation unit of every packed code
/// layout. `repr(align(64))` makes any `Vec<CodeLine>`'s base pointer —
/// and hence every padded row — 64-byte aligned.
#[derive(Clone, Copy, Debug)]
#[repr(align(64))]
pub(crate) struct CodeLine(#[allow(dead_code)] pub(crate) [u8; LINE_U8]); // read via pointer casts

/// Reinterprets a line vector as its raw bytes.
///
/// Sound: `CodeLine` is `repr(align(64))` over `[u8; 64]`, fully
/// initialized, so the allocation is `len*64` valid bytes.
#[inline]
pub(crate) fn lines_as_bytes(lines: &[CodeLine]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(lines.as_ptr().cast::<u8>(), lines.len() * LINE_U8) }
}

/// Mutable view of a line vector's raw bytes (same soundness argument as
/// [`lines_as_bytes`]).
#[inline]
pub(crate) fn lines_as_bytes_mut(lines: &mut [CodeLine]) -> &mut [u8] {
    unsafe {
        std::slice::from_raw_parts_mut(lines.as_mut_ptr().cast::<u8>(), lines.len() * LINE_U8)
    }
}

/// Backing for a codec's code rows: heap cache-line units (the layout
/// every encoder produces) or a memory-mapped persisted section with the
/// identical geometry — rows `stride` bytes apart starting on a 64-byte
/// boundary — so the kernels read both through one byte view and cold
/// rows of a mapped codec fault in on demand (see [`crate::mmap`]).
#[derive(Clone, Debug)]
pub(crate) enum CodeBuf {
    /// Ordinary heap lines.
    Heap(Vec<CodeLine>),
    /// Read-only window into a mapped persisted section.
    Mapped(crate::mmap::MmapRegion),
}

impl CodeBuf {
    /// Wraps a mapped code area, validating the heap layout's geometry.
    ///
    /// # Panics
    /// Panics if the region is not 64-byte aligned or not whole lines.
    pub(crate) fn from_mapped(region: crate::mmap::MmapRegion) -> Self {
        assert!(
            (region.as_ptr() as usize).is_multiple_of(LINE_U8),
            "mapped code area must start on a cache line"
        );
        assert!(
            region.len().is_multiple_of(LINE_U8),
            "mapped code area must be whole cache lines"
        );
        CodeBuf::Mapped(region)
    }

    /// The code bytes, padding included (rows `stride` apart).
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            CodeBuf::Heap(lines) => lines_as_bytes(lines),
            CodeBuf::Mapped(region) => region,
        }
    }

    /// Heap bytes held (zero for the mapped backing, whose resident share
    /// is kernel-managed).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            CodeBuf::Heap(lines) => lines.capacity() * std::mem::size_of::<CodeLine>(),
            CodeBuf::Mapped(_) => 0,
        }
    }

    /// Appends a line; the backing must be heap (encoders only).
    #[inline]
    pub(crate) fn push(&mut self, line: CodeLine) {
        match self {
            CodeBuf::Heap(lines) => lines.push(line),
            CodeBuf::Mapped(_) => panic!("mapped code rows are read-only"),
        }
    }
}

impl From<Vec<CodeLine>> for CodeBuf {
    fn from(lines: Vec<CodeLine>) -> Self {
        CodeBuf::Heap(lines)
    }
}

// --- codec selection ----------------------------------------------------

/// Which compression rung to serve from. `Pq { m: None }` resolves `m`
/// automatically to the divisor of `dim` nearest `dim/6` (ties prefer the
/// larger `m`), the operating point the extension ladder targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecSpec {
    /// Per-dimension affine `u8` scalar quantization (1 byte/dim).
    Sq8,
    /// Per-dimension affine 4-bit scalar quantization (2 dims/byte).
    Sq4,
    /// Product quantization: `m` subquantizers × 16 k-means centroids,
    /// 4-bit codes scanned through per-query LUTs.
    Pq {
        /// Subquantizer count; must divide `dim`. `None` auto-resolves.
        m: Option<usize>,
    },
}

impl CodecSpec {
    /// Every concrete rung (PQ with auto `m`), in ladder order.
    pub const ALL: [CodecSpec; 3] = [CodecSpec::Sq8, CodecSpec::Sq4, CodecSpec::Pq { m: None }];

    /// The CLI/env name of the codec family (`sq8`, `sq4`, `pq`).
    pub const fn name(&self) -> &'static str {
        match self {
            CodecSpec::Sq8 => "sq8",
            CodecSpec::Sq4 => "sq4",
            CodecSpec::Pq { .. } => "pq",
        }
    }

    /// Encodes `store` with this codec.
    ///
    /// # Panics
    /// Panics if `store` is empty, or for [`CodecSpec::Pq`] when an
    /// explicit `m` does not divide the store's dimensionality (the CLI
    /// validates this up front to fail with a clean error instead).
    pub fn build(&self, store: &VectorStore) -> Box<dyn CodecStore> {
        match *self {
            CodecSpec::Sq8 => Box::new(QuantizedStore::from_store(store)),
            CodecSpec::Sq4 => Box::new(Sq4Store::from_store(store)),
            CodecSpec::Pq { m } => Box::new(PqStore::from_store(store, m)),
        }
    }

    /// `true` when two specs select the same codec family (ignoring
    /// whether PQ's `m` is explicit or auto-resolved).
    pub fn same_family(&self, other: &CodecSpec) -> bool {
        self.name() == other.name()
    }

    /// The concrete spec this request builds for a `dim`-dimensional
    /// store: PQ's auto `m` resolves through [`pq_auto_m`], everything
    /// else is already concrete. Two requests are idempotent on an
    /// installed codec exactly when their resolutions are equal — which is
    /// how [`crate::reorder::ServingState::quantize`] decides whether to
    /// re-encode (so `pq` followed by an explicit `--pq-m` that differs
    /// does re-encode rather than silently keeping the old geometry).
    pub fn resolve(&self, dim: usize) -> CodecSpec {
        match *self {
            CodecSpec::Pq { m } => {
                CodecSpec::Pq { m: Some(m.unwrap_or_else(|| pq_auto_m(dim))) }
            }
            other => other,
        }
    }
}

impl std::str::FromStr for CodecSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sq8" => Ok(CodecSpec::Sq8),
            "sq4" => Ok(CodecSpec::Sq4),
            "pq" => Ok(CodecSpec::Pq { m: None }),
            other => Err(format!("unknown codec {other:?} (expected sq8, sq4 or pq)")),
        }
    }
}

impl std::fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecSpec::Pq { m: Some(m) } => write!(f, "pq(m={m})"),
            other => f.write_str(other.name()),
        }
    }
}

// --- GASS_QUANT override ------------------------------------------------

// Tri-state cache so the env var is read once, lazily (same pattern as the
// SIMD/prefetch toggles in `distance`).
static QUANT_FORCED: AtomicU8 = AtomicU8::new(QF_UNINIT);
const QF_UNINIT: u8 = 0;
const QF_OFF: u8 = 1;
const QF_SQ8: u8 = 2;
const QF_SQ4: u8 = 3;
const QF_PQ: u8 = 4;

#[cold]
fn init_quant_forced() -> u8 {
    let q = match std::env::var("GASS_QUANT").as_deref() {
        Ok("sq8") => QF_SQ8,
        Ok("sq4") => QF_SQ4,
        Ok("pq") => QF_PQ,
        _ => QF_OFF,
    };
    QUANT_FORCED.store(q, Ordering::Relaxed);
    q
}

/// The codec `GASS_QUANT=sq8|sq4|pq` asks for everywhere an index is built
/// through the registry (the CI matrix legs use this to run the whole
/// suite over each compressed serving path), or `None` when unset.
pub fn quant_forced() -> Option<CodecSpec> {
    let mut q = QUANT_FORCED.load(Ordering::Relaxed);
    if q == QF_UNINIT {
        q = init_quant_forced();
    }
    match q {
        QF_SQ8 => Some(CodecSpec::Sq8),
        QF_SQ4 => Some(CodecSpec::Sq4),
        QF_PQ => Some(CodecSpec::Pq { m: None }),
        _ => None,
    }
}

// --- the codec abstraction ----------------------------------------------

/// A compressed row store serving the two-phase traversal contract: encode
/// once at quantize time, score candidates in code space during traversal
/// ([`CodecStore::dist_prepared`] / [`CodecStore::dist_prepared_batch`]
/// after a per-query [`CodecStore::prepare_into`]), and let the search
/// re-score the leading pool at full precision. Implementations must keep
/// scalar and SIMD scoring bit-identical and make [`CodecStore::permute`]
/// commute with encoding row-for-row, so graph reordering composes with
/// quantization in either order.
pub trait CodecStore: std::fmt::Debug + Send + Sync {
    /// The codec family and parameters this store was built with.
    fn spec(&self) -> CodecSpec;

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Number of encoded vectors.
    fn len(&self) -> usize;

    /// `true` when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The padded code row of vector `id` (layout is codec-specific;
    /// padding bytes are zero).
    fn code_row(&self, id: u32) -> &[u8];

    /// Prepares `query` for code-space scoring, reusing `out`'s buffers
    /// (affine codecs shift the query against the grid; PQ builds the
    /// quantized distance LUT).
    fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery);

    /// Code-space distance from a prepared query to vector `id`.
    fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32;

    /// Code-space distances to **four** vectors at once — bit-identical to
    /// four [`CodecStore::dist_prepared`] calls.
    fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4];

    /// Hints the CPU to pull vector `id`'s code row toward L1.
    /// Semantically a no-op.
    fn prefetch(&self, id: u32);

    /// Reconstructs vector `id` from its codes.
    fn decode(&self, id: u32) -> Vec<f32>;

    /// Copies the store with rows relabeled through `map`: row `u` of the
    /// result is row `map.to_old(u)` of `self`. Codec parameters (affine
    /// grids, codebooks) are row-independent, so the permuted rows are
    /// bit-identical to re-encoding the permuted vectors under the same
    /// parameters.
    fn permute(&self, map: &IdRemap) -> Box<dyn CodecStore>;

    /// Heap bytes held by the codes and codec parameters (the compressed
    /// serving path's memory cost, reported by footprint harnesses).
    fn heap_bytes(&self) -> usize;

    /// Clones into a fresh box ([`Clone`] for `Box<dyn CodecStore>`).
    fn clone_box(&self) -> Box<dyn CodecStore>;

    /// Downcast hook (persistence dispatches on the concrete codec).
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn CodecStore> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// --- the prepared query -------------------------------------------------

/// Per-query scratch for code-space scoring, reused across queries via
/// [`crate::search::SearchScratch`]. The affine codecs (SQ8/SQ4) fill
/// `u`/`s` — the query shifted against the quantization grid (`u_d = q_d −
/// min_d`, step `s_d = Δ_d`, zero-padded to the kernel span) so each
/// candidate distance is the exact squared distance to its decode,
/// `Σ_d (u_d − s_d · c_d)²`. PQ fills `lut`/`lut_scale`/`lut_bias` — the
/// per-query distance table `T[j][c]` quantized to `u8` (`T[j][c] ≈ bias_j
/// + λ · lut[j][c]` with a shared scale λ), so a code row scores as
/// `λ · Σ_j lut[j][c_j] + Σ_j bias_j` with exact integer accumulation.
#[derive(Clone, Debug, Default)]
pub struct PreparedQuery {
    pub(crate) u: Vec<f32>,
    pub(crate) s: Vec<f32>,
    pub(crate) lut: Vec<u8>,
    pub(crate) lut_scale: f32,
    pub(crate) lut_bias: f32,
}

impl PreparedQuery {
    /// The query shifted to the grid origin, `q_d − min_d`
    /// (stride-padded; affine codecs).
    #[inline]
    pub fn u(&self) -> &[f32] {
        &self.u
    }

    /// Per-dimension steps `Δ_d` (stride-padded; affine codecs).
    #[inline]
    pub fn s(&self) -> &[f32] {
        &self.s
    }

    /// The quantized PQ distance table, in the chunked compare-select
    /// layout documented in [`pq`].
    #[inline]
    pub fn lut(&self) -> &[u8] {
        &self.lut
    }

    /// Scale λ mapping summed LUT codes back to distance space.
    #[inline]
    pub fn lut_scale(&self) -> f32 {
        self.lut_scale
    }

    /// Additive bias `Σ_j min_c T[j][c]` restored after the integer scan.
    #[inline]
    pub fn lut_bias(&self) -> f32 {
        self.lut_bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_spec_parses_and_displays() {
        assert_eq!("sq8".parse::<CodecSpec>().unwrap(), CodecSpec::Sq8);
        assert_eq!("sq4".parse::<CodecSpec>().unwrap(), CodecSpec::Sq4);
        assert_eq!("pq".parse::<CodecSpec>().unwrap(), CodecSpec::Pq { m: None });
        assert!("sq2".parse::<CodecSpec>().is_err());
        assert_eq!(CodecSpec::Sq4.to_string(), "sq4");
        assert_eq!(CodecSpec::Pq { m: Some(8) }.to_string(), "pq(m=8)");
        assert!(CodecSpec::Pq { m: Some(8) }.same_family(&CodecSpec::Pq { m: None }));
        assert!(!CodecSpec::Sq8.same_family(&CodecSpec::Sq4));
    }

    #[test]
    fn resolve_pins_pq_geometry() {
        assert_eq!(CodecSpec::Sq8.resolve(96), CodecSpec::Sq8);
        assert_eq!(CodecSpec::Sq4.resolve(96), CodecSpec::Sq4);
        assert_eq!(CodecSpec::Pq { m: None }.resolve(96), CodecSpec::Pq { m: Some(16) });
        assert_eq!(CodecSpec::Pq { m: Some(48) }.resolve(96), CodecSpec::Pq { m: Some(48) });
    }

    #[test]
    fn build_dispatches_to_each_codec() {
        let store = VectorStore::from_flat(6, (0..24).map(|i| i as f32 * 0.5).collect());
        for spec in CodecSpec::ALL {
            let codec = spec.build(&store);
            assert_eq!(codec.len(), 4, "{spec}");
            assert_eq!(codec.dim(), 6, "{spec}");
            assert!(codec.spec().same_family(&spec), "{spec}");
            assert!(codec.heap_bytes() > 0, "{spec}");
            let cloned = codec.clone();
            assert_eq!(cloned.code_row(2), codec.code_row(2), "{spec}");
        }
    }
}
