//! Extension experiment (beyond the paper): the **CS** data-adaptive
//! centroid seed strategy — built for the paper's stated research
//! direction ("develop novel, lightweight SS strategies ... data-adaptive
//! seed selection") — against SN, KS and MD on the same II+RND graph, for
//! in-distribution and out-of-distribution (noisy) queries.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_adaptive_ss
//! ```

use gass_bench::{num_queries, results_dir, small_tiers};
use gass_core::distance::{DistCounter, Space};
use gass_core::index::QueryParams;
use gass_core::nd::NdStrategy;
use gass_core::seed::{MedoidSeed, RandomSeeds, SeedProvider};
use gass_data::{noisy_queries, DatasetKind};
use gass_eval::{recall_at_k, Table};
use gass_graphs::{IiGraph, IiParams, SnSeeds};
use gass_trees::CentroidSeeds;

fn main() {
    let k = 10;
    let tier = small_tiers()[1];
    let base = DatasetKind::Deep.generate_base(tier.n, 88);
    println!(
        "Extension: data-adaptive CS seeds vs SN/KS/MD, Deep{} (n={})\n",
        tier.label, tier.n
    );

    let g = IiGraph::build(
        base.clone(),
        IiParams {
            max_degree: 24,
            beam_width: 128,
            nd: NdStrategy::Rnd,
            build_seeds: 8,
            seed: 5,
            threads: 1,
        },
    );
    let setup = DistCounter::new();
    let space = Space::new(g.store(), &setup);
    let t0 = std::time::Instant::now();
    let cs = CentroidSeeds::build(space, 256, 1);
    let cs_build = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let sn = SnSeeds::build(space, 12, 48, 2);
    let sn_build = t0.elapsed().as_secs_f64();
    let md = MedoidSeed::compute(space);
    let ks = RandomSeeds::new(tier.n, 3);
    println!(
        "seed-structure build time: CS {:.2}s ({} centroids) vs SN {:.2}s\n",
        cs_build,
        cs.num_centroids(),
        sn_build
    );

    let mut table = Table::new(vec!["workload", "ss", "L", "recall", "dists_per_query"]);
    let providers: Vec<(&str, &dyn SeedProvider)> =
        vec![("CS", &cs), ("SN", &sn), ("KS", &ks), ("MD", &md)];

    let in_dist = DatasetKind::Deep.generate_base(num_queries(), 89);
    let ood = noisy_queries(&base, num_queries(), 0.05, 90);
    for (wname, queries) in [("in-distribution", &in_dist), ("noisy-5%", &ood)] {
        let truth = gass_data::ground_truth(&base, queries, k);
        for (label, provider) in &providers {
            for l in [20usize, 40, 80] {
                let counter = DistCounter::new();
                let params = QueryParams::new(k, l).with_seed_count(16);
                let mut recall = 0.0;
                for (qi, t) in truth.iter().enumerate() {
                    let res =
                        g.search_with(*provider, queries.get(qi as u32), &params, &counter);
                    recall += recall_at_k(t, &res.neighbors, k);
                }
                table.row(vec![
                    wname.to_string(),
                    label.to_string(),
                    l.to_string(),
                    format!("{:.4}", recall / truth.len() as f64),
                    (counter.get() / truth.len() as u64).to_string(),
                ]);
            }
            eprintln!("done: {wname} {label}");
        }
    }
    table.emit(&results_dir(), "ext_adaptive_ss").expect("write results");
    println!(
        "Hypothesis under test: CS reaches the same recall with fewer \
         distance calls than KS at small L (seeds land in the query's \
         density region), while costing far less to build than SN."
    );
}
