//! Extension experiment: end-to-end query throughput of the serving-path
//! optimizations — SIMD kernels, cache-aligned store, frozen CSR graph,
//! and software prefetch — against the pre-optimization path, measured in
//! the *same run* on the *same built graph*.
//!
//! The variants differ only in memory layout and kernel dispatch, never
//! in search logic, so every variant must return identical neighbors and
//! an identical `DistCounter` total; the harness asserts both. The ladder
//! is cumulative (each row enables one more optimization), ending at the
//! serving configuration the CLI defaults to.
//!
//! Acceptance shape: on the 100K tier, the full serving configuration
//! reaches >= 1.5x the baseline QPS at recall@10 >= 0.9.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_throughput
//! ```
//!
//! `GASS_SCALE` scales the dataset, `GASS_QUERIES` the query count.
//! Output: `results/ext_throughput.json`.

use gass_bench::{num_queries, results_dir, scale};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_data::DatasetKind;
use gass_eval::{measure_throughput, measure_throughput_batch, recall_at_k, write_json, Table};
use gass_graphs::{HnswIndex, HnswParams};
use serde::Serialize;

const K: usize = 10;
const ROUNDS: usize = 15;
/// Throughput repetitions per variant; the best run is kept (standard
/// benchmark practice: the minimum-interference run is the measurement,
/// everything slower is scheduler noise).
const REPS: usize = 3;

#[derive(Serialize)]
struct VariantRecord {
    variant: &'static str,
    simd: bool,
    prefetch: bool,
    csr: bool,
    aligned: bool,
    recall_at_10: f64,
    dist_calcs_total: u64,
    qps_1t: f64,
    p50_us_1t: f64,
    p99_us_1t: f64,
    qps_mt: f64,
    qps_batch_mt: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    n: usize,
    dim: usize,
    num_queries: usize,
    k: usize,
    beam_width: usize,
    rounds: usize,
    threads_mt: usize,
    host_cores: usize,
    simd_backend: &'static str,
    dist_calcs_identical: bool,
    recall_identical: bool,
    speedup_qps_1t: f64,
    speedup_qps_mt: f64,
    variants: Vec<VariantRecord>,
}

/// One deterministic, single-threaded pass over the queries in order:
/// recall@10 plus the exact distance-call total (the bit-identity probe).
fn deterministic_pass(
    index: &HnswIndex,
    queries: &gass_core::VectorStore,
    truth: &[Vec<gass_core::Neighbor>],
    params: &QueryParams,
) -> (f64, u64) {
    let counter = DistCounter::new();
    let mut recall = 0.0;
    for (qi, row) in truth.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), params, &counter);
        recall += recall_at_k(row, &res.neighbors, K);
    }
    (recall / truth.len() as f64, counter.get())
}

fn main() {
    let n = 100_000 * scale();
    let host_cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let threads_mt = host_cores.min(8);
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 333);
    let dim = base.dim();
    let truth = gass_data::ground_truth(&base, &queries, K);
    println!("Extension: serving-path throughput ladder, Deep (n={n}, dim={dim}), k={K}\n");

    eprintln!("building HNSW ({host_cores} threads)...");
    let mut index = HnswIndex::build(
        base,
        HnswParams { m: 16, ef_construction: 128, seed: 333, threads: host_cores },
    );

    // Pick the smallest swept beam width whose recall clears 0.9 on the
    // baseline path, so the ladder is measured at a paper-relevant
    // operating point.
    gass_core::set_simd_enabled(false);
    gass_core::set_prefetch_enabled(false);
    let mut beam_width = 80;
    let mut params = QueryParams::new(K, beam_width);
    for l in [80usize, 128, 192, 256] {
        params = QueryParams::new(K, l);
        let (r, _) = deterministic_pass(&index, &queries, &truth, &params);
        beam_width = l;
        if r >= 0.9 {
            break;
        }
        eprintln!("L={l}: recall {r:.4} < 0.9, widening");
    }

    // The cumulative ladder. `freeze`/`align_store` mutate the index in
    // place, so the graph (and therefore the traversal) is identical for
    // every row.
    type Upgrade = Box<dyn Fn(&mut HnswIndex)>;
    let steps: Vec<(&'static str, Upgrade)> = vec![
        ("baseline (scalar, packed, flat, no prefetch)", Box::new(|_| {})),
        ("+simd", Box::new(|_| gass_core::set_simd_enabled(true))),
        ("+prefetch", Box::new(|_| gass_core::set_prefetch_enabled(true))),
        ("+csr", Box::new(|idx| idx.freeze())),
        ("+aligned (serving)", Box::new(|idx| idx.align_store())),
    ];

    let mut table = Table::new(vec![
        "variant",
        "recall@10",
        "dist_calcs",
        "qps(1t)",
        "p50_us",
        "p99_us",
        "qps(mt)",
        "qps(batch-mt)",
    ]);
    let mut variants: Vec<VariantRecord> = Vec::new();
    let (mut simd_on, mut prefetch_on) = (false, false);
    for (i, (label, upgrade)) in steps.iter().enumerate() {
        upgrade(&mut index);
        match i {
            1 => simd_on = true,
            2 => prefetch_on = true,
            _ => {}
        }
        let (recall, dists) = deterministic_pass(&index, &queries, &truth, &params);
        let best = |threads: usize| {
            (0..REPS)
                .map(|_| measure_throughput(&index, &queries, &params, threads, ROUNDS))
                .max_by(|a, b| a.qps.total_cmp(&b.qps))
                .unwrap()
        };
        let t1 = best(1);
        let tm = best(threads_mt);
        // The explicit opt-in parallel serving mode (whole query set as
        // one batch per round) alongside the work-queue measurement.
        let tb = (0..REPS)
            .map(|_| measure_throughput_batch(&index, &queries, &params, threads_mt, ROUNDS))
            .max_by(|a, b| a.qps.total_cmp(&b.qps))
            .unwrap();
        table.row(vec![
            label.to_string(),
            format!("{recall:.4}"),
            dists.to_string(),
            format!("{:.0}", t1.qps),
            format!("{:.1}", t1.p50_us),
            format!("{:.1}", t1.p99_us),
            format!("{:.0}", tm.qps),
            format!("{:.0}", tb.qps),
        ]);
        variants.push(VariantRecord {
            variant: label,
            simd: simd_on,
            prefetch: prefetch_on,
            csr: index.is_frozen(),
            aligned: index.store().is_aligned(),
            recall_at_10: recall,
            dist_calcs_total: dists,
            qps_1t: t1.qps,
            p50_us_1t: t1.p50_us,
            p99_us_1t: t1.p99_us,
            qps_mt: tm.qps,
            qps_batch_mt: tb.qps,
        });
        eprintln!("done: {label}");
    }

    let base_rec = &variants[0];
    let serving = variants.last().unwrap();
    let dist_ok = variants.iter().all(|v| v.dist_calcs_total == base_rec.dist_calcs_total);
    let recall_ok = variants.iter().all(|v| v.recall_at_10 == base_rec.recall_at_10);
    assert!(dist_ok, "optimizations changed the DistCounter total — not layout-only");
    assert!(recall_ok, "optimizations changed recall — not layout-only");

    let record = Record {
        experiment: "ext_throughput",
        n,
        dim,
        num_queries: queries.len(),
        k: K,
        beam_width,
        rounds: ROUNDS,
        threads_mt,
        host_cores,
        simd_backend: gass_core::simd_backend(),
        dist_calcs_identical: dist_ok,
        recall_identical: recall_ok,
        speedup_qps_1t: serving.qps_1t / base_rec.qps_1t.max(1e-12),
        speedup_qps_mt: serving.qps_mt / base_rec.qps_mt.max(1e-12),
        variants,
    };

    println!("{}", table.render());
    println!(
        "serving vs baseline: {:.2}x QPS (1 thread), {:.2}x QPS ({} threads); \
         recall and distance counts identical across the ladder.",
        record.speedup_qps_1t, record.speedup_qps_mt, threads_mt
    );
    let path = write_json(&results_dir(), "ext_throughput", &record).expect("write results");
    println!("wrote {}", path.display());
}
