//! Experiment output: aligned console tables plus TSV files under
//! `results/`, so every figure harness prints the series the paper plots
//! *and* leaves a machine-readable record for EXPERIMENTS.md.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as TSV (header + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes a TSV next to the workspace's
    /// `results/` directory. Returns the written path.
    pub fn emit(&self, results_dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        println!("{}", self.render());
        fs::create_dir_all(results_dir)?;
        let path = results_dir.join(format!("{name}.tsv"));
        fs::write(&path, self.to_tsv())?;
        Ok(path)
    }
}

/// Serializes any experiment record to pretty JSON under `results/`.
pub fn write_json<T: Serialize>(
    results_dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(results_dir)?;
    let path = results_dir.join(format!("{name}.json"));
    let body = serde_json_to_string_pretty(value);
    fs::write(&path, body)?;
    Ok(path)
}

// Minimal JSON emission via serde's serializer-agnostic API, avoiding a
// serde_json dependency: we implement a small JSON `Serializer`.
fn serde_json_to_string_pretty<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    let mut ser = mini_json::Ser { out: &mut out, indent: 0 };
    value.serialize(&mut ser).expect("JSON serialization failed");
    out.push('\n');
    out
}

/// A deliberately small JSON serializer (objects, arrays, scalars) — the
/// workspace's allowed dependency list excludes `serde_json`, but the
/// experiment records are simple structures.
mod mini_json {
    use serde::ser::{self, Serialize};
    use std::fmt::Write as _;

    pub struct Ser<'a> {
        pub out: &'a mut String,
        pub indent: usize,
    }

    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}

    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    impl<'a, 'b> ser::Serializer for &'b mut Ser<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = SeqSer<'a, 'b>;
        type SerializeTuple = SeqSer<'a, 'b>;
        type SerializeTupleStruct = SeqSer<'a, 'b>;
        type SerializeTupleVariant = SeqSer<'a, 'b>;
        type SerializeMap = MapSer<'a, 'b>;
        type SerializeStruct = MapSer<'a, 'b>;
        type SerializeStructVariant = MapSer<'a, 'b>;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_i8(self, v: i8) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i16(self, v: i16) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i32(self, v: i32) -> Result<(), Error> {
            self.serialize_i64(v as i64)
        }
        fn serialize_i64(self, v: i64) -> Result<(), Error> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_u8(self, v: u8) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u16(self, v: u16) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u32(self, v: u32) -> Result<(), Error> {
            self.serialize_u64(v as u64)
        }
        fn serialize_u64(self, v: u64) -> Result<(), Error> {
            let _ = write!(self.out, "{v}");
            Ok(())
        }
        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.serialize_f64(v as f64)
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                let _ = write!(self.out, "{v}");
            } else {
                self.out.push_str("null");
            }
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.out.push_str(&escape(&v.to_string()));
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.out.push_str(&escape(v));
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            use serde::ser::SerializeSeq;
            let mut seq = self.serialize_seq(Some(v.len()))?;
            for b in v {
                seq.serialize_element(b)?;
            }
            seq.end()
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            self.serialize_str(variant)
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.out.push('{');
            self.out.push_str(&escape(variant));
            self.out.push_str(": ");
            value.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a, 'b>, Error> {
            self.out.push('[');
            Ok(SeqSer { ser: self, first: true })
        }
        fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(
            self,
            _name: &'static str,
            len: usize,
        ) -> Result<SeqSer<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            _idx: u32,
            _variant: &'static str,
            len: usize,
        ) -> Result<SeqSer<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a, 'b>, Error> {
            self.out.push('{');
            Ok(MapSer { ser: self, first: true })
        }
        fn serialize_struct(
            self,
            _name: &'static str,
            len: usize,
        ) -> Result<MapSer<'a, 'b>, Error> {
            self.serialize_map(Some(len))
        }
        fn serialize_struct_variant(
            self,
            _name: &'static str,
            _idx: u32,
            _variant: &'static str,
            len: usize,
        ) -> Result<MapSer<'a, 'b>, Error> {
            self.serialize_map(Some(len))
        }
    }

    pub struct SeqSer<'a, 'b> {
        ser: &'b mut Ser<'a>,
        first: bool,
    }

    impl<'a, 'b> ser::SerializeSeq for SeqSer<'a, 'b> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            if !self.first {
                self.ser.out.push_str(", ");
            }
            self.first = false;
            value.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push(']');
            Ok(())
        }
    }

    macro_rules! seq_like {
        ($trait_:ident, $fn_:ident) => {
            impl<'a, 'b> ser::$trait_ for SeqSer<'a, 'b> {
                type Ok = ();
                type Error = Error;
                fn $fn_<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
                    if !self.first {
                        self.ser.out.push_str(", ");
                    }
                    self.first = false;
                    value.serialize(&mut *self.ser)
                }
                fn end(self) -> Result<(), Error> {
                    self.ser.out.push(']');
                    Ok(())
                }
            }
        };
    }
    seq_like!(SerializeTuple, serialize_element);
    seq_like!(SerializeTupleStruct, serialize_field);
    seq_like!(SerializeTupleVariant, serialize_field);

    pub struct MapSer<'a, 'b> {
        ser: &'b mut Ser<'a>,
        first: bool,
    }

    impl<'a, 'b> ser::SerializeMap for MapSer<'a, 'b> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
            if !self.first {
                self.ser.out.push_str(", ");
            }
            self.first = false;
            key.serialize(&mut *self.ser)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
            self.ser.out.push_str(": ");
            value.serialize(&mut *self.ser)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push('}');
            Ok(())
        }
    }

    impl<'a, 'b> ser::SerializeStruct for MapSer<'a, 'b> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            use serde::ser::SerializeMap;
            self.serialize_key(key)?;
            self.serialize_value(value)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push('}');
            Ok(())
        }
    }

    impl<'a, 'b> ser::SerializeStructVariant for MapSer<'a, 'b> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, value)
        }
        fn end(self) -> Result<(), Error> {
            self.ser.out.push('}');
            Ok(())
        }
    }
}

/// Human-friendly byte formatting (MiB with two decimals).
pub fn fmt_bytes(b: usize) -> String {
    format!("{:.2} MiB", b as f64 / (1024.0 * 1024.0))
}

/// Human-friendly large-count formatting (k/M/B suffixes).
pub fn fmt_count(c: u64) -> String {
    let c = c as f64;
    if c >= 1e9 {
        format!("{:.2}B", c / 1e9)
    } else if c >= 1e6 {
        format!("{:.2}M", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.1}k", c / 1e3)
    } else {
        format!("{c:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["method", "recall"]);
        t.row(vec!["HNSW", "0.99"]);
        t.row(vec!["SPTAG-BKT", "0.97"]);
        let s = t.render();
        assert!(s.contains("HNSW"));
        assert!(s.contains("SPTAG-BKT"));
        assert!(s.lines().count() >= 4);
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().next().unwrap(), "method\trecall");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[derive(Serialize)]
    struct Rec {
        name: String,
        recall: f64,
        sizes: Vec<u32>,
        note: Option<String>,
    }

    #[test]
    fn mini_json_emits_valid_structure() {
        let rec = Rec {
            name: "HNSW \"opt\"".into(),
            recall: 0.995,
            sizes: vec![1, 2, 3],
            note: None,
        };
        let s = super::serde_json_to_string_pretty(&rec);
        assert!(s.contains("\"name\": \"HNSW \\\"opt\\\"\""));
        assert!(s.contains("\"sizes\": [1, 2, 3]"));
        assert!(s.contains("\"note\": null"));
    }

    #[test]
    fn emit_writes_tsv() {
        let dir = std::env::temp_dir().join("gass_report_test");
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1"]);
        let path = t.emit(&dir, "unit").unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "x\n1\n");
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1500), "1.5k");
        assert_eq!(fmt_count(2_500_000), "2.50M");
        assert_eq!(fmt_count(3_000_000_000), "3.00B");
        assert!(fmt_bytes(1024 * 1024).starts_with("1.00"));
    }
}
