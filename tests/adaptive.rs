//! Property-based tests (proptest) over the adaptive-termination
//! invariants: `Fixed` (and every never-triggering adaptive
//! configuration) is bit-identical to the pre-policy search across the
//! whole quant/reorder serving ladder; recall and spent work are
//! monotone in each knob (`patience`, `eps`, `max_dists`) because a
//! terminated run's expansion sequence is a prefix of the unterminated
//! run's; a budget overshoots by at most one expansion's neighbor list;
//! and adaptive sharded probing never probes past the `nprobe` cap.

use gass_core::quant::CodecSpec;
use gass_core::sharded::{build_knn_sharded, ShardedParams};
use gass_core::{
    AdjacencyGraph, AnnIndex, BoundedMaxHeap, DistCounter, FlatGraph, Neighbor, PrebuiltIndex,
    QueryParams, ReorderStrategy, StaticSeeds, TerminationPolicy, VectorStore,
};
use proptest::prelude::*;

const DIM: usize = 6;

/// A patience/eps/budget so large the policy can never fire on these
/// graph sizes — the search must take the exact `Fixed` path.
const NEVER: usize = usize::MAX >> 1;

fn arb_store_and_graph() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<Vec<u32>>)> {
    (4usize..40).prop_flat_map(|n| {
        let points =
            prop::collection::vec(prop::collection::vec(-10.0f32..10.0, DIM..=DIM), n..=n);
        let edges = prop::collection::vec(prop::collection::vec(0..n as u32, 0..6), n..=n);
        (points, edges)
    })
}

fn assemble(points: &[Vec<f32>], edges: &[Vec<u32>]) -> (VectorStore, FlatGraph) {
    let mut store = VectorStore::new(DIM);
    for p in points {
        store.push(p);
    }
    let mut adj = AdjacencyGraph::new(points.len());
    for (u, list) in edges.iter().enumerate() {
        for &v in list {
            adj.add_edge(u as u32, v);
        }
    }
    (store, FlatGraph::from_adjacency(&adj, None))
}

/// Serves the graph with deterministic static seeds so any two runs over
/// the same data expand candidates in lockstep.
fn serve(store: &VectorStore, graph: &FlatGraph) -> PrebuiltIndex {
    let seeds: Vec<u32> = (0..store.len().min(3) as u32).collect();
    let mut index = PrebuiltIndex::new(
        store.clone(),
        graph.clone(),
        Box::new(StaticSeeds::new(seeds)),
        "prop",
    );
    index.align_store();
    index
}

fn key(ns: &[Neighbor]) -> Vec<(u32, u32)> {
    ns.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

/// One full query sweep: per-query neighbor keys plus the split distance
/// counters (the u8/f32 split catches a policy leaking into the wrong
/// lane of the quantized two-phase serving path).
fn sweep(
    index: &PrebuiltIndex,
    queries: &[Vec<f32>],
    params: &QueryParams,
) -> (Vec<Vec<(u32, u32)>>, u64, u64) {
    let counter = DistCounter::new();
    let out =
        queries.iter().map(|q| key(&index.search(q, params, &counter).neighbors)).collect();
    (out, counter.get_f32(), counter.get_u8())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Fixed` is bit-identical by construction, and so is every adaptive
    /// configuration whose trigger can never fire: same neighbor ids,
    /// same distance bits, same DistCounter totals (full-precision and
    /// quantized lanes separately), on every rung of the quant ladder and
    /// under every reordering strategy.
    #[test]
    fn never_triggering_policies_are_bit_identical_to_fixed(
        sg in arb_store_and_graph(),
        queries in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, DIM..=DIM), 1..6),
    ) {
        let (points, edges) = sg;
        let (store, graph) = assemble(&points, &edges);
        // Baseline pinned to Fixed explicitly so a GASS_TERM override in
        // the environment cannot redefine what we compare against.
        let base = QueryParams::new(3, 8)
            .with_rerank_factor(2)
            .with_term(TerminationPolicy::Fixed)
            .with_max_dists(0);
        let ladder: Vec<QueryParams> = vec![
            base.with_term(TerminationPolicy::Saturation { patience: NEVER }),
            base.with_term(TerminationPolicy::DistRatio { eps: f32::INFINITY }),
            base.with_max_dists(NEVER),
        ];
        let mut specs: Vec<Option<CodecSpec>> = vec![None];
        specs.extend(CodecSpec::ALL.into_iter().map(Some));
        for spec in specs {
            for strategy in
                std::iter::once(None).chain(ReorderStrategy::ALL.into_iter().map(Some))
            {
                let mut index = serve(&store, &graph);
                index.freeze();
                if let Some(spec) = spec {
                    index.quantize(spec);
                }
                if let Some(strategy) = strategy {
                    index.reorder(strategy);
                }
                let expected = sweep(&index, &queries, &base);
                for params in &ladder {
                    let got = sweep(&index, &queries, params);
                    prop_assert_eq!(
                        &got, &expected,
                        "quant={:?} reorder={:?} term={} max_dists={}",
                        spec, strategy, params.term, params.max_dists
                    );
                }
            }
        }
    }

    /// Relaxing any knob only lengthens the (deterministic) expansion
    /// prefix, so along each ladder both the spent work and the number of
    /// true neighbors found are non-decreasing.
    #[test]
    fn recall_and_work_are_monotone_in_every_knob(
        sg in arb_store_and_graph(),
        query in prop::collection::vec(-10.0f32..10.0, DIM..=DIM),
    ) {
        let (points, edges) = sg;
        let (store, graph) = assemble(&points, &edges);
        let mut index = serve(&store, &graph);
        index.freeze();
        let k = 4;
        // Exact top-k bound: a returned neighbor is "true" when it is at
        // least as close as the exact k-th distance (ties included).
        let mut exact = BoundedMaxHeap::new(k);
        for (id, p) in points.iter().enumerate() {
            let d: f32 =
                p.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum();
            exact.push(Neighbor::new(id as u32, d));
        }
        let true_kth = exact.into_sorted().last().map_or(f32::INFINITY, |n| n.dist);
        let base = QueryParams::new(k, 12)
            .with_term(TerminationPolicy::Fixed)
            .with_max_dists(0);
        let run = |params: &QueryParams| {
            let counter = DistCounter::new();
            let res = index.search(&query, params, &counter);
            let good = res.neighbors.iter().filter(|n| n.dist <= true_kth).count();
            (good, counter.get())
        };
        let ladders: [Vec<QueryParams>; 3] = [
            [1usize, 2, 4, 8, NEVER]
                .iter()
                .map(|&p| base.with_term(TerminationPolicy::Saturation { patience: p }))
                .collect(),
            [0.0f32, 0.1, 0.5, 2.0, f32::INFINITY]
                .iter()
                .map(|&e| base.with_term(TerminationPolicy::DistRatio { eps: e }))
                .collect(),
            [4usize, 16, 64, 256, NEVER]
                .iter()
                .map(|&d| base.with_max_dists(d))
                .collect(),
        ];
        for ladder in &ladders {
            let mut prev = (0usize, 0u64);
            for params in ladder {
                let got = run(params);
                prop_assert!(
                    got.0 >= prev.0 && got.1 >= prev.1,
                    "non-monotone at term={} max_dists={}: {:?} after {:?}",
                    params.term, params.max_dists, got, prev
                );
                prev = got;
            }
            // The fully-relaxed end of each ladder is exactly Fixed.
            prop_assert_eq!(run(ladder.last().unwrap()), run(&base));
        }
    }

    /// The budget is emission-time: the traversal stops at the first
    /// expansion that finds the budget spent, so it overshoots by at most
    /// the seed evaluations plus one neighbor list (degree is capped at 6
    /// by construction here).
    #[test]
    fn budget_overshoots_by_at_most_one_expansion(
        sg in arb_store_and_graph(),
        query in prop::collection::vec(-10.0f32..10.0, DIM..=DIM),
        max_dists in 1usize..120,
    ) {
        let (points, edges) = sg;
        let (store, graph) = assemble(&points, &edges);
        let mut index = serve(&store, &graph);
        index.freeze();
        let params = QueryParams::new(3, 16)
            .with_term(TerminationPolicy::Fixed)
            .with_max_dists(max_dists);
        let counter = DistCounter::new();
        let res = index.search(&query, &params, &counter);
        prop_assert!(!res.neighbors.is_empty());
        let seeds = store.len().min(3);
        prop_assert!(
            counter.get() as usize <= max_dists.max(seeds) + 6,
            "budget {} overshot: {} evaluations", max_dists, counter.get()
        );
    }

    /// Adaptive sharded probing: `nprobe` becomes a cap — a
    /// never-triggering policy probes exactly `nprobe` shards and answers
    /// bit-identically to the fixed plan; an aggressive policy never
    /// probes past the cap and never beats the full probe's k-th
    /// distance.
    #[test]
    fn adaptive_sharded_probing_respects_the_nprobe_cap(
        points in prop::collection::vec(
            prop::collection::vec(-8.0f32..8.0, 5..=5), 24..=80),
        shards in 2usize..5,
        query in prop::collection::vec(-8.0f32..8.0, 5..=5),
    ) {
        let mut store = VectorStore::new(5);
        for p in &points {
            store.push(p);
        }
        let counter = DistCounter::new();
        let idx = build_knn_sharded(&store, &ShardedParams::new(shards), 8, &counter);
        idx.set_nprobe(idx.num_shards());
        let base = QueryParams::new(5, 20)
            .with_term(TerminationPolicy::Fixed)
            .with_max_dists(0);

        let c_fixed = DistCounter::new();
        let (fixed, fixed_probes) = idx.search_with_probes(&query, &base, &c_fixed);
        prop_assert_eq!(fixed_probes, idx.num_shards());

        let never = base.with_term(TerminationPolicy::Saturation { patience: NEVER });
        let c_never = DistCounter::new();
        let (got, probes) = idx.search_with_probes(&query, &never, &c_never);
        prop_assert_eq!(probes, idx.num_shards());
        prop_assert_eq!(key(&got.neighbors), key(&fixed.neighbors));
        prop_assert_eq!(
            (c_never.get_f32(), c_never.get_u8()),
            (c_fixed.get_f32(), c_fixed.get_u8())
        );

        for aggressive in [
            base.with_term(TerminationPolicy::Saturation { patience: 1 }),
            base.with_term(TerminationPolicy::DistRatio { eps: 0.0 }),
            base.with_max_dists(8),
        ] {
            let (res, probes) = idx.search_with_probes(&query, &aggressive, &counter);
            prop_assert!(probes >= 1 && probes <= idx.num_shards());
            let full_kth =
                fixed.neighbors.last().map_or(f32::INFINITY, |n| n.dist);
            if let Some(last) = res.neighbors.last() {
                prop_assert!(last.dist >= full_kth || res.neighbors.len() < 5);
            }
        }
    }
}
