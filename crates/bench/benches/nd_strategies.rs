//! Diversification micro-benchmarks: cost of pruning a 100-candidate list
//! under each ND strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_core::distance::{DistCounter, Space};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_data::synth::deep_like;
use std::hint::black_box;

fn bench_nd(c: &mut Criterion) {
    let base = deep_like(2_000, 1);
    let counter = DistCounter::new();
    let space = Space::new(&base, &counter);
    let cands: Vec<Neighbor> = gass_data::exact_knn(&base, base.get(0), 101)
        .into_iter()
        .filter(|n| n.id != 0)
        .take(100)
        .collect();

    let mut group = c.benchmark_group("nd_diversify_100");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for nd in [
        NdStrategy::NoNd,
        NdStrategy::Rnd,
        NdStrategy::rrnd_default(),
        NdStrategy::mond_default(),
    ] {
        group.bench_with_input(BenchmarkId::new("strategy", nd.label()), &nd, |b, nd| {
            b.iter(|| black_box(nd.diversify(space, 0, &cands, 32)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nd);
criterion_main!(benches);
