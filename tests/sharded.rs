//! Integration tests for the sharded serving structure: the IVF-on-top-
//! of-graphs observational contract (`nprobe = shards` is exactly the
//! merged union of all per-shard searches), byte-stable persist
//! round-trips, and heap/mapped observational equivalence at the index
//! level.

use gass_core::fanout::{set_fanout_enabled, set_fanout_workers};
use gass_core::mmap::set_mmap_enabled;
use gass_core::quant::CodecSpec;
use gass_core::sharded::{build_knn_sharded, ShardedIndex, ShardedParams};
use gass_core::{
    AnnIndex, BoundedMaxHeap, DistCounter, Neighbor, QueryParams, TerminationPolicy,
    VectorStore,
};
use proptest::prelude::*;

fn store_of(points: &[Vec<f32>]) -> VectorStore {
    let mut s = VectorStore::new(points[0].len());
    for p in points {
        s.push(p);
    }
    s
}

fn key(ns: &[Neighbor]) -> Vec<(u32, u32)> {
    ns.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract, property-tested: with `nprobe = shards`,
    /// routing adds nothing — the sharded answer is *observationally
    /// identical* (ids and bit-exact distances) to brute-force merging
    /// every shard's own search through one bounded heap.
    #[test]
    fn full_probe_is_exactly_the_merged_union_of_per_shard_searches(
        points in prop::collection::vec(
            prop::collection::vec(-8.0f32..8.0, 6..=6), 24..=96),
        shards in 2usize..5,
        k in 1usize..8,
        query in prop::collection::vec(-8.0f32..8.0, 6..=6),
    ) {
        let store = store_of(&points);
        let counter = DistCounter::new();
        let idx = build_knn_sharded(&store, &ShardedParams::new(shards), 8, &counter);
        idx.set_nprobe(idx.num_shards());
        // Pinned Fixed: an adaptive policy (e.g. a GASS_TERM override)
        // governs *routing* only — probed shards always search Fixed —
        // so the manual per-shard loop must run Fixed to match.
        let params = QueryParams::new(k, 24).with_term(TerminationPolicy::Fixed);
        let got = idx.search(&query, &params, &counter);

        let mut heap = BoundedMaxHeap::new(k);
        for s in 0..idx.num_shards() {
            let res = idx.shard(s).search(&query, &params, &counter);
            for n in res.neighbors {
                heap.push(Neighbor::new(idx.shard_ids(s)[n.id as usize], n.dist));
            }
        }
        prop_assert_eq!(key(&got.neighbors), key(&heap.into_sorted()));
    }

    /// The fan-out determinism contract: at every worker count (1 = the
    /// degenerate pool, 2, 8 = more executors than probes) and every
    /// nprobe from 1 to shards — including the `nprobe = shards`
    /// brute-force-merge invariant the first property pins down — the
    /// fanned-out search returns the same neighbors, the same distance
    /// bits, and the same DistCounter totals (full-precision and
    /// quantized lanes separately) as the sequential probe loop.
    #[test]
    fn fanout_is_bit_identical_to_sequential_at_any_worker_count(
        points in prop::collection::vec(
            prop::collection::vec(-8.0f32..8.0, 6..=6), 24..=80),
        shards in 2usize..5,
        k in 1usize..8,
        query in prop::collection::vec(-8.0f32..8.0, 6..=6),
    ) {
        let store = store_of(&points);
        let counter = DistCounter::new();
        let idx = build_knn_sharded(&store, &ShardedParams::new(shards), 8, &counter);
        let params = QueryParams::new(k, 24);
        for nprobe in 1..=idx.num_shards() {
            idx.set_nprobe(nprobe);
            set_fanout_enabled(false);
            let c_seq = DistCounter::new();
            let seq = idx.search(&query, &params, &c_seq);
            for workers in [1usize, 2, 8] {
                set_fanout_enabled(true);
                set_fanout_workers(workers);
                let c_fan = DistCounter::new();
                let fan = idx.search(&query, &params, &c_fan);
                set_fanout_workers(1);
                prop_assert_eq!(
                    key(&seq.neighbors), key(&fan.neighbors),
                    "answers diverged at nprobe={} workers={}", nprobe, workers
                );
                prop_assert_eq!(
                    (c_seq.get_f32(), c_seq.get_u8()),
                    (c_fan.get_f32(), c_fan.get_u8()),
                    "distance accounting diverged at nprobe={} workers={}", nprobe, workers
                );
            }
        }
        set_fanout_enabled(true);
    }

    /// Recall is monotone in the probed set: every neighbor the
    /// `nprobe = 1` search returns within the full-probe answer's k-th
    /// distance is also in the full-probe answer (a candidate can only be
    /// displaced by strictly closer candidates).
    #[test]
    fn wider_probes_never_lose_closer_neighbors(
        points in prop::collection::vec(
            prop::collection::vec(-8.0f32..8.0, 5..=5), 30..=80),
        query in prop::collection::vec(-8.0f32..8.0, 5..=5),
    ) {
        let store = store_of(&points);
        let counter = DistCounter::new();
        let idx = build_knn_sharded(&store, &ShardedParams::new(3), 8, &counter);
        let params = QueryParams::new(5, 20);
        idx.set_nprobe(1);
        let narrow = idx.search(&query, &params, &counter);
        idx.set_nprobe(idx.num_shards());
        let full = idx.search(&query, &params, &counter);
        let bound = full.neighbors.last().map_or(f32::INFINITY, |n| n.dist);
        let full_ids: Vec<u32> = full.neighbors.iter().map(|n| n.id).collect();
        for n in narrow.neighbors.iter().filter(|n| n.dist < bound) {
            prop_assert!(
                full_ids.contains(&n.id),
                "id {} (dist {}) vanished when probing every shard", n.id, n.dist
            );
        }
    }
}

/// The sharded state round-trips byte-stably through persist, and the
/// reloaded index keeps the full-probe observational contract.
#[test]
fn sharded_persist_roundtrip_is_byte_stable_and_observationally_equal() {
    let store = gass_data::synth::deep_like(400, 17);
    let counter = DistCounter::new();
    let idx = build_knn_sharded(&store, &ShardedParams::new(4), 10, &counter);
    idx.set_nprobe(idx.num_shards());

    let dir = std::env::temp_dir().join("gass_root_sharded_rt");
    let dir2 = std::env::temp_dir().join("gass_root_sharded_rt2");
    idx.save(&dir).unwrap();
    let back = ShardedIndex::load(&dir).unwrap();
    back.save(&dir2).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        let a = std::fs::read(dir.join(&name)).unwrap();
        let b = std::fs::read(dir2.join(&name)).unwrap();
        assert_eq!(a, b, "{name:?} differs after a save/load/save cycle");
    }

    // Same shard geometry, same routing table, same full-probe merges.
    assert_eq!(back.num_shards(), idx.num_shards());
    assert_eq!(back.num_vectors(), idx.num_vectors());
    back.set_nprobe(back.num_shards());
    // Pinned Fixed so the manual per-shard merge matches the sharded
    // search even under a GASS_TERM override (probed shards run Fixed
    // regardless of the routing policy).
    let params = QueryParams::new(5, 32).with_term(TerminationPolicy::Fixed);
    let queries = gass_data::synth::deep_like(10, 91);
    for qi in 0..queries.len() as u32 {
        let q = queries.get(qi);
        let mut heap = BoundedMaxHeap::new(params.k);
        for s in 0..back.num_shards() {
            let res = back.shard(s).search(q, &params, &counter);
            for n in res.neighbors {
                heap.push(Neighbor::new(back.shard_ids(s)[n.id as usize], n.dist));
            }
        }
        let got = back.search(q, &params, &counter);
        assert_eq!(key(&got.neighbors), key(&heap.into_sorted()), "query {qi}");
    }
}

/// The fan-out contract holds through the full serving ladder and the
/// coalesced batch engine: frozen + quantized shards, searched through
/// `search_coalesced`, answer bit-identically with the probe fan-out on
/// (8 executors) and off.
#[test]
fn fanout_coalesced_ladder_matches_sequential() {
    let store = gass_data::synth::deep_like(300, 29);
    let counter = DistCounter::new();
    let mut idx = build_knn_sharded(&store, &ShardedParams::new(4).with_nprobe(2), 8, &counter);
    idx.freeze();
    idx.quantize(CodecSpec::Sq8);
    let queries = gass_data::synth::deep_like(9, 55);
    let params = QueryParams::new(5, 32);
    let qs: Vec<&[f32]> = (0..queries.len() as u32).map(|i| queries.get(i)).collect();
    set_fanout_enabled(false);
    let seq = idx.search_coalesced(&qs, &params, &counter);
    set_fanout_enabled(true);
    set_fanout_workers(8);
    let fan = idx.search_coalesced(&qs, &params, &counter);
    set_fanout_workers(1);
    for (qi, (a, b)) in seq.iter().zip(&fan).enumerate() {
        assert_eq!(key(&a.neighbors), key(&b.neighbors), "query {qi}");
    }
}

/// Mapped and heap-parsed shard stores serve bit-identical answers — the
/// observational-equivalence guarantee of the mmap tier, exercised at the
/// whole-index level across the quantization ladder.
#[test]
fn mapped_and_heap_backed_shards_serve_identically() {
    let store = gass_data::synth::deep_like(300, 23);
    let counter = DistCounter::new();
    let dir = std::env::temp_dir().join("gass_root_sharded_mmap_eq");
    build_knn_sharded(&store, &ShardedParams::new(3), 8, &counter).save(&dir).unwrap();

    let queries = gass_data::synth::deep_like(8, 77);
    let params = QueryParams::new(5, 32);
    let mut answers: Vec<Vec<Vec<(u32, u32)>>> = Vec::new();
    for mapped in [true, false] {
        set_mmap_enabled(mapped);
        let mut idx = ShardedIndex::load(&dir).unwrap();
        idx.set_nprobe(2);
        idx.freeze();
        idx.quantize(CodecSpec::Sq8);
        let per_query: Vec<Vec<(u32, u32)>> = (0..queries.len() as u32)
            .map(|qi| key(&idx.search(queries.get(qi), &params, &counter).neighbors))
            .collect();
        answers.push(per_query);
    }
    set_mmap_enabled(true);
    assert_eq!(answers[0], answers[1], "mapped and heap-backed serving disagree");
}
