//! # gass-bench
//!
//! Shared scaffolding for the experiment harnesses that regenerate every
//! table and figure of the paper (one binary per experiment under
//! `src/bin/`), plus criterion micro-benchmarks under `benches/`.
//!
//! ## Scale model
//!
//! The paper's dataset tiers (1M / 25GB / 100GB / 1B vectors) are mapped
//! to laptop-scale defaults; set the `GASS_SCALE` environment variable to
//! scale every tier multiplicatively (e.g. `GASS_SCALE=5` for a 5× larger
//! run). Every harness prints the tier it actually ran, so
//! `EXPERIMENTS.md` comparisons are explicit about scale.

#![warn(missing_docs)]
#![warn(clippy::all)]

use gass_core::distance::Space;
use gass_core::graph::GraphView;
use gass_core::neighbor::{BoundedMaxHeap, Neighbor};
use gass_core::visited::VisitedSet;
use std::path::PathBuf;

/// One dataset-size tier, named after the paper's tier it stands in for.
#[derive(Clone, Copy, Debug)]
pub struct Tier {
    /// Paper tier label ("1M", "25GB", "100GB", "1B").
    pub label: &'static str,
    /// Number of vectors at default scale.
    pub n: usize,
}

/// Scale multiplier from `GASS_SCALE` (default 1).
pub fn scale() -> usize {
    std::env::var("GASS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1).max(1)
}

/// The four tiers of the paper, at harness scale.
pub fn tiers() -> Vec<Tier> {
    let s = scale();
    vec![
        Tier { label: "1M", n: 8_000 * s },
        Tier { label: "25GB", n: 16_000 * s },
        Tier { label: "100GB", n: 32_000 * s },
        Tier { label: "1B", n: 64_000 * s },
    ]
}

/// The small/medium tiers (most per-method figures stop at 25GB for the
/// excluded methods, as in the paper).
pub fn small_tiers() -> Vec<Tier> {
    tiers().into_iter().take(2).collect()
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Number of queries per workload (paper uses 100).
pub fn num_queries() -> usize {
    std::env::var("GASS_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(40).max(1)
}

/// Row count for the file-backed mapped-tier legs (fig13/fig16): the
/// CI-scale tier size by default, or the paper-scale row count when
/// `GASS_FULL=1` (overridable with `GASS_FULL_N=<rows>` to fit local
/// disk — the serving path is identical at every size, only the page
/// population changes).
pub fn mapped_tier_n(tier: &Tier, paper_rows: usize) -> usize {
    if std::env::var("GASS_FULL").map(|v| v == "1").unwrap_or(false) {
        std::env::var("GASS_FULL_N")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(paper_rows)
            .max(1)
    } else {
        tier.n
    }
}

/// Scratch directory for the streamed mapped-tier files (override with
/// `GASS_MAPPED_DIR` to point at a disk large enough for `GASS_FULL`
/// runs).
pub fn mapped_dir() -> PathBuf {
    std::env::var("GASS_MAPPED_DIR").map(PathBuf::from).unwrap_or_else(|_| std::env::temp_dir())
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`);
/// `None` where `/proc` is unavailable. The mapped-tier harnesses print
/// it as the bounded-heap evidence: the figure ran over an on-disk tier
/// without ever holding the tier in heap.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// File-backed mapped-tier driver shared by the beyond-RAM figures
/// (13/16). Streams a Deep-analog base of `n` rows straight to disk in
/// the mapped `KIND_MSTORE` layout (peak heap: one row), keeps the
/// in-distribution tail as the query set, builds a [`ShardedIndex`] one
/// shard at a time with [`ShardedIndex::build_to_dir`] (peak heap: one
/// shard), then serves the reloaded index — per-shard vector rows
/// page-faulted from disk — across an `nprobe x beam` sweep. Emits one
/// TSV row per point and returns the table.
///
/// [`ShardedIndex`]: gass_core::ShardedIndex
/// [`ShardedIndex::build_to_dir`]: gass_core::ShardedIndex::build_to_dir
pub fn run_mapped_sharded_tier(
    figure: &str,
    tier_label: &str,
    n: usize,
    shards: usize,
    seed: u64,
) -> gass_eval::Table {
    use gass_core::distance::DistCounter;
    use gass_core::persist::MappedStoreWriter;
    use gass_core::seed::RandomSeeds;
    use gass_core::{SeedProvider, ShardedIndex, ShardedParams, VectorStore};
    use gass_graphs::{HnswIndex, HnswParams};

    let k = 10;
    let nq = num_queries();
    let dir = mapped_dir().join(format!("gass_{figure}"));
    std::fs::create_dir_all(&dir).expect("mapped-tier scratch dir");
    let base_path = dir.join("base.store.gass");

    // Stream base rows to disk; only the held-out query tail (drawn from
    // the same generator stream, so in-distribution) stays heap-resident.
    let mut queries = VectorStore::new(96);
    {
        let mut writer =
            MappedStoreWriter::create(&base_path, 96, n).expect("create mapped base");
        let mut i = 0usize;
        gass_data::synth::deep_like_rows(n + nq, seed, |row| {
            if i < n {
                writer.push_row(row).expect("stream mapped base row");
            } else {
                queries.push(row);
            }
            i += 1;
        });
        writer.finish().expect("finish mapped base");
    }
    let base_bytes = std::fs::metadata(&base_path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "{figure}: streamed {tier_label} base to {} ({:.2} GB on disk)",
        base_path.display(),
        base_bytes as f64 / 1e9
    );

    // The mapped base serves ground truth and the shard build by page
    // fault; nothing below materializes the tier in heap.
    let base = gass_core::persist::open_store(&base_path).expect("open mapped base");
    let truth = gass_data::ground_truth(&base, &queries, k);
    let counter = DistCounter::new();
    let index_dir = dir.join("sharded");
    let t0 = std::time::Instant::now();
    ShardedIndex::build_to_dir(
        &base,
        &ShardedParams::new(shards),
        &counter,
        &index_dir,
        |s, sub| {
            let built = HnswIndex::build(
                sub.clone(),
                HnswParams { m: 16, ef_construction: 128, seed: seed ^ s as u64, threads: 1 },
            );
            let seeds: Box<dyn SeedProvider> = Box::new(RandomSeeds::per_query(sub.len(), 7));
            (built.base_graph().clone(), seeds)
        },
    )
    .expect("bounded sharded build");
    drop(base);
    eprintln!(
        "{figure}: built {shards} shards one at a time in {:.0}s",
        t0.elapsed().as_secs_f64()
    );

    let idx = ShardedIndex::load(&index_dir).expect("reload mapped sharded index");
    let mut table = gass_eval::Table::new(vec![
        "dataset",
        "n",
        "method",
        "nprobe",
        "L",
        "recall",
        "dist_calcs_per_query",
        "ms_per_query",
    ]);
    for nprobe in [1usize, 2, 4, 8, 16].into_iter().filter(|&p| p <= shards) {
        idx.set_nprobe(nprobe);
        for p in gass_eval::sweep(&idx, &queries, &truth, k, &beam_sweep(), 16) {
            table.row(vec![
                format!("deep-mapped-{tier_label}"),
                n.to_string(),
                "sharded-hnsw".to_string(),
                nprobe.to_string(),
                p.beam_width.to_string(),
                format!("{:.4}", p.recall),
                (p.dist_calcs / queries.len() as u64).to_string(),
                format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
            ]);
        }
        eprintln!("done: {figure} deep-mapped-{tier_label} nprobe={nprobe}");
    }
    table.emit(&results_dir(), figure).expect("write results");
    if let Some(rss) = peak_rss_bytes() {
        eprintln!(
            "{figure}: peak RSS {:.2} GB over a {:.2} GB on-disk tier",
            rss as f64 / 1e9,
            base_bytes as f64 / 1e9
        );
    }
    if std::env::var("GASS_KEEP_MAPPED").map(|v| v == "1").unwrap_or(false) {
        eprintln!("{figure}: keeping mapped scratch at {}", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    table
}

/// The beam widths swept by the search-performance figures.
pub fn beam_sweep() -> Vec<usize> {
    vec![10, 20, 40, 80, 160, 320]
}

/// Beam-search over a graph using the *two-heap* queue of the original
/// HNSW implementation, for the implementation-impact ablation
/// (Figure 17). Functionally equivalent to the linear-buffer search; the
/// paper normalized all methods to the linear buffer and we measure what
/// that normalization costs/saves.
pub fn beam_search_two_heaps<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    visited: &mut VisitedSet,
) -> Vec<Neighbor> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    visited.resize(graph.num_nodes());
    visited.clear();
    let mut results = BoundedMaxHeap::new(beam_width.max(k));
    let mut frontier: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
    for &s in seeds {
        if (s as usize) < graph.num_nodes() && visited.insert(s) {
            let d = space.dist_to(query, s);
            let n = Neighbor::new(s, d);
            results.push(n);
            frontier.push(Reverse(n));
        }
    }
    while let Some(Reverse(cur)) = frontier.pop() {
        if cur.dist > results.bound() {
            break;
        }
        for &nb in graph.neighbors(cur.id) {
            if visited.insert(nb) {
                let d = space.dist_to(query, nb);
                let n = Neighbor::new(nb, d);
                if d < results.bound() {
                    frontier.push(Reverse(n));
                }
                results.push(n);
            }
        }
    }
    let mut out = results.into_sorted();
    out.truncate(k);
    out
}

/// Shared driver for the search-performance figures (12/13/14/16): build
/// each method on each dataset, sweep beam widths, and emit one TSV row
/// per point. Returns the table for further inspection.
pub fn run_search_figure(
    figure: &str,
    workloads: &[(gass_data::DatasetKind, usize)],
    methods: &[gass_graphs::MethodKind],
    k: usize,
    seed: u64,
) -> gass_eval::Table {
    let mut table = gass_eval::Table::new(vec![
        "dataset",
        "n",
        "method",
        "L",
        "recall",
        "dist_calcs_per_query",
        "ms_per_query",
    ]);
    for &(kind, n) in workloads {
        let (base, queries) = kind.generate(n, num_queries(), seed);
        let truth = gass_data::ground_truth(&base, &queries, k);
        for &method in methods {
            let built = gass_graphs::build_method(method, base.clone(), seed);
            for p in
                gass_eval::sweep(built.index.as_ref(), &queries, &truth, k, &beam_sweep(), 16)
            {
                table.row(vec![
                    kind.name(),
                    n.to_string(),
                    method.name(),
                    p.beam_width.to_string(),
                    format!("{:.4}", p.recall),
                    (p.dist_calcs / queries.len() as u64).to_string(),
                    format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
                ]);
            }
            eprintln!("done: {} {} {}", figure, kind.name(), method.name());
        }
    }
    table.emit(&results_dir(), figure).expect("write results");
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::graph::AdjacencyGraph;
    use gass_core::search::{beam_search, SearchScratch};
    use gass_core::store::VectorStore;

    #[test]
    fn tiers_have_expected_shape() {
        let t = tiers();
        assert_eq!(t.len(), 4);
        assert!(t[0].n < t[3].n);
        assert_eq!(small_tiers().len(), 2);
    }

    #[test]
    fn two_heap_search_matches_linear_buffer() {
        let store = VectorStore::from_flat(1, (0..50).map(|i| i as f32).collect());
        let mut g = AdjacencyGraph::new(50);
        for i in 0..49u32 {
            g.add_undirected(i, i + 1);
        }
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut visited = VisitedSet::new(50);
        let heap_res = beam_search_two_heaps(&g, space, &[33.3], &[0], 5, 16, &mut visited);
        let mut scratch = SearchScratch::new(50, 16);
        let buf_res = beam_search(&g, space, &[33.3], &[0], 5, 16, &mut scratch);
        let a: Vec<u32> = heap_res.iter().map(|n| n.id).collect();
        let b: Vec<u32> = buf_res.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(a, b);
    }
}
