//! Determinism: identical seeds produce identical indexes and identical
//! answers — the property that makes every figure harness reproducible.

use gass::prelude::*;

fn results_of(index: &dyn AnnIndex, queries: &VectorStore) -> Vec<Vec<(u32, u32)>> {
    let counter = DistCounter::new();
    // Fixed-seed KS providers make per-query seeds deterministic per
    // construction, so two identically-built indexes answer identically.
    let params = QueryParams::new(5, 48).with_seed_count(8);
    (0..queries.len() as u32)
        .map(|qi| {
            index
                .search(queries.get(qi), &params, &counter)
                .neighbors
                .iter()
                .map(|n| (n.id, n.dist.to_bits()))
                .collect()
        })
        .collect()
}

#[test]
fn hnsw_builds_are_reproducible() {
    let base = gass::data::synth::deep_like(500, 77);
    let queries = gass::data::synth::deep_like(10, 78);
    let a = HnswIndex::build(base.clone(), HnswParams::small());
    let b = HnswIndex::build(base, HnswParams::small());
    assert_eq!(a.stats().edges, b.stats().edges);
    assert_eq!(results_of(&a, &queries), results_of(&b, &queries));
}

#[test]
fn vamana_builds_are_reproducible() {
    let base = gass::data::synth::sift_like(400, 79);
    let queries = gass::data::synth::sift_like(8, 80);
    let a = VamanaIndex::build(base.clone(), VamanaParams::small());
    let b = VamanaIndex::build(base, VamanaParams::small());
    assert_eq!(a.stats().edges, b.stats().edges);
    assert_eq!(results_of(&a, &queries), results_of(&b, &queries));
}

#[test]
fn elpis_parallel_build_is_reproducible() {
    // ELPIS builds leaves on worker threads; per-leaf seeds are
    // deterministic, so the resulting structure must be too.
    let base = gass::data::synth::imagenet_like(600, 81);
    let queries = gass::data::synth::imagenet_like(8, 82);
    let a = ElpisIndex::build(base.clone(), ElpisParams::small());
    let b = ElpisIndex::build(base, ElpisParams::small());
    assert_eq!(a.num_leaves(), b.num_leaves());
    assert_eq!(a.stats().edges, b.stats().edges);
    assert_eq!(results_of(&a, &queries), results_of(&b, &queries));
}

#[test]
fn different_seeds_differ() {
    let base = gass::data::synth::deep_like(400, 90);
    let a = HnswIndex::build(base.clone(), HnswParams { seed: 1, ..HnswParams::small() });
    let b = HnswIndex::build(base, HnswParams { seed: 2, ..HnswParams::small() });
    // Level draws differ, so the hierarchies (and almost surely the
    // graphs) differ.
    assert!(
        a.stats().edges != b.stats().edges
            || a.hierarchy().layer_len(0) != b.hierarchy().layer_len(0),
        "independent seeds produced identical structures"
    );
}
