//! **HVS** — Hierarchical Voronoi Structure (Lu et al., VLDB 2021): an
//! HNSW whose hierarchical layers are replaced by a pyramid of Voronoi
//! partitions at geometrically coarsening resolution.
//!
//! The paper *describes* HVS in its survey but could not run the official
//! implementation ("excluded due to difficulties running the official
//! implementation"). We provide a faithful-in-spirit implementation so
//! the taxonomy is complete and the structure can be measured:
//!
//! * Layers are k-means codebooks whose size grows by a fixed factor per
//!   level (coarse → fine), standing in for the paper's multi-level
//!   quantization. Nodes are assigned to layers by *local density* — the
//!   original's refinement over HNSW's uniformly random level draws — by
//!   ranking points by distance to their cluster centroid: central
//!   (dense-region) points populate upper layers.
//! * Query answering descends the codebook pyramid (nearest centroid per
//!   level, counted) and seeds HNSW-style beam search on the base layer,
//!   exactly as HVS searches "similar to that of HNSW".

use crate::common::BuildReport;
use gass_core::distance::{l2_sq, DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::SearchResult;
use gass_core::search::{beam_search, beam_search_frozen, SearchScratch};
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use gass_trees::kmeans::kmeans;

/// HVS construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct HvsParams {
    /// Base-layer maximum out-degree.
    pub max_degree: usize,
    /// Construction beam width.
    pub ef_construction: usize,
    /// Codebook size of the coarsest (top) level.
    pub top_codebook: usize,
    /// Codebook growth factor per level going down (the original doubles
    /// dimensionality per level; we grow resolution instead).
    pub growth: usize,
    /// Number of pyramid levels.
    pub levels: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HvsParams {
    /// Small-scale defaults: 3 levels of 8 / 32 / 128 centroids.
    pub fn small() -> Self {
        Self {
            max_degree: 24,
            ef_construction: 96,
            top_codebook: 8,
            growth: 4,
            levels: 3,
            seed: 42,
        }
    }
}

/// One pyramid level: a codebook plus, per centroid, the id of the stored
/// vector closest to that centroid (the "representative" used as a seed
/// candidate).
struct Level {
    centroids: Vec<Vec<f32>>,
    representatives: Vec<u32>,
}

impl Level {
    fn heap_bytes(&self) -> usize {
        self.centroids.iter().map(|c| c.capacity() * std::mem::size_of::<f32>()).sum::<usize>()
            + self.representatives.capacity() * std::mem::size_of::<u32>()
    }
}

/// The Voronoi pyramid, usable as a standalone seed provider.
pub struct VoronoiPyramid {
    levels: Vec<Level>, // coarse -> fine
}

impl VoronoiPyramid {
    /// Builds the pyramid over the full store (clustering cost counted).
    pub fn build(space: Space<'_>, params: &HvsParams, seed: u64) -> Self {
        let n = space.len();
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut levels = Vec::with_capacity(params.levels);
        let mut size = params.top_codebook.max(1);
        for l in 0..params.levels.max(1) {
            let size_l = size.min(n);
            let clustering = kmeans(space, &ids, size_l, 5, seed.wrapping_add(l as u64));
            // Representative per centroid: the member closest to it —
            // HVS's density-aware allocation of points to upper levels.
            let mut reps = vec![u32::MAX; clustering.centroids.len()];
            let mut best = vec![f32::INFINITY; clustering.centroids.len()];
            for (pos, &c) in clustering.assignment.iter().enumerate() {
                let id = ids[pos];
                space.counter().bump();
                let d = l2_sq(space.store().get(id), &clustering.centroids[c]);
                if d < best[c] {
                    best[c] = d;
                    reps[c] = id;
                }
            }
            let mut centroids = Vec::new();
            let mut representatives = Vec::new();
            for (c, rep) in reps.into_iter().enumerate() {
                if rep != u32::MAX {
                    centroids.push(clustering.centroids[c].clone());
                    representatives.push(rep);
                }
            }
            levels.push(Level { centroids, representatives });
            size = size.saturating_mul(params.growth.max(2));
        }
        Self { levels }
    }

    /// Descends the pyramid: at each level, keep the centroid nearest to
    /// the query (counted), and return the finest level's representative.
    pub fn descend(&self, space: Space<'_>, query: &[f32]) -> Option<u32> {
        let mut rep = None;
        for level in &self.levels {
            let mut best = f32::INFINITY;
            for (c, centroid) in level.centroids.iter().enumerate() {
                space.counter().bump();
                let d = l2_sq(query, centroid);
                if d < best {
                    best = d;
                    rep = Some(level.representatives[c]);
                }
            }
        }
        rep
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.levels.iter().map(Level::heap_bytes).sum()
    }

    /// Relabels the per-centroid representatives through `map` after the
    /// store was permuted. Centroids are raw vectors, so the counted
    /// descent itself is unchanged.
    pub fn reorder(&mut self, map: &gass_core::reorder::IdRemap) {
        for level in &mut self.levels {
            for rep in &mut level.representatives {
                *rep = map.to_new(*rep);
            }
        }
    }
}

impl SeedProvider for VoronoiPyramid {
    fn seeds(&self, space: Space<'_>, query: &[f32], _count: usize, out: &mut Vec<u32>) {
        if let Some(s) = self.descend(space, query) {
            out.push(s);
        }
    }

    fn label(&self) -> &'static str {
        "HVS"
    }

    fn reorder(&mut self, map: &gass_core::reorder::IdRemap) {
        VoronoiPyramid::reorder(self, map);
    }
}

/// A built HVS index: II+RND base graph (as in HNSW's base layer) plus
/// the Voronoi pyramid for seed selection.
pub struct HvsIndex {
    store: VectorStore,
    base: FlatGraph,
    serving: ServingState,
    pyramid: VoronoiPyramid,
    scratch: ScratchPool,
    build: BuildReport,
}

impl HvsIndex {
    /// Builds the index.
    pub fn build(store: VectorStore, params: HvsParams) -> Self {
        assert!(store.len() >= 2, "need at least two vectors");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let m0 = params.max_degree;
        let (base, pyramid) = {
            let space = Space::new(&store, &counter);
            let pyramid = VoronoiPyramid::build(space, &params, params.seed ^ 0xb5);
            // Base layer: incremental insertion with RND pruning, seeded by
            // pyramid descent (HVS builds on HNSW's base layer).
            let mut base = AdjacencyGraph::with_degree_hint(n, m0 + 1);
            let mut scratch = SearchScratch::new(n, params.ef_construction);
            for id in 1..n as u32 {
                let query = store.get(id);
                // Seed only among already-inserted nodes; fall back to the
                // first node when the pyramid's pick isn't inserted yet.
                let entry = pyramid.descend(space, query).filter(|&e| e < id).unwrap_or(0);
                let res = beam_search(
                    &base,
                    space,
                    query,
                    &[entry],
                    params.ef_construction,
                    params.ef_construction,
                    &mut scratch,
                );
                let cands = if res.neighbors.is_empty() {
                    vec![gass_core::Neighbor::new(0, space.dist_to(query, 0))]
                } else {
                    res.neighbors
                };
                let kept = NdStrategy::Rnd.diversify(space, id, &cands, m0);
                base.set_neighbors(id, kept.iter().map(|k| k.id).collect());
                crate::common::add_reverse_edges(
                    space,
                    &mut base,
                    id,
                    &kept,
                    m0,
                    NdStrategy::Rnd,
                );
            }
            (FlatGraph::from_adjacency(&base, Some(m0)), pyramid)
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        Self {
            store,
            base,
            serving: ServingState::new(),
            pyramid,
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The seed pyramid.
    pub fn pyramid(&self) -> &VoronoiPyramid {
        &self.pyramid
    }
}

impl AnnIndex for HvsIndex {
    fn name(&self) -> String {
        "HVS".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.pyramid.seeds(space, query, params.seed_count, &mut seeds);
        if seeds.is_empty() {
            seeds.push(self.serving.to_new(0));
        }
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.base,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.base);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.base, &mut self.store, strategy, &[]) {
            self.pyramid.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.base.num_nodes(),
            edges: self.base.num_edges(),
            avg_degree: self.base.avg_degree(),
            max_degree: self.base.max_degree(),
            graph_bytes: self.base.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.pyramid.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn hvs_reasonable_recall() {
        let base = deep_like(600, 1);
        let queries = deep_like(15, 2);
        let idx = HvsIndex::build(base.clone(), HvsParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 80);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.85, "HVS recall too low: {recall}");
        assert_eq!(idx.name(), "HVS");
    }

    #[test]
    fn pyramid_levels_coarsen_upward() {
        let base = deep_like(500, 3);
        let counter = DistCounter::new();
        let space = Space::new(&base, &counter);
        let p = VoronoiPyramid::build(space, &HvsParams::small(), 9);
        assert_eq!(p.num_levels(), 3);
        assert!(p.heap_bytes() > 0);
        // Descent must return a valid id and count its evaluations.
        counter.reset();
        let rep = p.descend(space, base.get(7)).unwrap();
        assert!((rep as usize) < 500);
        assert!(counter.get() > 0);
    }

    #[test]
    fn pyramid_descent_lands_near_query() {
        let base = deep_like(800, 5);
        let counter = DistCounter::new();
        let space = Space::new(&base, &counter);
        let p = VoronoiPyramid::build(space, &HvsParams::small(), 11);
        let q = base.get(123).to_vec();
        let rep = p.descend(space, &q).unwrap();
        let d_rep = gass_core::l2_sq(&q, base.get(rep));
        let mut dists: Vec<f32> =
            (0..800u32).map(|v| gass_core::l2_sq(&q, base.get(v))).collect();
        dists.sort_by(f32::total_cmp);
        // Representative should be well inside the closest quartile.
        assert!(d_rep <= dists[200], "descent landed badly: {d_rep} vs {}", dists[200]);
    }
}
