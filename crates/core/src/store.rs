//! Contiguous, row-major storage for dense `f32` vectors.
//!
//! Every method in this workspace operates on a [`VectorStore`]: a single
//! allocation holding `len * dim` floats. This mirrors how the evaluated
//! C/C++ implementations lay out their data (one flat buffer, no per-vector
//! indirection) and is what makes the distance kernels in
//! [`crate::distance`] cache-friendly.

use serde::{Deserialize, Serialize};

/// Dense collection of `f32` vectors with a fixed dimensionality.
///
/// Vector `i` occupies `data[i*dim .. (i+1)*dim]`. Identifiers are `u32`
/// throughout the workspace (a deliberate size choice: adjacency lists
/// dominate index memory, and 32-bit ids halve them relative to `usize`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VectorStore {
    dim: usize,
    data: Vec<f32>,
}

impl VectorStore {
    /// Creates an empty store for vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Creates an empty store with capacity reserved for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Builds a store from a flat buffer of `n * dim` floats.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`, or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Builds a store by copying an iterator of vector rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<'a, I>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut store = Self::new(dim);
        for row in rows {
            store.push(row);
        }
        store
    }

    /// Appends one vector, returning its id.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`, or if the store already holds
    /// `u32::MAX` vectors.
    pub fn push(&mut self, v: &[f32]) -> u32 {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        let id = self.len();
        assert!(id < u32::MAX as usize, "vector store exceeds u32 id space");
        self.data.extend_from_slice(v);
        id as u32
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows vector `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn get(&self, id: u32) -> &[f32] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Mutably borrows vector `id`.
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut [f32] {
        let start = id as usize * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// Iterates over `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.data.chunks_exact(self.dim).enumerate().map(|(i, v)| (i as u32, v))
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Heap bytes held by this store (the paper's "raw data" component of
    /// every index footprint report).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Copies a subset of vectors into a new store, preserving order of
    /// `ids`. Used by divide-and-conquer methods (SPTAG, HCNNG, ELPIS) that
    /// build per-partition graphs.
    pub fn subset(&self, ids: &[u32]) -> VectorStore {
        let mut out = VectorStore::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.get(id));
        }
        out
    }

    /// Computes the exact medoid: the vector minimizing the sum of squared
    /// Euclidean distances to the dataset centroid's nearest representative.
    ///
    /// Following NSG and Vamana, the "medoid" entry point is approximated as
    /// the vector closest to the dataset centroid — an `O(n·d)` computation
    /// rather than the `O(n²·d)` true medoid.
    pub fn centroid_medoid(&self) -> u32 {
        assert!(!self.is_empty(), "medoid of empty store");
        let mut centroid = vec![0.0f64; self.dim];
        for (_, v) in self.iter() {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += *x as f64;
            }
        }
        let n = self.len() as f64;
        for c in &mut centroid {
            *c /= n;
        }
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (id, v) in self.iter() {
            let mut d = 0.0f64;
            for (c, x) in centroid.iter().zip(v) {
                let diff = c - *x as f64;
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = id;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut s = VectorStore::new(3);
        assert!(s.is_empty());
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_flat_splits_rows() {
        let s = VectorStore::from_flat(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = VectorStore::from_flat(3, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_rejects_wrong_dim() {
        let mut s = VectorStore::new(3);
        s.push(&[1.0]);
    }

    #[test]
    fn iter_yields_all_rows() {
        let s = VectorStore::from_flat(1, vec![9.0, 8.0, 7.0]);
        let rows: Vec<_> = s.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], (2, &[7.0][..]));
    }

    #[test]
    fn subset_preserves_order() {
        let s = VectorStore::from_flat(1, vec![0.0, 10.0, 20.0, 30.0]);
        let sub = s.subset(&[3, 1]);
        assert_eq!(sub.get(0), &[30.0]);
        assert_eq!(sub.get(1), &[10.0]);
    }

    #[test]
    fn centroid_medoid_picks_central_point() {
        // Points on a line: 0, 1, 2, 100. Centroid ~ 25.75, closest is 2.
        let s = VectorStore::from_flat(1, vec![0.0, 1.0, 2.0, 100.0]);
        assert_eq!(s.centroid_medoid(), 2);
    }

    #[test]
    fn from_rows_collects() {
        let rows: Vec<&[f32]> = vec![&[1.0, 0.0], &[0.0, 1.0]];
        let s = VectorStore::from_rows(2, rows);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
    }
}
