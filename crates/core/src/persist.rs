//! Binary persistence for the core structures: vector stores and frozen
//! graphs.
//!
//! Indexes at the paper's scale take hours to days to build; any usable
//! release must be able to save and reload them. The format is a simple
//! length-prefixed little-endian layout with a magic header and version
//! byte, built on the `bytes` crate:
//!
//! ```text
//! "GASS" | version:u8 | kind:u8 | payload...
//! ```
//!
//! Payloads:
//! * store — `dim:u64 | len:u64 | f32 data`
//! * flat graph — `slots:u64 | nodes:u64 | counts:u32[] | edges:u32[]`
//! * quantized store — `dim:u64 | len:u64 | mins:f32[dim] | deltas:f32[dim]
//!   | codes:u8[len*dim]` (rows packed, cache-line padding stripped; the
//!   aligned layout is rebuilt on load)
//! * permutation — `n:u64 | new_to_old:u32[n]` (the reorder placement
//!   order; the inverse table is rebuilt — and the bijection re-validated —
//!   on load)
//! * codec store — `codec:u8 | codec payload`, where the codec tag selects
//!   the body: SQ8/SQ4 reuse the quantized-store shape (`dim | len | mins |
//!   deltas | packed codes` with SQ4 rows `ceil(dim/2)` bytes), PQ is
//!   `dim:u64 | m:u64 | ncent:u64 | len:u64 | perm:u32[dim]
//!   | centroids:f32[m*16*(dim/m)] | codes:u8[len*ceil(m/2)]` (`perm` is
//!   the variance-balanced dimension deal, validated as a permutation on
//!   load). The legacy `KIND_QUANT` section remains readable and is
//!   exactly the SQ8 body.

use crate::graph::FlatGraph;
use crate::quant::{CodecStore, PqStore, QuantizedStore, Sq4Store};
use crate::reorder::IdRemap;
use crate::store::VectorStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"GASS";
const VERSION: u8 = 1;
const KIND_STORE: u8 = 1;
const KIND_FLAT_GRAPH: u8 = 2;
const KIND_QUANT: u8 = 3;
const KIND_PERM: u8 = 4;
const KIND_CODEC: u8 = 5;

const CODEC_SQ8: u8 = 1;
const CODEC_SQ4: u8 = 2;
const CODEC_PQ: u8 = 3;

/// Errors arising while decoding a persisted structure.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic header.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Payload kind did not match the requested structure.
    WrongKind {
        /// Kind byte found in the file.
        found: u8,
        /// Kind byte the caller expected.
        expected: u8,
    },
    /// Payload shorter than its own header claims.
    Truncated,
    /// A persisted permutation whose id table is not a bijection.
    NotAPermutation(String),
    /// A codec section carrying an unrecognized codec tag.
    UnknownCodec(u8),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a GASS file (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::WrongKind { found, expected } => {
                write!(f, "wrong payload kind {found} (expected {expected})")
            }
            PersistError::Truncated => write!(f, "payload truncated"),
            PersistError::NotAPermutation(why) => {
                write!(f, "invalid permutation payload: {why}")
            }
            PersistError::UnknownCodec(tag) => {
                write!(f, "unknown codec tag {tag} (expected sq8=1, sq4=2 or pq=3)")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn header(kind: u8, capacity: usize) -> BytesMut {
    let mut buf = BytesMut::with_capacity(capacity + 6);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind);
    buf
}

fn check_header(buf: &mut Bytes, expected_kind: u8) -> Result<(), PersistError> {
    if buf.remaining() < 6 {
        return Err(PersistError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let kind = buf.get_u8();
    if kind != expected_kind {
        return Err(PersistError::WrongKind { found: kind, expected: expected_kind });
    }
    Ok(())
}

/// Encodes a vector store. Rows are written packed (padding stripped), so
/// both layouts of the same vectors produce identical bytes; decoding
/// always yields the packed layout (re-align with
/// [`VectorStore::to_aligned`] if desired).
pub fn encode_store(store: &VectorStore) -> Bytes {
    let mut buf = header(KIND_STORE, 16 + store.len() * store.dim() * 4);
    buf.put_u64_le(store.dim() as u64);
    buf.put_u64_le(store.len() as u64);
    for (_, row) in store.iter() {
        for &x in row {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Decodes a vector store.
pub fn decode_store(mut buf: Bytes) -> Result<VectorStore, PersistError> {
    check_header(&mut buf, KIND_STORE)?;
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    let want = dim.checked_mul(len).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want * 4 {
        return Err(PersistError::Truncated);
    }
    let mut data = Vec::with_capacity(want);
    for _ in 0..want {
        data.push(buf.get_f32_le());
    }
    Ok(VectorStore::from_flat(dim.max(1), data))
}

/// Encodes a flat graph.
pub fn encode_flat_graph(graph: &FlatGraph) -> Bytes {
    use crate::graph::GraphView;
    let n = graph.num_nodes();
    let slots = graph.slots();
    let mut buf = header(KIND_FLAT_GRAPH, 16 + n * 4 + n * slots * 4);
    buf.put_u64_le(slots as u64);
    buf.put_u64_le(n as u64);
    for v in 0..n as u32 {
        buf.put_u32_le(graph.neighbors(v).len() as u32);
    }
    for v in 0..n as u32 {
        let ns = graph.neighbors(v);
        for &e in ns {
            buf.put_u32_le(e);
        }
        for _ in ns.len()..slots {
            buf.put_u32_le(0);
        }
    }
    buf.freeze()
}

/// Decodes a flat graph.
pub fn decode_flat_graph(mut buf: Bytes) -> Result<FlatGraph, PersistError> {
    check_header(&mut buf, KIND_FLAT_GRAPH)?;
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let slots = buf.get_u64_le() as usize;
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(PersistError::Truncated);
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(buf.get_u32_le());
    }
    let want = n.checked_mul(slots).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want * 4 {
        return Err(PersistError::Truncated);
    }
    // Rebuild through an adjacency graph to reuse the validated
    // constructor.
    let mut adj = crate::graph::AdjacencyGraph::new(n);
    let mut edges = Vec::with_capacity(want);
    for _ in 0..want {
        edges.push(buf.get_u32_le());
    }
    for v in 0..n {
        let c = (counts[v] as usize).min(slots);
        adj.set_neighbors(v as u32, edges[v * slots..v * slots + c].to_vec());
    }
    Ok(FlatGraph::from_adjacency(&adj, Some(slots.max(1))))
}

/// Encodes a quantized store (codes packed, padding stripped — see the
/// module docs). Quantization is deterministic, so an equal alternative to
/// persisting this section is re-encoding from the saved `f32` store on
/// load; persisting skips the extra pass and keeps the codes usable even
/// where the raw vectors are not shipped.
pub fn encode_quantized(quant: &QuantizedStore) -> Bytes {
    let dim = quant.dim();
    let mut buf = header(KIND_QUANT, 16 + dim * 8 + quant.len() * dim);
    buf.put_u64_le(dim as u64);
    buf.put_u64_le(quant.len() as u64);
    for &m in quant.mins() {
        buf.put_f32_le(m);
    }
    for &d in quant.deltas() {
        buf.put_f32_le(d);
    }
    buf.put_slice(&quant.to_packed_codes());
    buf.freeze()
}

/// Decodes a quantized store (rebuilding the cache-line-padded layout).
pub fn decode_quantized(mut buf: Bytes) -> Result<QuantizedStore, PersistError> {
    check_header(&mut buf, KIND_QUANT)?;
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    if dim == 0 {
        return Err(PersistError::Truncated);
    }
    if buf.remaining() < dim * 8 {
        return Err(PersistError::Truncated);
    }
    let mut mins = Vec::with_capacity(dim);
    for _ in 0..dim {
        mins.push(buf.get_f32_le());
    }
    let mut deltas = Vec::with_capacity(dim);
    for _ in 0..dim {
        deltas.push(buf.get_f32_le());
    }
    let want = dim.checked_mul(len).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want {
        return Err(PersistError::Truncated);
    }
    let mut packed = vec![0u8; want];
    buf.copy_to_slice(&mut packed);
    Ok(QuantizedStore::from_parts(dim, mins, deltas, packed))
}

fn put_affine_body(buf: &mut BytesMut, dim: usize, len: usize, mins: &[f32], deltas: &[f32]) {
    buf.put_u64_le(dim as u64);
    buf.put_u64_le(len as u64);
    for &m in mins {
        buf.put_f32_le(m);
    }
    for &d in deltas {
        buf.put_f32_le(d);
    }
}

type AffineBody = (usize, Vec<f32>, Vec<f32>, Vec<u8>);

fn get_affine_body(
    buf: &mut Bytes,
    row_bytes: fn(usize) -> usize,
) -> Result<AffineBody, PersistError> {
    if buf.remaining() < 16 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u64_le() as usize;
    let len = buf.get_u64_le() as usize;
    if dim == 0 {
        return Err(PersistError::Truncated);
    }
    if buf.remaining() < dim * 8 {
        return Err(PersistError::Truncated);
    }
    let mut mins = Vec::with_capacity(dim);
    for _ in 0..dim {
        mins.push(buf.get_f32_le());
    }
    let mut deltas = Vec::with_capacity(dim);
    for _ in 0..dim {
        deltas.push(buf.get_f32_le());
    }
    let want = row_bytes(dim).checked_mul(len).ok_or(PersistError::Truncated)?;
    if buf.remaining() < want {
        return Err(PersistError::Truncated);
    }
    let mut packed = vec![0u8; want];
    buf.copy_to_slice(&mut packed);
    Ok((dim, mins, deltas, packed))
}

/// Encodes any [`CodecStore`] as a tagged codec section (see the module
/// docs). All three codecs persist their packed logical bytes; padded and
/// aligned layouts are rebuilt on load.
pub fn encode_codec(codec: &dyn CodecStore) -> Bytes {
    let any = codec.as_any();
    if let Some(q) = any.downcast_ref::<QuantizedStore>() {
        let dim = q.dim();
        let mut buf = header(KIND_CODEC, 17 + dim * 8 + q.len() * dim);
        buf.put_u8(CODEC_SQ8);
        put_affine_body(&mut buf, dim, q.len(), q.mins(), q.deltas());
        buf.put_slice(&q.to_packed_codes());
        buf.freeze()
    } else if let Some(q) = any.downcast_ref::<Sq4Store>() {
        let dim = q.dim();
        let mut buf = header(KIND_CODEC, 17 + dim * 8 + q.len() * dim.div_ceil(2));
        buf.put_u8(CODEC_SQ4);
        put_affine_body(&mut buf, dim, q.len(), q.mins(), q.deltas());
        buf.put_slice(&q.to_packed_codes());
        buf.freeze()
    } else if let Some(q) = any.downcast_ref::<PqStore>() {
        let mut buf = header(
            KIND_CODEC,
            33 + q.dim() * 4 + q.centroids().len() * 4 + q.len() * q.m().div_ceil(2),
        );
        buf.put_u8(CODEC_PQ);
        buf.put_u64_le(q.dim() as u64);
        buf.put_u64_le(q.m() as u64);
        buf.put_u64_le(q.ncent() as u64);
        buf.put_u64_le(q.len() as u64);
        for &d in q.perm() {
            buf.put_u32_le(d);
        }
        for &c in q.centroids() {
            buf.put_f32_le(c);
        }
        buf.put_slice(&q.to_packed_codes());
        buf.freeze()
    } else {
        unreachable!("unknown CodecStore implementation {:?}", codec.spec())
    }
}

/// Decodes a tagged codec section into the matching [`CodecStore`].
pub fn decode_codec(mut buf: Bytes) -> Result<Box<dyn CodecStore>, PersistError> {
    check_header(&mut buf, KIND_CODEC)?;
    if buf.remaining() < 1 {
        return Err(PersistError::Truncated);
    }
    match buf.get_u8() {
        CODEC_SQ8 => {
            let (dim, mins, deltas, packed) = get_affine_body(&mut buf, |dim| dim)?;
            Ok(Box::new(QuantizedStore::from_parts(dim, mins, deltas, packed)))
        }
        CODEC_SQ4 => {
            let (dim, mins, deltas, packed) = get_affine_body(&mut buf, |dim| dim.div_ceil(2))?;
            Ok(Box::new(Sq4Store::from_parts(dim, mins, deltas, packed)))
        }
        CODEC_PQ => {
            if buf.remaining() < 32 {
                return Err(PersistError::Truncated);
            }
            let dim = buf.get_u64_le() as usize;
            let m = buf.get_u64_le() as usize;
            let ncent = buf.get_u64_le() as usize;
            let len = buf.get_u64_le() as usize;
            if dim == 0
                || m == 0
                || m > dim
                || !dim.is_multiple_of(m)
                || ncent == 0
                || ncent > 16
            {
                return Err(PersistError::Truncated);
            }
            if buf.remaining() < dim * 4 {
                return Err(PersistError::Truncated);
            }
            let mut perm = Vec::with_capacity(dim);
            let mut seen = vec![false; dim];
            for _ in 0..dim {
                let d = buf.get_u32_le();
                if d as usize >= dim || std::mem::replace(&mut seen[d as usize], true) {
                    return Err(PersistError::Truncated);
                }
                perm.push(d);
            }
            let cents = m
                .checked_mul(16)
                .and_then(|x| x.checked_mul(dim / m))
                .ok_or(PersistError::Truncated)?;
            if buf.remaining() < cents * 4 {
                return Err(PersistError::Truncated);
            }
            let mut centroids = Vec::with_capacity(cents);
            for _ in 0..cents {
                centroids.push(buf.get_f32_le());
            }
            let want = m.div_ceil(2).checked_mul(len).ok_or(PersistError::Truncated)?;
            if buf.remaining() < want {
                return Err(PersistError::Truncated);
            }
            let mut packed = vec![0u8; want];
            buf.copy_to_slice(&mut packed);
            Ok(Box::new(PqStore::from_parts(dim, m, ncent, perm, centroids, packed)))
        }
        tag => Err(PersistError::UnknownCodec(tag)),
    }
}

/// Encodes a reorder permutation (the `new → old` placement order; the
/// inverse table is cheap to rebuild, so only one direction is stored).
pub fn encode_permutation(map: &IdRemap) -> Bytes {
    let mut buf = header(KIND_PERM, 8 + map.len() * 4);
    buf.put_u64_le(map.len() as u64);
    for &old in map.new_to_old() {
        buf.put_u32_le(old);
    }
    buf.freeze()
}

/// Decodes a reorder permutation, re-validating that it is a bijection.
pub fn decode_permutation(mut buf: Bytes) -> Result<IdRemap, PersistError> {
    check_header(&mut buf, KIND_PERM)?;
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.checked_mul(4).ok_or(PersistError::Truncated)? {
        return Err(PersistError::Truncated);
    }
    let mut new_to_old = Vec::with_capacity(n);
    for _ in 0..n {
        new_to_old.push(buf.get_u32_le());
    }
    IdRemap::from_new_to_old(new_to_old).map_err(PersistError::NotAPermutation)
}

/// Writes a store to `path`.
pub fn save_store(store: &VectorStore, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_store(store))?;
    Ok(())
}

/// Reads a store from `path`.
pub fn load_store(path: &Path) -> Result<VectorStore, PersistError> {
    decode_store(Bytes::from(fs::read(path)?))
}

/// Writes a flat graph to `path`.
pub fn save_flat_graph(graph: &FlatGraph, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_flat_graph(graph))?;
    Ok(())
}

/// Reads a flat graph from `path`.
pub fn load_flat_graph(path: &Path) -> Result<FlatGraph, PersistError> {
    decode_flat_graph(Bytes::from(fs::read(path)?))
}

/// Writes a quantized store to `path`.
pub fn save_quantized(quant: &QuantizedStore, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_quantized(quant))?;
    Ok(())
}

/// Reads a quantized store from `path`.
pub fn load_quantized(path: &Path) -> Result<QuantizedStore, PersistError> {
    decode_quantized(Bytes::from(fs::read(path)?))
}

/// Writes a codec store to `path`.
pub fn save_codec(codec: &dyn CodecStore, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_codec(codec))?;
    Ok(())
}

/// Reads a codec store from `path`.
pub fn load_codec(path: &Path) -> Result<Box<dyn CodecStore>, PersistError> {
    decode_codec(Bytes::from(fs::read(path)?))
}

/// Writes a reorder permutation to `path`.
pub fn save_permutation(map: &IdRemap, path: &Path) -> Result<(), PersistError> {
    fs::write(path, encode_permutation(map))?;
    Ok(())
}

/// Reads a reorder permutation from `path`.
pub fn load_permutation(path: &Path) -> Result<IdRemap, PersistError> {
    decode_permutation(Bytes::from(fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AdjacencyGraph, GraphView};

    fn sample_store() -> VectorStore {
        VectorStore::from_flat(3, vec![1.0, 2.0, 3.0, -4.5, 0.0, 9.25])
    }

    fn sample_graph() -> FlatGraph {
        let mut g = AdjacencyGraph::new(4);
        g.set_neighbors(0, vec![1, 2]);
        g.set_neighbors(1, vec![0]);
        g.set_neighbors(2, vec![3, 0, 1]);
        FlatGraph::from_adjacency(&g, Some(3))
    }

    #[test]
    fn store_roundtrip() {
        let store = sample_store();
        let decoded = decode_store(encode_store(&store)).unwrap();
        assert_eq!(decoded.dim(), 3);
        assert_eq!(decoded.as_flat(), store.as_flat());
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample_graph();
        let decoded = decode_flat_graph(encode_flat_graph(&g)).unwrap();
        assert_eq!(decoded.num_nodes(), 4);
        for v in 0..4 {
            assert_eq!(decoded.neighbors(v), g.neighbors(v), "node {v}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("store.gass");
        let graph_path = dir.join("graph.gass");
        save_store(&sample_store(), &store_path).unwrap();
        save_flat_graph(&sample_graph(), &graph_path).unwrap();
        assert_eq!(load_store(&store_path).unwrap().len(), 2);
        assert_eq!(load_flat_graph(&graph_path).unwrap().num_edges(), 6);
    }

    #[test]
    fn quantized_roundtrip_preserves_codes_and_distances() {
        let store = VectorStore::from_flat(
            5,
            (0..65).map(|i| ((i * 17) as f32 * 0.23).sin() * 4.0).collect(),
        );
        let quant = QuantizedStore::from_store(&store);
        let decoded = decode_quantized(encode_quantized(&quant)).unwrap();
        assert_eq!(decoded.len(), quant.len());
        assert_eq!(decoded.dim(), quant.dim());
        assert_eq!(decoded.mins(), quant.mins());
        assert_eq!(decoded.deltas(), quant.deltas());
        let query = [0.5f32, -1.0, 2.0, 0.0, 1.25];
        let mut pq_a = crate::quant::PreparedQuery::default();
        let mut pq_b = crate::quant::PreparedQuery::default();
        quant.prepare_into(&query, &mut pq_a);
        decoded.prepare_into(&query, &mut pq_b);
        for id in 0..quant.len() as u32 {
            assert_eq!(decoded.code_row(id), quant.code_row(id), "row {id}");
            assert_eq!(
                decoded.dist_prepared(&pq_b, id).to_bits(),
                quant.dist_prepared(&pq_a, id).to_bits(),
                "distance {id}"
            );
        }
    }

    #[test]
    fn quantized_file_roundtrip_and_truncation() {
        let store = sample_store();
        let quant = QuantizedStore::from_store(&store);
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quant.gass");
        save_quantized(&quant, &path).unwrap();
        assert_eq!(load_quantized(&path).unwrap().len(), 2);
        let bytes = encode_quantized(&quant);
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_quantized(cut).unwrap_err(), PersistError::Truncated));
        let err = decode_quantized(encode_store(&store)).unwrap_err();
        assert!(matches!(err, PersistError::WrongKind { .. }));
    }

    #[test]
    fn codec_roundtrip_preserves_codes_for_every_codec() {
        let store = VectorStore::from_flat(
            6,
            (0..90).map(|i| ((i * 13) as f32 * 0.31).sin() * 5.0).collect(),
        );
        let query = [0.5f32, -1.0, 2.0, 0.0, 1.25, -0.75];
        let codecs: Vec<Box<dyn CodecStore>> = vec![
            Box::new(QuantizedStore::from_store(&store)),
            Box::new(Sq4Store::from_store(&store)),
            Box::new(PqStore::from_store(&store, Some(2))),
        ];
        for codec in codecs {
            let decoded = decode_codec(encode_codec(codec.as_ref())).unwrap();
            assert_eq!(decoded.spec(), codec.spec());
            assert_eq!(decoded.len(), codec.len());
            assert_eq!(decoded.dim(), codec.dim());
            let mut pq_a = crate::quant::PreparedQuery::default();
            let mut pq_b = crate::quant::PreparedQuery::default();
            codec.prepare_into(&query, &mut pq_a);
            decoded.prepare_into(&query, &mut pq_b);
            for id in 0..codec.len() as u32 {
                assert_eq!(
                    decoded.code_row(id),
                    codec.code_row(id),
                    "{} row {id}",
                    codec.spec()
                );
                assert_eq!(
                    decoded.dist_prepared(&pq_b, id).to_bits(),
                    codec.dist_prepared(&pq_a, id).to_bits(),
                    "{} distance {id}",
                    codec.spec()
                );
            }
        }
    }

    #[test]
    fn codec_file_roundtrip_truncation_and_unknown_tag() {
        let store = sample_store();
        let codec = Sq4Store::from_store(&store);
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("codec.gass");
        save_codec(&codec, &path).unwrap();
        let back = load_codec(&path).unwrap();
        assert_eq!(back.spec(), crate::quant::CodecSpec::Sq4);
        assert_eq!(back.len(), 2);
        let bytes = encode_codec(&codec);
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_codec(cut).unwrap_err(), PersistError::Truncated));
        assert!(matches!(
            decode_codec(encode_store(&store)).unwrap_err(),
            PersistError::WrongKind { .. }
        ));
        let mut raw = bytes.to_vec();
        raw[6] = 99; // codec tag byte
        assert!(matches!(
            decode_codec(Bytes::from(raw)).unwrap_err(),
            PersistError::UnknownCodec(99)
        ));
    }

    #[test]
    fn permutation_roundtrip_and_rejection() {
        let map = IdRemap::from_new_to_old(vec![3, 0, 2, 1]).unwrap();
        let decoded = decode_permutation(encode_permutation(&map)).unwrap();
        assert_eq!(decoded, map);
        for old in 0..4u32 {
            assert_eq!(decoded.to_old(decoded.to_new(old)), old);
        }
        // File round-trip.
        let dir = std::env::temp_dir().join("gass_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perm.gass");
        save_permutation(&map, &path).unwrap();
        assert_eq!(load_permutation(&path).unwrap(), map);
        // Truncation.
        let bytes = encode_permutation(&map);
        let cut = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(decode_permutation(cut).unwrap_err(), PersistError::Truncated));
        // Kind mismatch both ways.
        assert!(matches!(
            decode_permutation(encode_store(&sample_store())).unwrap_err(),
            PersistError::WrongKind { .. }
        ));
        assert!(matches!(
            decode_store(encode_permutation(&map)).unwrap_err(),
            PersistError::WrongKind { .. }
        ));
        // A tampered payload that is no longer a bijection is rejected.
        let mut raw = encode_permutation(&map).to_vec();
        raw[18] = 3; // second entry 0 -> 3: id 3 now appears twice
        assert!(matches!(
            decode_permutation(Bytes::from(raw)).unwrap_err(),
            PersistError::NotAPermutation(_)
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_store(Bytes::from_static(b"NOPE....")).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let bytes = encode_store(&sample_store());
        let err = decode_flat_graph(bytes).unwrap_err();
        assert!(matches!(err, PersistError::WrongKind { .. }));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_store(&sample_store());
        let cut = bytes.slice(0..bytes.len() - 3);
        let err = decode_store(cut).unwrap_err();
        assert!(matches!(err, PersistError::Truncated));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut raw = encode_store(&sample_store()).to_vec();
        raw[4] = 99; // version byte
        let err = decode_store(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, PersistError::BadVersion(99)));
    }
}
