//! Cross-method correctness of the parallel construction paths.
//!
//! Two guarantees are asserted:
//! 1. `threads = 1` **is** the sequential algorithm — the serial-defaulted
//!    methods (HNSW for II, KGraph/NN-Descent for NP) produce identical
//!    edges whether built before or after this change (checked as
//!    build-vs-build determinism plus the bit-identity test inside
//!    `nndescent`).
//! 2. `threads = 4` builds reach the same recall@10 (within one point) as
//!    `threads = 1` builds on the same data, with plausible distance
//!    counts.

use gass_core::index::{AnnIndex, QueryParams};
use gass_core::store::VectorStore;
use gass_core::DistCounter;
use gass_data::ground_truth::ground_truth;
use gass_data::synth::deep_like;
use gass_graphs::{
    HnswIndex, HnswParams, KGraphIndex, KGraphParams, VamanaIndex, VamanaParams,
};

const N: usize = 2_000;
const K: usize = 10;

fn recall_at_10(index: &dyn AnnIndex, base: &VectorStore, queries: &VectorStore) -> f64 {
    let gt = ground_truth(base, queries, K);
    let counter = DistCounter::new();
    let params = QueryParams::new(K, 64).with_seed_count(8);
    let mut hit = 0;
    for (qi, row) in gt.iter().enumerate() {
        let res = index.search(queries.get(qi as u32), &params, &counter);
        hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
    }
    hit as f64 / (K * gt.len()) as f64
}

fn edges_of(g: &dyn gass_core::graph::GraphView) -> Vec<Vec<u32>> {
    (0..g.num_nodes() as u32).map(|u| g.neighbors(u).to_vec()).collect()
}

#[test]
fn hnsw_parallel_recall_matches_serial() {
    let base = deep_like(N, 11);
    let queries = deep_like(40, 12);
    let serial = HnswIndex::build(base.clone(), HnswParams::small());
    let parallel =
        HnswIndex::build(base.clone(), HnswParams { threads: 4, ..HnswParams::small() });
    let rs = recall_at_10(&serial, &base, &queries);
    let rp = recall_at_10(&parallel, &base, &queries);
    assert!((rs - rp).abs() <= 0.01, "HNSW parallel recall {rp} drifted from serial {rs}");
    // Both builds explore the same data with the same beam width; the
    // batched build must not silently skip (or wildly inflate) work.
    let (ds, dp) =
        (serial.build_report().dist_calcs as f64, parallel.build_report().dist_calcs as f64);
    assert!(dp > ds * 0.3 && dp < ds * 3.0, "implausible dist counts: {ds} vs {dp}");
    assert!(parallel.stats().max_degree <= 24, "degree bound violated in parallel build");
}

#[test]
fn vamana_parallel_recall_matches_serial() {
    let base = deep_like(N, 21);
    let queries = deep_like(40, 22);
    let serial = VamanaIndex::build(base.clone(), VamanaParams::small());
    let parallel =
        VamanaIndex::build(base.clone(), VamanaParams { threads: 4, ..VamanaParams::small() });
    let rs = recall_at_10(&serial, &base, &queries);
    let rp = recall_at_10(&parallel, &base, &queries);
    assert!((rs - rp).abs() <= 0.01, "Vamana parallel recall {rp} drifted from serial {rs}");
    let (ds, dp) =
        (serial.build_report().dist_calcs as f64, parallel.build_report().dist_calcs as f64);
    assert!(dp > ds * 0.3 && dp < ds * 3.0, "implausible dist counts: {ds} vs {dp}");
    assert!(parallel.stats().max_degree <= 24, "degree bound violated in parallel build");
}

#[test]
fn kgraph_parallel_build_is_identical_to_serial() {
    // NN-Descent's parallel join is exactly serial-equivalent, so KGraph
    // asserts full edge identity (and identical distance counts), not just
    // recall parity.
    let base = deep_like(N, 31);
    let queries = deep_like(40, 32);
    let serial =
        KGraphIndex::build(base.clone(), KGraphParams { threads: 1, ..KGraphParams::small() });
    let parallel =
        KGraphIndex::build(base.clone(), KGraphParams { threads: 4, ..KGraphParams::small() });
    assert_eq!(
        edges_of(serial.graph()),
        edges_of(parallel.graph()),
        "KGraph parallel build must be bit-identical to serial"
    );
    assert_eq!(
        serial.build_report().dist_calcs,
        parallel.build_report().dist_calcs,
        "distance accounting must be exact at any thread count"
    );
    let rs = recall_at_10(&serial, &base, &queries);
    let rp = recall_at_10(&parallel, &base, &queries);
    assert!((rs - rp).abs() <= 1e-12, "identical graphs must give identical recall");
}

#[test]
fn hnsw_threads_one_is_deterministic_serial_path() {
    // threads=1 must run the pre-change sequential insertion: two builds
    // with identical params agree edge-for-edge.
    let base = deep_like(800, 41);
    let a = HnswIndex::build(base.clone(), HnswParams::small());
    let b = HnswIndex::build(base, HnswParams::small());
    assert_eq!(edges_of(a.base_graph()), edges_of(b.base_graph()));
    assert_eq!(a.build_report().dist_calcs, b.build_report().dist_calcs);
}

#[test]
fn kgraph_threads_one_is_deterministic_serial_path() {
    let base = deep_like(800, 51);
    let a =
        KGraphIndex::build(base.clone(), KGraphParams { threads: 1, ..KGraphParams::small() });
    let b = KGraphIndex::build(base, KGraphParams { threads: 1, ..KGraphParams::small() });
    assert_eq!(edges_of(a.graph()), edges_of(b.graph()));
    assert_eq!(a.build_report().dist_calcs, b.build_report().dist_calcs);
}
