//! Scalar vs SIMD distance-kernel micro-benchmarks at the paper's dataset
//! dimensionalities (Sift 128, Deep 96, Glove 25/100, Gist 960). The
//! dispatched kernels (`l2_sq`, `l2_sq_batch`) pick AVX2/NEON at runtime;
//! the `*_scalar` rows pin the unrolled reference the dispatcher falls
//! back to under `GASS_NO_SIMD`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_core::distance::{l2_sq, l2_sq_batch, l2_sq_batch_scalar, l2_sq_scalar};
use std::hint::black_box;

fn vectors(dim: usize) -> (Vec<f32>, [Vec<f32>; 4]) {
    let gen = |phase: f32| (0..dim).map(|i| (i as f32 * 0.37 + phase).sin()).collect();
    (gen(0.0), [gen(1.0), gen(2.0), gen(3.0), gen(4.0)])
}

fn bench_simd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for dim in [25usize, 96, 100, 128, 960] {
        let (q, rows) = vectors(dim);
        let refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
        group.bench_with_input(BenchmarkId::new("l2_sq/simd", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq(black_box(&q), black_box(refs[0])))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq/scalar", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_scalar(black_box(&q), black_box(refs[0])))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq_batch/simd", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_batch(black_box(&q), black_box(refs)))
        });
        group.bench_with_input(
            BenchmarkId::new("l2_sq_batch/scalar", dim),
            &dim,
            |bench, _| bench.iter(|| l2_sq_batch_scalar(black_box(&q), black_box(refs))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simd_kernels);
criterion_main!(benches);
