//! # gass-bench
//!
//! Shared scaffolding for the experiment harnesses that regenerate every
//! table and figure of the paper (one binary per experiment under
//! `src/bin/`), plus criterion micro-benchmarks under `benches/`.
//!
//! ## Scale model
//!
//! The paper's dataset tiers (1M / 25GB / 100GB / 1B vectors) are mapped
//! to laptop-scale defaults; set the `GASS_SCALE` environment variable to
//! scale every tier multiplicatively (e.g. `GASS_SCALE=5` for a 5× larger
//! run). Every harness prints the tier it actually ran, so
//! `EXPERIMENTS.md` comparisons are explicit about scale.

#![warn(missing_docs)]
#![warn(clippy::all)]

use gass_core::distance::Space;
use gass_core::graph::GraphView;
use gass_core::neighbor::{BoundedMaxHeap, Neighbor};
use gass_core::visited::VisitedSet;
use std::path::PathBuf;

/// One dataset-size tier, named after the paper's tier it stands in for.
#[derive(Clone, Copy, Debug)]
pub struct Tier {
    /// Paper tier label ("1M", "25GB", "100GB", "1B").
    pub label: &'static str,
    /// Number of vectors at default scale.
    pub n: usize,
}

/// Scale multiplier from `GASS_SCALE` (default 1).
pub fn scale() -> usize {
    std::env::var("GASS_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1).max(1)
}

/// The four tiers of the paper, at harness scale.
pub fn tiers() -> Vec<Tier> {
    let s = scale();
    vec![
        Tier { label: "1M", n: 8_000 * s },
        Tier { label: "25GB", n: 16_000 * s },
        Tier { label: "100GB", n: 32_000 * s },
        Tier { label: "1B", n: 64_000 * s },
    ]
}

/// The small/medium tiers (most per-method figures stop at 25GB for the
/// excluded methods, as in the paper).
pub fn small_tiers() -> Vec<Tier> {
    tiers().into_iter().take(2).collect()
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Number of queries per workload (paper uses 100).
pub fn num_queries() -> usize {
    std::env::var("GASS_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(40).max(1)
}

/// The beam widths swept by the search-performance figures.
pub fn beam_sweep() -> Vec<usize> {
    vec![10, 20, 40, 80, 160, 320]
}

/// Beam-search over a graph using the *two-heap* queue of the original
/// HNSW implementation, for the implementation-impact ablation
/// (Figure 17). Functionally equivalent to the linear-buffer search; the
/// paper normalized all methods to the linear buffer and we measure what
/// that normalization costs/saves.
pub fn beam_search_two_heaps<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    visited: &mut VisitedSet,
) -> Vec<Neighbor> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    visited.resize(graph.num_nodes());
    visited.clear();
    let mut results = BoundedMaxHeap::new(beam_width.max(k));
    let mut frontier: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
    for &s in seeds {
        if (s as usize) < graph.num_nodes() && visited.insert(s) {
            let d = space.dist_to(query, s);
            let n = Neighbor::new(s, d);
            results.push(n);
            frontier.push(Reverse(n));
        }
    }
    while let Some(Reverse(cur)) = frontier.pop() {
        if cur.dist > results.bound() {
            break;
        }
        for &nb in graph.neighbors(cur.id) {
            if visited.insert(nb) {
                let d = space.dist_to(query, nb);
                let n = Neighbor::new(nb, d);
                if d < results.bound() {
                    frontier.push(Reverse(n));
                }
                results.push(n);
            }
        }
    }
    let mut out = results.into_sorted();
    out.truncate(k);
    out
}

/// Shared driver for the search-performance figures (12/13/14/16): build
/// each method on each dataset, sweep beam widths, and emit one TSV row
/// per point. Returns the table for further inspection.
pub fn run_search_figure(
    figure: &str,
    workloads: &[(gass_data::DatasetKind, usize)],
    methods: &[gass_graphs::MethodKind],
    k: usize,
    seed: u64,
) -> gass_eval::Table {
    let mut table = gass_eval::Table::new(vec![
        "dataset",
        "n",
        "method",
        "L",
        "recall",
        "dist_calcs_per_query",
        "ms_per_query",
    ]);
    for &(kind, n) in workloads {
        let (base, queries) = kind.generate(n, num_queries(), seed);
        let truth = gass_data::ground_truth(&base, &queries, k);
        for &method in methods {
            let built = gass_graphs::build_method(method, base.clone(), seed);
            for p in
                gass_eval::sweep(built.index.as_ref(), &queries, &truth, k, &beam_sweep(), 16)
            {
                table.row(vec![
                    kind.name(),
                    n.to_string(),
                    method.name(),
                    p.beam_width.to_string(),
                    format!("{:.4}", p.recall),
                    (p.dist_calcs / queries.len() as u64).to_string(),
                    format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
                ]);
            }
            eprintln!("done: {} {} {}", figure, kind.name(), method.name());
        }
    }
    table.emit(&results_dir(), figure).expect("write results");
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::graph::AdjacencyGraph;
    use gass_core::search::{beam_search, SearchScratch};
    use gass_core::store::VectorStore;

    #[test]
    fn tiers_have_expected_shape() {
        let t = tiers();
        assert_eq!(t.len(), 4);
        assert!(t[0].n < t[3].n);
        assert_eq!(small_tiers().len(), 2);
    }

    #[test]
    fn two_heap_search_matches_linear_buffer() {
        let store = VectorStore::from_flat(1, (0..50).map(|i| i as f32).collect());
        let mut g = AdjacencyGraph::new(50);
        for i in 0..49u32 {
            g.add_undirected(i, i + 1);
        }
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut visited = VisitedSet::new(50);
        let heap_res = beam_search_two_heaps(&g, space, &[33.3], &[0], 5, 16, &mut visited);
        let mut scratch = SearchScratch::new(50, 16);
        let buf_res = beam_search(&g, space, &[33.3], &[0], 5, 16, &mut scratch);
        let a: Vec<u32> = heap_res.iter().map(|n| n.id).collect();
        let b: Vec<u32> = buf_res.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(a, b);
    }
}
