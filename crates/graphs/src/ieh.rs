//! **IEH** — Iterative Expanding Hashing (Jin et al.): the paper's
//! taxonomy places it as the hash-seeded member of the
//! Neighborhood-Propagation family. An LSH index proposes each node's
//! initial neighbor candidates, NNDescent refines them into an
//! approximate k-NN graph, and at query time the same LSH tables provide
//! the seeds.
//!
//! The paper *excluded* IEH from its evaluation "due to suboptimal
//! performance" (citing earlier studies). We implement it anyway — the
//! taxonomy is part of the contribution — and the `ext_ieh_check` harness
//! verifies the exclusion was justified by comparing it against EFANNA
//! (same NP core, tree seeds instead of hash seeds).

use crate::common::BuildReport;
use crate::nndescent::KnnGraphState;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use gass_hash::{LshIndex, LshSeeds};

/// IEH construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct IehParams {
    /// Neighbors kept per node.
    pub k: usize,
    /// LSH tables.
    pub tables: usize,
    /// Projections per table.
    pub projections: usize,
    /// LSH bucket width *factor* (multiplies the data's projection std;
    /// see `LshIndex::build_scaled`).
    pub width: f32,
    /// Candidates retrieved per node from the LSH index for
    /// initialization.
    pub init_candidates: usize,
    /// Maximum NNDescent iterations.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IehParams {
    /// Small-scale defaults.
    pub fn small() -> Self {
        Self {
            k: 20,
            tables: 4,
            projections: 8,
            width: 0.7,
            init_candidates: 40,
            iters: 8,
            seed: 42,
        }
    }
}

/// A built IEH index.
pub struct IehIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    seeds: LshSeeds,
    scratch: ScratchPool,
    build: BuildReport,
}

impl IehIndex {
    /// Builds the index: LSH candidates → NNDescent refinement.
    pub fn build(store: VectorStore, params: IehParams) -> Self {
        assert!(store.len() > params.k, "need more points than k");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let lsh = LshIndex::build_scaled(
            &store,
            params.tables,
            params.projections,
            params.width,
            params.seed ^ 0x1e4,
        );
        let graph = {
            let space = Space::new(&store, &counter);
            let candidates: Vec<Vec<u32>> = (0..store.len() as u32)
                .map(|u| lsh.candidates(store.get(u), params.init_candidates))
                .collect();
            let mut state = KnnGraphState::from_candidates(space, params.k, candidates);
            // Hash buckets can be empty (sparse collisions on smooth
            // data); pad with random neighbors so NNDescent can converge.
            state.pad_random(space, params.seed ^ 0x9ad);
            state.run(space, params.iters, params.k + 8, 0.002, params.seed ^ 0x1e5);
            let mut g = AdjacencyGraph::new(store.len());
            for (u, list) in state.lists().iter().enumerate() {
                g.set_neighbors(u as u32, list.iter().map(|n| n.id).collect());
            }
            FlatGraph::from_adjacency(&g, Some(params.k))
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let seeds = LshSeeds::new(lsh, 0);
        Self {
            store,
            graph,
            seeds,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The refined graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl AnnIndex for IehIndex {
    fn name(&self) -> String {
        "IEH".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.seeds.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn ieh_builds_and_answers() {
        let base = deep_like(500, 1);
        let queries = deep_like(12, 2);
        let idx = IehIndex::build(base.clone(), IehParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 96).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 120.0;
        assert!(recall > 0.7, "IEH recall too low even for IEH: {recall}");
        assert_eq!(idx.name(), "IEH");
        assert!(idx.stats().aux_bytes > 0);
    }

    #[test]
    fn hash_bootstrap_beats_random_initialization() {
        // Like EFANNA's trees, IEH's hash buckets should start NNDescent
        // from a better-than-random graph.
        use crate::nndescent::KnnGraphState;
        let base = deep_like(400, 3);
        let lsh = LshIndex::build_scaled(&base, 4, 8, 0.7, 9);
        let counter = DistCounter::new();
        let space = Space::new(&base, &counter);
        let candidates: Vec<Vec<u32>> =
            (0..400u32).map(|u| lsh.candidates(base.get(u), 40)).collect();
        let hash_init = KnnGraphState::from_candidates(space, 10, candidates);
        let rand_init = KnnGraphState::random_init(space, 10, 7);
        assert!(
            hash_init.graph_recall(space) > rand_init.graph_recall(space),
            "hash bootstrap should beat random"
        );
    }
}
