//! Memory-footprint accounting (Figures 8–10).
//!
//! The paper reads peak virtual memory from `/proc`; we complement a
//! current-RSS probe (Linux) with exact structural accounting from
//! [`gass_core::index::AnnIndex::stats`], which is reproducible across
//! platforms and is what the figure harnesses report.

use gass_core::index::AnnIndex;
use gass_core::store::VectorStore;

/// Breakdown of an index's memory footprint.
#[derive(Clone, Copy, Debug)]
pub struct FootprintReport {
    /// Raw vector data bytes.
    pub raw_bytes: usize,
    /// Graph structure bytes.
    pub graph_bytes: usize,
    /// Auxiliary structure bytes (trees, hash tables, hierarchies, copies).
    pub aux_bytes: usize,
}

impl FootprintReport {
    /// Total footprint including raw data (the paper's convention).
    pub fn total(&self) -> usize {
        self.raw_bytes + self.graph_bytes + self.aux_bytes
    }
}

/// Computes the structural footprint of an index built on `store`.
pub fn footprint(index: &dyn AnnIndex, store: &VectorStore) -> FootprintReport {
    let s = index.stats();
    FootprintReport {
        raw_bytes: store.heap_bytes(),
        graph_bytes: s.graph_bytes,
        aux_bytes: s.aux_bytes,
    }
}

/// Current resident-set size of this process in bytes, if the platform
/// exposes it (`/proc/self/statm` on Linux). Used as the live analog of
/// the paper's VmPeak readings.
pub fn current_rss_bytes() -> Option<usize> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: usize = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// Peak virtual memory (VmPeak) of this process in bytes, if exposed —
/// exactly the reading the paper reports for Figure 8.
pub fn vm_peak_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmPeak:") {
            let kb: usize = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::index::SerialScanIndex;
    use gass_data::synth::deep_like;

    #[test]
    fn footprint_totals_components() {
        let base = deep_like(100, 1);
        let idx = SerialScanIndex::new(base.clone());
        let f = footprint(&idx, &base);
        assert_eq!(f.graph_bytes, 0);
        assert!(f.raw_bytes >= 100 * 96 * 4);
        assert_eq!(f.total(), f.raw_bytes + f.graph_bytes + f.aux_bytes);
    }

    #[test]
    fn linux_memory_probes_work_here() {
        // These tests run on Linux in CI; on other platforms the probes
        // return None and the assertions are skipped.
        if let Some(rss) = current_rss_bytes() {
            assert!(rss > 1024 * 1024, "suspiciously small RSS: {rss}");
        }
        if let Some(peak) = vm_peak_bytes() {
            assert!(peak >= current_rss_bytes().unwrap_or(0) / 2);
        }
    }
}
