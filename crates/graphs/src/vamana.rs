//! **Vamana** (DiskANN's graph): starts from a *random* `R`-regular graph
//! (degree ≥ log n keeps it connected w.h.p.), then makes two refinement
//! passes. In each pass, every node runs a beam search from the medoid,
//! its visited list is pruned with **RRND** (relaxation α; pass 1 uses
//! α = 1, i.e. plain RND; pass 2 uses the relaxed α ≥ 1), bi-directional
//! edges are added, and overflowing reverse lists are re-pruned with RND.
//! Queries start at the medoid plus random warm-up seeds (MD+KS).

use crate::common::{add_reverse_edges, add_reverse_edges_concurrent, BuildReport};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_core::par::ConcurrentAdjacency;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{
    beam_search_frozen, beam_search_with_sink, SearchResult, SearchScratch,
};
use gass_core::seed::{RandomSeeds, SeedProvider};
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Refinement chunk size of the parallel build: each chunk searches the
/// frozen graph concurrently, then applies its edges under striped locks.
const PARALLEL_CHUNK: usize = 256;

/// Vamana construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct VamanaParams {
    /// Maximum out-degree `R`.
    pub max_degree: usize,
    /// Construction beam width `L`.
    pub build_l: usize,
    /// RRND relaxation for the second pass (the paper tunes α = 1.3;
    /// DiskANN's default is 1.2).
    pub alpha: f32,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). At `1` the
    /// refinement passes run the exact sequential algorithm. Above 1 each
    /// pass processes chunks of [`PARALLEL_CHUNK`] nodes: chunk members
    /// search the graph concurrently (not seeing same-chunk re-prunes),
    /// then apply their edges under striped locks.
    pub threads: usize,
}

impl VamanaParams {
    /// Small-scale defaults: `R=24`, `L=64`, `α=1.3`, serial build.
    pub fn small() -> Self {
        Self { max_degree: 24, build_l: 64, alpha: 1.3, seed: 42, threads: 1 }
    }
}

/// A built Vamana index.
pub struct VamanaIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    seeds: RandomSeeds,
    medoid: u32,
    scratch: ScratchPool,
    build: BuildReport,
}

impl VamanaIndex {
    /// Builds the index (random init + two refinement passes).
    pub fn build(store: VectorStore, params: VamanaParams) -> Self {
        assert!(store.len() > params.max_degree, "need more points than R");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let (graph, medoid) = {
            let space = Space::new(&store, &counter);
            let medoid = store.centroid_medoid();
            let mut rng = SmallRng::seed_from_u64(params.seed);

            // Random init: degree ~ max(R/2, ceil(log2 n)) random
            // out-neighbors per node (Erdős–Rényi-style connectivity).
            let init_degree =
                ((n as f64).log2().ceil() as usize).max(params.max_degree / 2).min(n - 1);
            let mut g = AdjacencyGraph::with_degree_hint(n, params.max_degree + 1);
            for u in 0..n as u32 {
                while g.neighbors(u).len() < init_degree {
                    let v = rng.random_range(0..n as u32);
                    g.add_edge(u, v);
                }
            }

            let mut order: Vec<u32> = (0..n as u32).collect();
            let threads = gass_core::effective_threads(params.threads.max(1));
            if threads <= 1 {
                let mut scratch = SearchScratch::new(n, params.build_l);
                let mut sink: Vec<Neighbor> = Vec::new();
                for pass in 0..2 {
                    let alpha = if pass == 0 { 1.0 } else { params.alpha };
                    let nd = NdStrategy::Rrnd { alpha };
                    order.shuffle(&mut rng);
                    for &u in &order {
                        sink.clear();
                        beam_search_with_sink(
                            &g,
                            space,
                            store.get(u),
                            &[medoid],
                            params.build_l,
                            params.build_l,
                            &mut scratch,
                            Some(&mut sink),
                        );
                        for &v in g.neighbors(u) {
                            if !sink.iter().any(|s| s.id == v) {
                                sink.push(Neighbor::new(v, space.dist(u, v)));
                            }
                        }
                        let kept = nd.diversify(space, u, &sink, params.max_degree);
                        g.set_neighbors(u, kept.iter().map(|k| k.id).collect());
                        // Overflowing reverse lists re-prune with RND, per
                        // the original algorithm.
                        add_reverse_edges(
                            space,
                            &mut g,
                            u,
                            &kept,
                            params.max_degree,
                            NdStrategy::Rnd,
                        );
                    }
                }
                (g, medoid)
            } else {
                let conc = ConcurrentAdjacency::from_adjacency(g);
                for pass in 0..2 {
                    let alpha = if pass == 0 { 1.0 } else { params.alpha };
                    let nd = NdStrategy::Rrnd { alpha };
                    order.shuffle(&mut rng);
                    for chunk in order.chunks(PARALLEL_CHUNK) {
                        // Phase A: read-only searches + pruning against the
                        // graph frozen at the chunk boundary.
                        let prepared: Vec<(u32, Vec<Neighbor>)> = gass_core::par_map_with(
                            threads,
                            chunk.len(),
                            || (SearchScratch::new(n, params.build_l), Vec::new()),
                            |state, i| {
                                let (scratch, sink) = state;
                                let u = chunk[i];
                                sink.clear();
                                beam_search_with_sink(
                                    &conc,
                                    space,
                                    store.get(u),
                                    &[medoid],
                                    params.build_l,
                                    params.build_l,
                                    scratch,
                                    Some(sink),
                                );
                                for v in conc.snapshot(u) {
                                    if !sink.iter().any(|s| s.id == v) {
                                        sink.push(Neighbor::new(v, space.dist(u, v)));
                                    }
                                }
                                (u, nd.diversify(space, u, sink, params.max_degree))
                            },
                        );
                        // Phase B: apply under the stripe locks.
                        gass_core::par_for(threads, prepared.len(), |range| {
                            for (u, kept) in &prepared[range] {
                                conc.set_neighbors(*u, kept.iter().map(|k| k.id).collect());
                                add_reverse_edges_concurrent(
                                    space,
                                    &conc,
                                    *u,
                                    kept,
                                    params.max_degree,
                                    NdStrategy::Rnd,
                                );
                            }
                        });
                    }
                }
                (conc.freeze(), medoid)
            }
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let flat = FlatGraph::from_adjacency(&graph, Some(params.max_degree));
        let seeds = RandomSeeds::with_anchor(n, medoid, params.seed ^ 0x5eed);
        Self {
            store,
            graph: flat,
            seeds,
            medoid,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The medoid entry node.
    pub fn medoid(&self) -> u32 {
        self.medoid
    }

    /// The refined graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl AnnIndex for VamanaIndex {
    fn name(&self) -> String {
        "Vamana".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        let entries = [self.medoid];
        if let Some(map) =
            self.serving.reorder(&self.graph, &mut self.store, strategy, &entries)
        {
            self.seeds.reorder(&map);
            self.medoid = map.to_new(self.medoid);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::{deep_like, seismic_like};

    fn recall(idx: &VamanaIndex, base: &VectorStore, queries: &VectorStore, l: usize) -> f64 {
        let gt = ground_truth(base, queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, l).with_seed_count(8);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        hit as f64 / (10 * gt.len()) as f64
    }

    #[test]
    fn vamana_high_recall() {
        let base = deep_like(600, 1);
        let queries = deep_like(15, 2);
        let idx = VamanaIndex::build(base.clone(), VamanaParams::small());
        let r = recall(&idx, &base, &queries, 64);
        assert!(r > 0.93, "Vamana recall too low: {r}");
    }

    #[test]
    fn degree_bound_holds() {
        let base = seismic_like(300, 3);
        let idx = VamanaIndex::build(base, VamanaParams::small());
        assert!(idx.stats().max_degree <= 24);
        assert_eq!(idx.name(), "Vamana");
    }

    #[test]
    fn second_pass_alpha_adds_edges() {
        // α > 1 prunes less aggressively, so the relaxed build should keep
        // at least as many edges as a pure-RND (α = 1) double pass.
        let base = deep_like(300, 5);
        let relaxed = VamanaIndex::build(base.clone(), VamanaParams::small());
        let strict =
            VamanaIndex::build(base, VamanaParams { alpha: 1.0, ..VamanaParams::small() });
        assert!(
            relaxed.stats().edges >= strict.stats().edges,
            "relaxed {} vs strict {}",
            relaxed.stats().edges,
            strict.stats().edges
        );
    }
}
