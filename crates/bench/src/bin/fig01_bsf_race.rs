//! Figure 1: the motivating best-so-far race — image retrieval on an
//! ImageNet-like embedding collection, comparing method families by the
//! time at which each produces its (final) best answer.
//!
//! Paper shape: the fast graph method (ELPIS family) matches the exact
//! answer three orders of magnitude faster than the serial scan and ~3x
//! faster than the slower graph family (EFANNA).
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig01_bsf_race
//! ```

use gass_bench::{results_dir, tiers};
use gass_core::distance::{DistCounter, Space};
use gass_core::index::{AnnIndex, QueryParams};
use gass_data::DatasetKind;
use gass_eval::Table;
use gass_graphs::{EfannaIndex, EfannaParams, ElpisIndex, ElpisParams};

fn main() {
    let n = tiers()[2].n;
    let (base, queries) = DatasetKind::ImageNet.generate(n, 10, 11);
    println!("Figure 1: best-so-far race on ImageNet-like, n={n}\n");

    let elpis = ElpisIndex::build(base.clone(), ElpisParams::small());
    let efanna = EfannaIndex::build(base.clone(), EfannaParams::small());

    let mut table = Table::new(vec!["method", "mean_ms_to_answer", "answers_match_exact"]);
    let mut rows: Vec<(String, f64, usize)> = Vec::new();

    // Serial scan timing.
    {
        let counter = DistCounter::new();
        let t = std::time::Instant::now();
        let mut ok = 0;
        let mut exact_ids = Vec::new();
        for (_, q) in queries.iter() {
            let space = Space::new(&base, &counter);
            let res = gass_core::serial_scan(space, q, 1);
            exact_ids.push(res[0].id);
            ok += 1;
        }
        rows.push((
            "SerialScan".into(),
            t.elapsed().as_secs_f64() * 1e3 / queries.len() as f64,
            ok,
        ));

        // Graph methods, checked against the exact ids.
        for (name, idx) in
            [("ELPIS", &elpis as &dyn AnnIndex), ("EFANNA", &efanna as &dyn AnnIndex)]
        {
            let counter = DistCounter::new();
            let t = std::time::Instant::now();
            let mut matches = 0;
            for (qi, q) in queries.iter() {
                let res = idx.search(q, &QueryParams::new(1, 48).with_seed_count(16), &counter);
                if res.neighbors.first().map(|x| x.id) == Some(exact_ids[qi as usize]) {
                    matches += 1;
                }
            }
            rows.push((
                name.into(),
                t.elapsed().as_secs_f64() * 1e3 / queries.len() as f64,
                matches,
            ));
        }
    }

    for (name, ms, ok) in &rows {
        table.row(vec![name.clone(), format!("{ms:.3}"), format!("{ok}/{}", queries.len())]);
    }
    table.emit(&results_dir(), "fig01_bsf_race").expect("write results");

    let scan = rows[0].1;
    let elpis_ms = rows[1].1;
    let efanna_ms = rows[2].1;
    println!(
        "shape check — ELPIS {:.0}x faster than scan, {:.1}x faster than EFANNA",
        scan / elpis_ms.max(1e-9),
        efanna_ms / elpis_ms.max(1e-9)
    );
}
