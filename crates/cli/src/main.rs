//! `gass` — command-line interface to the GASS library.
//!
//! ```text
//! gass generate --dataset deep --n 20000 --seed 42 --out deep.store.gass
//! gass build    --method hnsw --store deep.store.gass --out deep.hnsw.gass
//! gass query    --store deep.store.gass --graph deep.hnsw.gass \
//!               --queries q.store.gass --k 10 --beam 80
//! gass info     --file deep.hnsw.gass
//! gass help
//! ```
//!
//! Saved graphs are served through `PrebuiltIndex` with K-sampled random
//! seeds (seed structures are method-specific and are not persisted; KS
//! is the universal strategy from the paper's taxonomy).

mod args;

use args::Args;
use gass_core::distance::DistCounter;
use gass_core::graph::{FlatGraph, GraphView};
use gass_core::index::{AnnIndex, PrebuiltIndex, QueryParams};
use gass_core::persist;
use gass_core::seed::RandomSeeds;
use gass_core::store::VectorStore;
use gass_data::DatasetKind;
use gass_graphs as graphs;
use std::path::Path;
use std::process::ExitCode;

const HELP: &str = "\
gass — graph-based vector search (GASS reproduction)

USAGE: gass <command> [--key value]...

COMMANDS:
  generate  --dataset <deep|sift|gist|imagenet|sald|seismic|t2i|pow0|pow5|pow50>
            --n <count> [--seed <u64>] [--format <packed|mapped>] --out <file>
            Generate a synthetic dataset analog and save it. --format
            mapped writes the page-aligned mmap layout (rows padded to the
            SIMD stride) that loads by page fault instead of a heap copy;
            absent it defers to the GASS_MMAP environment override
            (GASS_MMAP=1 selects mapped) and defaults to packed.

  build     --method <hnsw|vamana|nsg|ssg|kgraph|efanna|dpg|ngt|sptag-kdt|
                      sptag-bkt|hcnng|nsw|ii-rnd|ii-nond>
            --store <file> --out <path> [--seed <u64>] [--threads <t>]
            [--shards <N>] [--nprobe <K>]
            Build a graph index over a saved store and save the graph.
            --threads 0 uses all cores; 1 forces the serial path; absent
            keeps each method's default (serial for the incremental-
            insertion methods, all cores for the rest).
            With --shards N, partition the store with balanced k-means and
            build one --method graph per shard, one shard at a time (peak
            memory stays near a single shard); --out becomes a directory
            holding the shard table (centroids + id lists) and per-shard
            mapped stores and graphs. --nprobe K (default ceil(N/4)) sets
            how many shards `query`/`serve` search per query.

  query     --store <file> --graph <file> --queries <file>
            | --sharded <dir> --queries <file> [--nprobe <K>]
              [--fanout-workers <1>]
            [--k <10>] [--beam <80>] [--seeds <16>]
            [--layout <packed|aligned>] [--graph-layout <flat|csr>]
            [--simd <on|off>] [--prefetch <on|off>]
            [--quant <sq8|sq4|pq|none>] [--pq-m <m>] [--rerank-factor <4>]
            [--reorder <none|degree|bfs|rcm|hub>]
            [--term <fixed|saturation[:p]|distratio[:e]>] [--max-dists <n>]
            Answer k-NN queries from a saved graph; reports recall against
            exact ground truth and distance calculations per query.
            The fast-path flags default to the serving configuration
            (aligned store, CSR graph, SIMD kernels, software prefetch);
            results are identical under every combination — only speed
            changes. --simd/--prefetch left absent defer to the
            GASS_NO_SIMD / GASS_NO_PREFETCH environment overrides.
            --quant walks the compression ladder: sq8 traverses on 8-bit
            scalar-quantized codes (1 byte/dim), sq4 on 4-bit codes
            (2 dims/byte), pq on product-quantized codes (m subquantizers
            x 16 centroids, 4-bit codes scanned through per-query LUTs;
            --pq-m must divide the dimensionality, default m ~ dim/6).
            Every rung re-scores a rerank-factor*k candidate pool at full
            precision (approximate: recall can dip; raise --rerank-factor
            to recover it — the coarser the codec, the deeper the pool
            needed). --quant none (the default) is exact serving.
            --reorder relabels the frozen CSR, vectors, and codes with a
            locality-preserving permutation (implies --graph-layout csr);
            results are identical under every strategy — only speed
            changes. Absent defers to the GASS_REORDER environment
            override.
            --term picks the per-query termination policy: fixed (the
            default) expands until the beam is exhausted — bit-identical
            to every earlier release; saturation:p stops once the top-k
            heap has been unchanged for p consecutive expansions
            (default p=8); distratio:e stops once the best unexpanded
            candidate is farther than (1+e)x the current k-th result
            (default e=0.2). --max-dists n additionally caps the
            distance computations spent per query (0 = unlimited).
            Adaptive policies trade a little recall for fewer distance
            computations; quantized rungs still re-score their candidate
            pool exactly. Absent, both defer to the GASS_TERM /
            GASS_MAX_DISTS environment overrides.
            With --sharded, queries route through the shard table: rank
            shards by query-to-centroid distance, search the nearest
            --nprobe (overriding the table's default), and merge the
            per-shard top-k. Recall trades against speed through --nprobe;
            --nprobe N over N shards is exactly the merged union of all
            per-shard searches. --fanout-workers W runs each query's
            probes on W executors (0 = all cores; 1, the default, keeps
            the sequential loop) pinned NUMA-node-affine to the shards
            they probe; answers are identical at every W — only latency
            changes. Absent defers to GASS_FANOUT_WORKERS, and
            GASS_NO_FANOUT=1 forces the sequential loop.

  serve     --store <file> [--graph <file>] [--method <hnsw|...>]
            | --sharded <dir> [--nprobe <K>] [--fanout-workers <1>]
            [--host <127.0.0.1>] [--port <0>] [--workers <0>]
            [--max-batch <16>] [--max-wait-us <200>] [--queue-depth <1024>]
            [--seed <u64>] [--threads <t>]
            [--quant <sq8|sq4|pq|none>] [--pq-m <m>] [--rerank-factor <4>]
            [--reorder <none|degree|bfs|rcm|hub>]
            [--term <fixed|saturation[:p]|distratio[:e]>] [--max-dists <n>]
            Serve k-NN queries over TCP (length-prefixed binary frames).
            With --graph, serves the saved graph; without it, builds
            --method (default hnsw) over the store in-process first.
            --port 0 binds an ephemeral port; the bound address is printed
            as `listening on <addr>` once the server is ready. Concurrent
            requests are coalesced into micro-batches (closed at
            --max-batch jobs or --max-wait-us, whichever first) — batching
            changes throughput, never answers. Admission control
            fast-rejects queries beyond --queue-depth with `overloaded`
            instead of queueing without bound. --workers 0 uses all cores.
            --quant/--reorder absent defer to the GASS_QUANT / GASS_REORDER
            environment overrides. --term/--max-dists force a server-side
            termination policy onto every query (see `query`); absent
            they defer to GASS_TERM / GASS_MAX_DISTS. Queries carrying a
            deadline are additionally budget-clamped mid-search when the
            remaining deadline cannot cover a mean query's distance
            computations. Stop with a Shutdown frame (the server
            drains admitted queries, then exits) or Ctrl-C.
            With --sharded, serves a `build --shards` directory through
            centroid-routed nprobe search; shard stores saved in the
            mapped layout fault in per page, so untouched shards cost no
            resident memory (disable with GASS_NO_MMAP=1). Executors pin
            to NUMA nodes round-robin, matching the shards' home-node
            placement; --fanout-workers W additionally fans each query's
            probes out across W shard-affine executors (identical
            answers, lower single-query latency).

  info      --file <file>
            Describe a saved store (packed or mapped), graph, or shard
            table.

  help      Show this text.
";

fn dataset_of(name: &str) -> Result<DatasetKind, String> {
    Ok(match name {
        "deep" => DatasetKind::Deep,
        "sift" => DatasetKind::Sift,
        "gist" => DatasetKind::Gist,
        "imagenet" => DatasetKind::ImageNet,
        "sald" => DatasetKind::Sald,
        "seismic" => DatasetKind::Seismic,
        "t2i" => DatasetKind::TextToImage,
        "pow0" => DatasetKind::RandPow(0),
        "pow5" => DatasetKind::RandPow(5),
        "pow50" => DatasetKind::RandPow(50),
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

/// The methods `build` can persist (the composite ELPIS/LSHAPG/HVS carry
/// method-specific routing state beyond one flat graph).
const BUILDABLE_METHODS: &[&str] = &[
    "hnsw",
    "vamana",
    "nsg",
    "ssg",
    "kgraph",
    "efanna",
    "dpg",
    "ngt",
    "sptag-kdt",
    "sptag-bkt",
    "hcnng",
    "nsw",
    "ii-rnd",
    "ii-nond",
];

/// Builds `method` and extracts its frozen graph for persistence.
///
/// `threads = None` keeps each method's default (serial insertion for
/// HNSW/II, auto-parallel refinement for the batch-computed methods);
/// `Some(t)` forces `t` workers everywhere the method supports them, with
/// `Some(0)` meaning "all available cores".
fn build_graph(
    method: &str,
    store: VectorStore,
    seed: u64,
    threads: Option<usize>,
) -> Result<FlatGraph, String> {
    use gass_core::nd::NdStrategy;
    let adj_to_flat = |g: &gass_core::AdjacencyGraph| FlatGraph::from_adjacency(g, None);
    // Incremental-insertion methods change their (still correct) output when
    // parallelised, so they stay serial unless asked; the refinement-style
    // methods are bit-identical at any thread count and default to all cores.
    let t_serial = threads.unwrap_or(1);
    let t_auto = threads.unwrap_or(0);
    Ok(match method {
        "hnsw" => {
            let p =
                graphs::HnswParams { seed, threads: t_serial, ..graphs::HnswParams::small() };
            graphs::HnswIndex::build(store, p).base_graph().clone()
        }
        "vamana" => {
            let p = graphs::VamanaParams {
                seed,
                threads: t_serial,
                ..graphs::VamanaParams::small()
            };
            graphs::VamanaIndex::build(store, p).graph().clone()
        }
        "nsg" => {
            let p = graphs::NsgParams {
                seed,
                threads: t_auto,
                base: graphs::EfannaParams {
                    seed,
                    threads: t_auto,
                    ..graphs::NsgParams::small().base
                },
                ..graphs::NsgParams::small()
            };
            graphs::NsgIndex::build(store, p).graph().clone()
        }
        "ssg" => {
            let p = graphs::SsgParams {
                seed,
                threads: t_auto,
                base: graphs::EfannaParams {
                    seed,
                    threads: t_auto,
                    ..graphs::SsgParams::small().base
                },
                ..graphs::SsgParams::small()
            };
            graphs::SsgIndex::build(store, p).graph().clone()
        }
        "kgraph" => {
            let p =
                graphs::KGraphParams { seed, threads: t_auto, ..graphs::KGraphParams::small() };
            graphs::KGraphIndex::build(store, p).graph().clone()
        }
        "efanna" => {
            let p =
                graphs::EfannaParams { seed, threads: t_auto, ..graphs::EfannaParams::small() };
            graphs::EfannaIndex::build(store, p).graph().clone()
        }
        "dpg" => {
            let p = graphs::DpgParams { seed, threads: t_auto, ..graphs::DpgParams::small() };
            adj_to_flat(graphs::DpgIndex::build(store, p).graph())
        }
        "ngt" => {
            let p = graphs::NgtParams { seed, ..graphs::NgtParams::small() };
            adj_to_flat(graphs::NgtIndex::build(store, p).graph())
        }
        "sptag-kdt" => {
            let p = graphs::SptagParams {
                seed,
                ..graphs::SptagParams::small(graphs::SptagVariant::Kdt)
            };
            graphs::SptagIndex::build(store, p).graph().clone()
        }
        "sptag-bkt" => {
            let p = graphs::SptagParams {
                seed,
                ..graphs::SptagParams::small(graphs::SptagVariant::Bkt)
            };
            graphs::SptagIndex::build(store, p).graph().clone()
        }
        "hcnng" => {
            let p =
                graphs::HcnngParams { seed, threads: t_auto, ..graphs::HcnngParams::small() };
            adj_to_flat(graphs::HcnngIndex::build(store, p).graph())
        }
        "nsw" => {
            let p = graphs::NswParams { seed, ..graphs::NswParams::small() };
            adj_to_flat(graphs::NswIndex::build(store, p).graph())
        }
        "ii-rnd" => {
            let p = graphs::IiParams {
                seed,
                threads: t_serial,
                ..graphs::IiParams::small(NdStrategy::Rnd)
            };
            graphs::IiGraph::build(store, p).graph().clone()
        }
        "ii-nond" => {
            let p = graphs::IiParams {
                seed,
                threads: t_serial,
                ..graphs::IiParams::small(NdStrategy::NoNd)
            };
            graphs::IiGraph::build(store, p).graph().clone()
        }
        other => {
            return Err(format!(
                "unknown or non-persistable method `{other}` \
                 (ELPIS/LSHAPG/HVS are composite; serve them in-process)"
            ))
        }
    })
}

fn run(args: Args) -> Result<(), String> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "generate" => {
            let kind = dataset_of(args.require("dataset").map_err(|e| e.to_string())?)?;
            let n: usize = args.get_or("n", 10_000).map_err(|e| e.to_string())?;
            let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
            let out = args.require("out").map_err(|e| e.to_string())?;
            // Explicit --format wins; absent defers to the GASS_MMAP
            // override (the CI matrix leg that serves everything through
            // the file-backed tier), default packed.
            let format: String = match args.get_opt("format").map_err(|e| e.to_string())? {
                Some(f) => f,
                None => match std::env::var("GASS_MMAP").ok().as_deref() {
                    Some("1") => "mapped".into(),
                    _ => "packed".into(),
                },
            };
            let store = kind.generate_base(n, seed);
            match format.as_str() {
                "packed" => {
                    persist::save_store(&store, Path::new(out)).map_err(|e| e.to_string())?
                }
                "mapped" => persist::save_store_mapped(&store, Path::new(out))
                    .map_err(|e| e.to_string())?,
                other => return Err(format!("unknown --format `{other}`")),
            }
            println!(
                "wrote {} ({} x {}d, {format}, {} bytes)",
                out,
                store.len(),
                store.dim(),
                std::fs::metadata(out).map(|m| m.len()).unwrap_or(0)
            );
            Ok(())
        }
        "build" => {
            let method = args.require("method").map_err(|e| e.to_string())?;
            let store_path = args.require("store").map_err(|e| e.to_string())?;
            let out = args.require("out").map_err(|e| e.to_string())?;
            let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
            let threads: Option<usize> = args.get_opt("threads").map_err(|e| e.to_string())?;
            let shards: Option<usize> = args.get_opt("shards").map_err(|e| e.to_string())?;
            let nprobe: Option<usize> = args.get_opt("nprobe").map_err(|e| e.to_string())?;
            if nprobe.is_some() && shards.is_none() {
                return Err("--nprobe requires --shards".to_string());
            }
            if !BUILDABLE_METHODS.contains(&method) {
                return Err(format!(
                    "unknown or non-persistable method `{method}` \
                     (ELPIS/LSHAPG/HVS are composite; serve them in-process)"
                ));
            }
            let store =
                persist::open_store(Path::new(store_path)).map_err(|e| e.to_string())?;
            let t = std::time::Instant::now();
            match shards {
                Some(k) => {
                    if k == 0 {
                        return Err("--shards must be at least 1".to_string());
                    }
                    let mut params = gass_core::ShardedParams::new(k).with_seed(seed);
                    if let Some(np) = nprobe {
                        if np == 0 {
                            return Err("--nprobe must be at least 1".to_string());
                        }
                        params = params.with_nprobe(np);
                    }
                    let counter = DistCounter::new();
                    gass_core::ShardedIndex::build_to_dir(
                        &store,
                        &params,
                        &counter,
                        Path::new(out),
                        |s, sub| {
                            eprintln!(
                                "shard {s}: building {method} over {} vectors",
                                sub.len()
                            );
                            let graph = build_graph(method, sub.clone(), seed, threads)
                                .expect("method validated above");
                            let n = sub.len();
                            let seeds: Box<dyn gass_core::SeedProvider> =
                                Box::new(RandomSeeds::per_query(n, 7));
                            (graph, seeds)
                        },
                    )
                    .map_err(|e| e.to_string())?;
                    println!(
                        "built {method} x {k} shards over {} vectors in {:.2}s (nprobe {})",
                        store.len(),
                        t.elapsed().as_secs_f64(),
                        params.nprobe.min(k),
                    );
                    println!("wrote {out}/ (shard table + per-shard stores and graphs)");
                }
                None => {
                    let graph = build_graph(method, store, seed, threads)?;
                    println!(
                        "built {method} over {} nodes in {:.2}s ({} edges, avg degree {:.1})",
                        graph.num_nodes(),
                        t.elapsed().as_secs_f64(),
                        graph.num_edges(),
                        graph.avg_degree()
                    );
                    persist::save_flat_graph(&graph, Path::new(out))
                        .map_err(|e| e.to_string())?;
                    println!("wrote {out}");
                }
            }
            Ok(())
        }
        "query" => {
            // Parse and validate every flag before touching the (possibly
            // large) input files, so bad invocations fail fast with a
            // clear message.
            let k: usize = args.get_or("k", 10).map_err(|e| e.to_string())?;
            let beam: usize = args.get_or("beam", 80).map_err(|e| e.to_string())?;
            let seeds: usize = args.get_or("seeds", 16).map_err(|e| e.to_string())?;
            let layout: String =
                args.get_or("layout", "aligned".into()).map_err(|e| e.to_string())?;
            let graph_layout: String =
                args.get_or("graph-layout", "csr".into()).map_err(|e| e.to_string())?;
            let quant: String =
                args.get_or("quant", "none".into()).map_err(|e| e.to_string())?;
            let pq_m: Option<usize> = args.get_opt("pq-m").map_err(|e| e.to_string())?;
            let reorder: Option<gass_core::ReorderStrategy> =
                match args.get_opt::<String>("reorder").map_err(|e| e.to_string())? {
                    Some(v) => Some(v.parse().map_err(|e: String| format!("--reorder: {e}"))?),
                    None => gass_core::reorder_forced(),
                };
            let rerank: usize = args.get_or("rerank-factor", 4).map_err(|e| e.to_string())?;
            if rerank == 0 {
                return Err(
                    "--rerank-factor must be at least 1: quantized serving re-scores a \
                     rerank-factor*k candidate pool at full precision, and an empty pool \
                     would return no results"
                        .to_string(),
                );
            }
            // Explicit --term/--max-dists win; absent they leave the
            // GASS_TERM / GASS_MAX_DISTS overrides (already folded into
            // `QueryParams::new`) in charge.
            let term: Option<gass_core::TerminationPolicy> =
                match args.get_opt::<String>("term").map_err(|e| e.to_string())? {
                    Some(v) => Some(v.parse().map_err(|e: String| format!("--term: {e}"))?),
                    None => None,
                };
            let max_dists: Option<usize> =
                args.get_opt("max-dists").map_err(|e| e.to_string())?;
            // Codec family resolves here; the --pq-m divisibility check
            // needs the store's dimensionality and runs after loading.
            let family: Option<gass_core::CodecSpec> = match quant.as_str() {
                "none" => None,
                name => Some(name.parse().map_err(|e: String| format!("--quant: {e}"))?),
            };
            if pq_m.is_some() && !matches!(family, Some(gass_core::CodecSpec::Pq { .. })) {
                return Err("--pq-m requires --quant pq".to_string());
            }
            if !matches!(layout.as_str(), "aligned" | "packed") {
                return Err(format!("unknown --layout `{layout}`"));
            }
            if !matches!(graph_layout.as_str(), "csr" | "flat") {
                return Err(format!("unknown --graph-layout `{graph_layout}`"));
            }
            let sharded_dir: Option<String> =
                args.get_opt("sharded").map_err(|e| e.to_string())?;
            let nprobe: Option<usize> = args.get_opt("nprobe").map_err(|e| e.to_string())?;
            if nprobe.is_some() && sharded_dir.is_none() {
                return Err("--nprobe requires --sharded".to_string());
            }
            if nprobe == Some(0) {
                return Err("--nprobe must be at least 1".to_string());
            }
            let fanout: Option<usize> =
                args.get_opt("fanout-workers").map_err(|e| e.to_string())?;
            if fanout.is_some() && sharded_dir.is_none() {
                return Err("--fanout-workers requires --sharded".to_string());
            }
            if let Some(w) = fanout {
                gass_core::set_fanout_workers(w);
            }
            let queries = persist::open_store(Path::new(
                args.require("queries").map_err(|e| e.to_string())?,
            ))
            .map_err(|e| e.to_string())?;
            // Either one monolithic store+graph pair, or a `build --shards`
            // directory. Exact ground truth needs the base vectors either
            // way; the sharded path gathers them back out of the shards.
            let (mut index, truth): (Box<dyn AnnIndex>, Vec<Vec<gass_core::Neighbor>>) =
                match &sharded_dir {
                    Some(dir) => {
                        if args.get_opt::<String>("store").map_err(|e| e.to_string())?.is_some()
                            || args
                                .get_opt::<String>("graph")
                                .map_err(|e| e.to_string())?
                                .is_some()
                        {
                            return Err(
                                "--sharded replaces --store/--graph (the directory holds \
                                 both per shard)"
                                    .to_string(),
                            );
                        }
                        let mut idx = gass_core::ShardedIndex::load(Path::new(dir))
                            .map_err(|e| e.to_string())?;
                        if let Some(np) = nprobe {
                            idx.set_nprobe(np);
                        }
                        let base = idx.gather_store();
                        let truth = gass_data::ground_truth(&base, &queries, k);
                        if layout == "aligned" {
                            idx.align_store();
                        }
                        (Box::new(idx), truth)
                    }
                    None => {
                        let store = persist::open_store(Path::new(
                            args.require("store").map_err(|e| e.to_string())?,
                        ))
                        .map_err(|e| e.to_string())?;
                        let graph = persist::load_flat_graph(Path::new(
                            args.require("graph").map_err(|e| e.to_string())?,
                        ))
                        .map_err(|e| e.to_string())?;
                        let n = store.len();
                        let truth = gass_data::ground_truth(&store, &queries, k);
                        let mut idx = PrebuiltIndex::new(
                            store,
                            graph,
                            Box::new(RandomSeeds::new(n, 7)),
                            "loaded",
                        );
                        if layout == "aligned" {
                            idx.align_store();
                        }
                        (Box::new(idx), truth)
                    }
                };
            // A bad --pq-m fails with a clear message here rather than a
            // panic deep in the encoder.
            let spec: Option<gass_core::CodecSpec> = match (family, pq_m) {
                (Some(gass_core::CodecSpec::Pq { .. }), Some(want)) => {
                    let dim = index.dim();
                    if want == 0 || !dim.is_multiple_of(want) {
                        return Err(format!(
                            "--pq-m {want} must be a nonzero divisor of the store \
                             dimensionality {dim} (each of the m subquantizers encodes \
                             dim/m dimensions)"
                        ));
                    }
                    Some(gass_core::CodecSpec::Pq { m: Some(want) })
                }
                (f, _) => f,
            };
            let simd: Option<String> = args.get_opt("simd").map_err(|e| e.to_string())?;
            let prefetch: Option<String> =
                args.get_opt("prefetch").map_err(|e| e.to_string())?;
            let on_off = |key: &str, v: &str| match v {
                "on" => Ok(true),
                "off" => Ok(false),
                other => Err(format!("--{key} must be `on` or `off`, got `{other}`")),
            };
            // Explicit flags win; absent flags leave the env-driven
            // defaults (GASS_NO_SIMD / GASS_NO_PREFETCH) in charge.
            if let Some(v) = &simd {
                gass_core::set_simd_enabled(on_off("simd", v)?);
            }
            if let Some(v) = &prefetch {
                gass_core::set_prefetch_enabled(on_off("prefetch", v)?);
            }
            if queries.dim() != index.dim() {
                return Err(format!(
                    "query dim {} != store dim {}",
                    queries.dim(),
                    index.dim()
                ));
            }
            if graph_layout == "csr" {
                index.freeze();
            }
            if let Some(spec) = spec {
                index.quantize(spec);
            }
            if let Some(strategy) = reorder {
                index.reorder(strategy);
            }
            let counter = DistCounter::new();
            let mut params =
                QueryParams::new(k, beam).with_seed_count(seeds).with_rerank_factor(rerank);
            if let Some(t) = term {
                params = params.with_term(t);
            }
            if let Some(d) = max_dists {
                params = params.with_max_dists(d);
            }
            let t = std::time::Instant::now();
            let mut recall = 0.0;
            for (qi, row) in truth.iter().enumerate() {
                let res = index.search(queries.get(qi as u32), &params, &counter);
                recall += gass_eval::recall_at_k(row, &res.neighbors, k);
            }
            let nq = truth.len().max(1);
            println!(
                "queries={} k={k} L={beam}  kernel={} store={layout} graph={graph_layout} \
                 prefetch={} quant={} reorder={} term={} max-dists={}",
                nq,
                gass_core::simd_backend(),
                if gass_core::prefetch_enabled() { "on" } else { "off" },
                spec.map_or_else(|| "none".to_string(), |s| s.to_string()),
                reorder.unwrap_or_default(),
                params.term,
                params.max_dists,
            );
            println!(
                "recall@{k}={:.4}  dists/query={} (u8={} f32={})  ms/query={:.3}",
                recall / nq as f64,
                counter.get() / nq as u64,
                counter.get_u8() / nq as u64,
                counter.get_f32() / nq as u64,
                t.elapsed().as_secs_f64() * 1e3 / nq as f64
            );
            Ok(())
        }
        "serve" => {
            // Serving-config flags first: bad invocations must fail before
            // any index is built or loaded.
            let host: String =
                args.get_or("host", "127.0.0.1".into()).map_err(|e| e.to_string())?;
            let port: u16 = args.get_or("port", 0).map_err(|e| e.to_string())?;
            let workers: usize = args.get_or("workers", 0).map_err(|e| e.to_string())?;
            let max_batch: usize = args.get_or("max-batch", 16).map_err(|e| e.to_string())?;
            let max_wait_us: u64 =
                args.get_or("max-wait-us", 200).map_err(|e| e.to_string())?;
            let queue_depth: usize =
                args.get_or("queue-depth", 1024).map_err(|e| e.to_string())?;
            if max_batch == 0 {
                return Err("--max-batch must be at least 1".to_string());
            }
            if queue_depth == 0 {
                return Err(
                    "--queue-depth must be at least 1 (admission control needs room to \
                     admit anything)"
                        .to_string(),
                );
            }
            let seed: u64 = args.get_or("seed", 42).map_err(|e| e.to_string())?;
            let threads: Option<usize> = args.get_opt("threads").map_err(|e| e.to_string())?;
            let rerank: usize = args.get_or("rerank-factor", 4).map_err(|e| e.to_string())?;
            if rerank == 0 {
                return Err("--rerank-factor must be at least 1".to_string());
            }
            // Quant/reorder mirror `query`, except absent --quant also
            // defers to the GASS_QUANT override so the CI matrix legs
            // exercise compressed serving without flag plumbing.
            let quant: Option<String> = args.get_opt("quant").map_err(|e| e.to_string())?;
            let pq_m: Option<usize> = args.get_opt("pq-m").map_err(|e| e.to_string())?;
            let family: Option<gass_core::CodecSpec> = match quant.as_deref() {
                None => gass_core::quant_forced(),
                Some("none") => None,
                Some(name) => Some(name.parse().map_err(|e: String| format!("--quant: {e}"))?),
            };
            if pq_m.is_some() && !matches!(family, Some(gass_core::CodecSpec::Pq { .. })) {
                return Err("--pq-m requires --quant pq".to_string());
            }
            let reorder: Option<gass_core::ReorderStrategy> =
                match args.get_opt::<String>("reorder").map_err(|e| e.to_string())? {
                    Some(v) => Some(v.parse().map_err(|e: String| format!("--reorder: {e}"))?),
                    None => gass_core::reorder_forced(),
                };
            // --term/--max-dists force a server-side termination policy on
            // every query; absent both, clients keep whatever GASS_TERM /
            // GASS_MAX_DISTS dictate (folded in at QueryParams::new).
            let term_policy: Option<gass_core::TerminationPolicy> =
                match args.get_opt::<String>("term").map_err(|e| e.to_string())? {
                    Some(v) => Some(v.parse().map_err(|e: String| format!("--term: {e}"))?),
                    None => None,
                };
            let term_max_dists: Option<usize> =
                args.get_opt("max-dists").map_err(|e| e.to_string())?;
            let term: Option<gass_core::Termination> =
                if term_policy.is_some() || term_max_dists.is_some() {
                    Some(gass_core::Termination {
                        policy: term_policy.unwrap_or_default(),
                        max_dists: term_max_dists.unwrap_or(0),
                    })
                } else {
                    None
                };

            let sharded_dir: Option<String> =
                args.get_opt("sharded").map_err(|e| e.to_string())?;
            let nprobe: Option<usize> = args.get_opt("nprobe").map_err(|e| e.to_string())?;
            if nprobe.is_some() && sharded_dir.is_none() {
                return Err("--nprobe requires --sharded".to_string());
            }
            if nprobe == Some(0) {
                return Err("--nprobe must be at least 1".to_string());
            }
            let fanout: Option<usize> =
                args.get_opt("fanout-workers").map_err(|e| e.to_string())?;
            if fanout.is_some() && sharded_dir.is_none() {
                return Err("--fanout-workers requires --sharded".to_string());
            }
            if let Some(w) = fanout {
                gass_core::set_fanout_workers(w);
            }

            let (mut index, label): (Box<dyn AnnIndex>, String) = match &sharded_dir {
                Some(dir) => {
                    if args.get_opt::<String>("store").map_err(|e| e.to_string())?.is_some()
                        || args.get_opt::<String>("graph").map_err(|e| e.to_string())?.is_some()
                    {
                        return Err(
                            "--sharded replaces --store/--graph (the directory holds both \
                             per shard)"
                                .to_string(),
                        );
                    }
                    let mut idx = gass_core::ShardedIndex::load(Path::new(dir))
                        .map_err(|e| e.to_string())?;
                    if let Some(np) = nprobe {
                        idx.set_nprobe(np);
                    }
                    let label = format!(
                        "sharded ({} shards, nprobe {})",
                        idx.num_shards(),
                        idx.nprobe()
                    );
                    idx.align_store();
                    (Box::new(idx), label)
                }
                None => {
                    let store_path = args.require("store").map_err(|e| e.to_string())?;
                    let store = persist::open_store(Path::new(store_path))
                        .map_err(|e| e.to_string())?;
                    let graph_path: Option<String> =
                        args.get_opt("graph").map_err(|e| e.to_string())?;
                    let (graph, label) = match graph_path {
                        Some(p) => {
                            let g = persist::load_flat_graph(Path::new(&p))
                                .map_err(|e| e.to_string())?;
                            if g.num_nodes() != store.len() {
                                return Err(format!(
                                    "graph has {} nodes but the store has {} vectors",
                                    g.num_nodes(),
                                    store.len()
                                ));
                            }
                            (g, "loaded".to_string())
                        }
                        None => {
                            let method: String = args
                                .get_or("method", "hnsw".into())
                                .map_err(|e| e.to_string())?;
                            eprintln!("building {method} over {} vectors...", store.len());
                            (build_graph(&method, store.clone(), seed, threads)?, method)
                        }
                    };
                    let n = store.len();
                    let mut idx = PrebuiltIndex::new(
                        store,
                        graph,
                        Box::new(RandomSeeds::per_query(n, 7)),
                        "serve",
                    );
                    idx.align_store();
                    (Box::new(idx), label)
                }
            };
            let n = index.num_vectors();
            let dim = index.dim();
            let spec: Option<gass_core::CodecSpec> = match (family, pq_m) {
                (Some(gass_core::CodecSpec::Pq { .. }), Some(want)) => {
                    if want == 0 || !dim.is_multiple_of(want) {
                        return Err(format!(
                            "--pq-m {want} must be a nonzero divisor of the store \
                             dimensionality {dim}"
                        ));
                    }
                    Some(gass_core::CodecSpec::Pq { m: Some(want) })
                }
                (f, _) => f,
            };
            // Always the serving configuration: aligned store, frozen CSR.
            index.freeze();
            if let Some(spec) = spec {
                index.quantize(spec);
            }
            if let Some(strategy) = reorder {
                index.reorder(strategy);
            }
            let cfg = gass_serve::ServeConfig {
                host,
                port,
                workers,
                max_batch,
                max_wait_us,
                queue_depth,
                term,
            };
            let handle = gass_serve::serve(std::sync::Arc::from(index), cfg)
                .map_err(|e| format!("bind failed: {e}"))?;
            println!(
                "serving {label} (n={n}, dim={dim}) quant={} reorder={} \
                 workers={workers} max_batch={max_batch} max_wait_us={max_wait_us} \
                 queue_depth={queue_depth}",
                spec.map_or_else(|| "none".to_string(), |s| s.to_string()),
                reorder.unwrap_or_default(),
            );
            // The readiness line clients wait for; flush so piped readers
            // (the e2e test) see it immediately.
            println!("listening on {}", handle.addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            while !handle.is_shutting_down() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            handle.join();
            println!("server drained and exited");
            Ok(())
        }
        "info" => {
            let file = args.require("file").map_err(|e| e.to_string())?;
            let path = Path::new(file);
            // A `build --shards` directory: describe through its table.
            if path.is_dir() {
                let table = persist::load_shard_table(&path.join("shards.gass"))
                    .map_err(|e| format!("{file}: not a sharded index directory ({e})"))?;
                let total: usize = table.shard_ids.iter().map(Vec::len).sum();
                println!(
                    "{file}: sharded index, {} shards x {}d, {} vectors total, nprobe {}",
                    table.shard_ids.len(),
                    table.dim,
                    total,
                    table.nprobe
                );
                return Ok(());
            }
            // Mapped sections describe themselves from the fixed header
            // without reading the (possibly huge) row data.
            match persist::peek_kind(path) {
                Ok(persist::KIND_MSTORE) => {
                    let store = persist::open_store(path).map_err(|e| e.to_string())?;
                    println!(
                        "{file}: vector store (mapped layout), {} x {}d",
                        store.len(),
                        store.dim()
                    );
                    return Ok(());
                }
                Ok(persist::KIND_SHARDS) => {
                    let table = persist::load_shard_table(path).map_err(|e| e.to_string())?;
                    let total: usize = table.shard_ids.iter().map(Vec::len).sum();
                    println!(
                        "{file}: shard table, {} shards x {}d, {} vectors total, nprobe {}",
                        table.shard_ids.len(),
                        table.dim,
                        total,
                        table.nprobe
                    );
                    return Ok(());
                }
                _ => {}
            }
            let raw = std::fs::read(file).map_err(|e| e.to_string())?;
            if let Ok(store) = persist::decode_store(bytes_of(&raw)) {
                println!("{file}: vector store, {} x {}d", store.len(), store.dim());
                return Ok(());
            }
            match persist::decode_flat_graph(bytes_of(&raw)) {
                Ok(graph) => {
                    println!(
                        "{file}: flat graph, {} nodes, {} edges, avg degree {:.1}, max degree {}",
                        graph.num_nodes(),
                        graph.num_edges(),
                        graph.avg_degree(),
                        graph.max_degree()
                    );
                    Ok(())
                }
                Err(e) => Err(format!("{file}: not a GASS artifact ({e})")),
            }
        }
        other => Err(format!("unknown command `{other}` (try `gass help`)")),
    }
}

fn bytes_of(raw: &[u8]) -> bytes::Bytes {
    bytes::Bytes::copy_from_slice(raw)
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
