//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) slice of the `rand` API the GASS crates use:
//! `rngs::SmallRng`, [`SeedableRng::seed_from_u64`], [`RngExt::random_range`]
//! over integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same family
//! the real crate uses on 64-bit targets. Streams are deterministic per
//! seed but are not byte-compatible with any particular `rand` release;
//! nothing in this repo depends on a specific stream, only on seeds being
//! reproducible.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface (subset of `rand::Rng` / `RngCore`).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply is overkill here; modulo
                // bias over a 64-bit draw is negligible for the spans the
                // workspace uses (all far below 2^48).
                let draw = rng.next_u64() as u128 % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        // 24 mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods (subset of the real crate's `Rng` ext
/// surface, named `RngExt` as the workspace imports it).
pub trait RngExt: Rng {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0f64..1.0) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, high-quality 64-bit PRNG.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngExt};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let mut d = SmallRng::seed_from_u64(7);
        let same = (0..64)
            .filter(|_| c.random_range(0..u64::MAX) == d.random_range(0..u64::MAX))
            .count();
        assert!(same < 8, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(d > 0.0 && d < 1.0);
            let i = rng.random_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn integer_draws_cover_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move elements");
    }
}
