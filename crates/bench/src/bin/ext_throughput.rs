//! Extension experiment: concurrent query throughput of the scalable
//! methods — the wall-clock companion to Figure 16. ELPIS's intra-query
//! parallelism trades per-query latency for thread occupancy; this
//! harness shows how each method's QPS scales with inter-query
//! parallelism instead.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_throughput
//! ```

use gass_bench::{num_queries, results_dir, tiers};
use gass_core::index::QueryParams;
use gass_data::DatasetKind;
use gass_eval::{measure_throughput, Table};
use gass_graphs::{build_method, MethodKind};

fn main() {
    let n = tiers()[1].n;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 333);
    println!("Extension: concurrent QPS, Deep (n={n}), L=80, k=10\n");

    let mut table = Table::new(vec!["method", "threads", "qps", "p50_us", "p99_us"]);
    let params = QueryParams::new(10, 80).with_seed_count(16);
    for kind in MethodKind::scalable() {
        let built = build_method(kind, base.clone(), 333);
        for threads in [1usize, 2, 4, 8] {
            let rep = measure_throughput(built.index.as_ref(), &queries, &params, threads, 4);
            table.row(vec![
                kind.name(),
                threads.to_string(),
                format!("{:.0}", rep.qps),
                format!("{:.1}", rep.p50_us),
                format!("{:.1}", rep.p99_us),
            ]);
        }
        eprintln!("done: {}", kind.name());
    }
    table.emit(&results_dir(), "ext_throughput").expect("write results");
    println!(
        "Inter-query parallelism favors single-threaded searchers (HNSW, \
         Vamana); ELPIS's intra-query threads compete with the pool, which \
         is why the paper positions its parallelism for latency, not QPS."
    );
}
