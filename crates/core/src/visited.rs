//! Epoch-versioned visited sets.
//!
//! Beam search must test "have I touched this node before?" once per edge
//! traversal. A `HashSet<u32>` pays hashing and allocation on the hot path;
//! the standard trick (used by hnswlib and ParlayANN alike) is a `Vec<u32>`
//! of version stamps: marking is a store, membership is a load, and clearing
//! all marks is a single epoch increment.

/// Reusable visited set over node ids `0..n`.
#[derive(Clone, Debug)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Creates a set for ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self { stamps: vec![0; n], epoch: 1 }
    }

    /// Clears all marks in `O(1)` (amortized; a full reset happens only on
    /// epoch wraparound, once every `u32::MAX` generations).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Grows the id space to at least `n`, preserving current marks.
    pub fn resize(&mut self, n: usize) {
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        }
    }

    /// Capacity in ids.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }

    /// Marks `id` visited. Returns `true` if it was *newly* marked.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamps[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// `true` if `id` is marked in the current epoch.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.stamps[id as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut v = VisitedSet::new(4);
        assert!(!v.contains(2));
        assert!(v.insert(2));
        assert!(v.contains(2));
        assert!(!v.insert(2));
    }

    #[test]
    fn clear_resets_in_constant_time() {
        let mut v = VisitedSet::new(3);
        v.insert(0);
        v.insert(1);
        v.clear();
        assert!(!v.contains(0));
        assert!(!v.contains(1));
        assert!(v.insert(0));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut v = VisitedSet::new(2);
        v.insert(0);
        // Force many epochs; marks from old epochs must never leak.
        for _ in 0..1000 {
            v.clear();
            assert!(!v.contains(0));
            assert!(v.insert(0));
        }
    }

    #[test]
    fn resize_preserves_marks() {
        let mut v = VisitedSet::new(2);
        v.insert(1);
        v.resize(10);
        assert!(v.contains(1));
        assert!(!v.contains(9));
        assert!(v.insert(9));
    }
}
