//! NNDescent — the Neighborhood Propagation (NP) primitive (Dong et al.),
//! used by KGraph, EFANNA, and (through their base graphs) DPG, NSG and
//! SSG.
//!
//! Starting from arbitrary candidate neighbor lists, each iteration
//! proposes, for every node, the neighbors of its neighbors (including
//! reverse neighbors), keeping the `k` closest. The driving observation:
//! "a neighbor of my neighbor is likely my neighbor". Empirical cost is
//! about `O(n^1.14)` per the paper; we additionally cap per-node join work
//! with `sample_size` exactly as the reference implementation does.

use gass_core::distance::Space;
use gass_core::neighbor::Neighbor;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Mutable k-NN-graph state refined by NNDescent: one bounded, sorted
/// neighbor list per node.
#[derive(Clone, Debug)]
pub struct KnnGraphState {
    lists: Vec<Vec<Neighbor>>,
    k: usize,
}

impl KnnGraphState {
    /// Initializes every node with `k` random (scored) neighbors.
    pub fn random_init(space: Space<'_>, k: usize, seed: u64) -> Self {
        let n = space.len();
        assert!(n > 1, "NNDescent needs at least two points");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut lists = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let mut list: Vec<Neighbor> = Vec::with_capacity(k);
            while list.len() < k.min(n - 1) {
                let v = rng.random_range(0..n as u32);
                if v != u && !list.iter().any(|x| x.id == v) {
                    list.push(Neighbor::new(v, space.dist(u, v)));
                }
            }
            list.sort_unstable();
            lists.push(list);
        }
        Self { lists, k }
    }

    /// Initializes from externally supplied candidate lists (EFANNA seeds
    /// NNDescent with K-D-tree candidates). Lists are scored, deduplicated
    /// and truncated to `k`.
    pub fn from_candidates(space: Space<'_>, k: usize, candidates: Vec<Vec<u32>>) -> Self {
        assert_eq!(candidates.len(), space.len());
        let lists = candidates
            .into_iter()
            .enumerate()
            .map(|(u, cand)| {
                let u = u as u32;
                let mut list: Vec<Neighbor> = cand
                    .into_iter()
                    .filter(|&v| v != u)
                    .map(|v| Neighbor::new(v, space.dist(u, v)))
                    .collect();
                list.sort_unstable();
                list.dedup_by_key(|n| n.id);
                list.truncate(k);
                list
            })
            .collect();
        Self { lists, k }
    }

    /// Fills lists shorter than `k` with random scored neighbors — the
    /// reference bootstrap behaviour when tree/hash candidates come up
    /// short (an all-empty list can never grow through joins alone).
    pub fn pad_random(&mut self, space: Space<'_>, seed: u64) {
        let n = self.lists.len();
        if n < 2 {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        for u in 0..n as u32 {
            let want = self.k.min(n - 1);
            let mut guard = 0;
            while self.lists[u as usize].len() < want && guard < 16 * want {
                guard += 1;
                let v = rng.random_range(0..n as u32);
                if v != u && !self.lists[u as usize].iter().any(|x| x.id == v) {
                    let cand = Neighbor::new(v, space.dist(u, v));
                    let list = &mut self.lists[u as usize];
                    let pos = list.partition_point(|x| *x < cand);
                    list.insert(pos, cand);
                }
            }
        }
    }

    /// Attempts to insert `cand` into `node`'s bounded list. Returns `true`
    /// if the list changed.
    fn try_insert(&mut self, node: u32, cand: Neighbor) -> bool {
        if cand.id == node {
            return false;
        }
        let list = &mut self.lists[node as usize];
        if list.len() == self.k && cand >= *list.last().expect("non-empty at capacity") {
            return false;
        }
        if list.iter().any(|n| n.id == cand.id) {
            return false;
        }
        let pos = list.partition_point(|n| *n < cand);
        list.insert(pos, cand);
        if list.len() > self.k {
            list.pop();
        }
        true
    }

    /// Forward + reverse adjacency snapshot, sampled to `sample_size`.
    /// Taken *before* any join mutation, it fixes the iteration's pair set.
    fn joined_snapshot(&self, sample_size: usize, seed: u64) -> Vec<Vec<u32>> {
        let n = self.lists.len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut joined: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, list) in self.lists.iter().enumerate() {
            for nb in list {
                joined[u].push(nb.id);
                joined[nb.id as usize].push(u as u32);
            }
        }
        for list in joined.iter_mut() {
            list.sort_unstable();
            list.dedup();
            while list.len() > sample_size {
                let drop = rng.random_range(0..list.len());
                list.swap_remove(drop);
            }
        }
        joined
    }

    /// One NNDescent iteration. Returns the number of list updates
    /// (reference implementations stop when this falls below `δ·n·k`).
    pub fn iterate(&mut self, space: Space<'_>, sample_size: usize, seed: u64) -> usize {
        let joined = self.joined_snapshot(sample_size, seed);

        // Local join: every pair within a node's joined neighborhood are
        // potential neighbors of each other.
        let mut updates = 0usize;
        for neighborhood in &joined {
            for i in 0..neighborhood.len() {
                for j in (i + 1)..neighborhood.len() {
                    let (x, y) = (neighborhood[i], neighborhood[j]);
                    if x == y {
                        continue;
                    }
                    let d = space.dist(x, y);
                    if self.try_insert(x, Neighbor::new(y, d)) {
                        updates += 1;
                    }
                    if self.try_insert(y, Neighbor::new(x, d)) {
                        updates += 1;
                    }
                }
            }
        }
        updates
    }

    /// [`Self::iterate`] with the join distances computed across `threads`
    /// workers. The snapshot fixes the pair set before the join starts and
    /// distances are pure, so computing them in parallel and applying the
    /// inserts serially in pair order yields the **bit-identical** lists
    /// (and the identical distance count) as the serial iteration at any
    /// thread count.
    pub fn iterate_with(
        &mut self,
        space: Space<'_>,
        sample_size: usize,
        seed: u64,
        threads: usize,
    ) -> usize {
        if threads <= 1 {
            return self.iterate(space, sample_size, seed);
        }
        let joined = self.joined_snapshot(sample_size, seed);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for neighborhood in &joined {
            for i in 0..neighborhood.len() {
                for j in (i + 1)..neighborhood.len() {
                    let (x, y) = (neighborhood[i], neighborhood[j]);
                    if x != y {
                        pairs.push((x, y));
                    }
                }
            }
        }
        let dists: Vec<f32> = gass_core::par_map(threads, pairs.len(), |i| {
            let (x, y) = pairs[i];
            space.dist(x, y)
        });
        let mut updates = 0usize;
        for (&(x, y), &d) in pairs.iter().zip(&dists) {
            if self.try_insert(x, Neighbor::new(y, d)) {
                updates += 1;
            }
            if self.try_insert(y, Neighbor::new(x, d)) {
                updates += 1;
            }
        }
        updates
    }

    /// Runs up to `max_iters` iterations, stopping early when an iteration
    /// updates fewer than `delta * n * k` entries (the standard
    /// convergence rule). Returns iterations executed.
    pub fn run(
        &mut self,
        space: Space<'_>,
        max_iters: usize,
        sample_size: usize,
        delta: f64,
        seed: u64,
    ) -> usize {
        self.run_with(space, max_iters, sample_size, delta, seed, 1)
    }

    /// [`Self::run`] across `threads` workers (see [`Self::iterate_with`];
    /// the refined graph is identical at any thread count).
    pub fn run_with(
        &mut self,
        space: Space<'_>,
        max_iters: usize,
        sample_size: usize,
        delta: f64,
        seed: u64,
        threads: usize,
    ) -> usize {
        let threshold = (delta * self.lists.len() as f64 * self.k as f64).ceil() as usize;
        for it in 0..max_iters {
            let updates =
                self.iterate_with(space, sample_size, seed.wrapping_add(it as u64), threads);
            if updates <= threshold {
                return it + 1;
            }
        }
        max_iters
    }

    /// Borrow the current neighbor lists.
    pub fn lists(&self) -> &[Vec<Neighbor>] {
        &self.lists
    }

    /// Consume into plain neighbor lists.
    pub fn into_lists(self) -> Vec<Vec<Neighbor>> {
        self.lists
    }

    /// Recall of the current lists against exact `k`-NN (test/diagnostic
    /// helper; exact lists computed by brute force, uncounted).
    pub fn graph_recall(&self, space: Space<'_>) -> f64 {
        let n = self.lists.len();
        let mut hit = 0usize;
        let mut total = 0usize;
        for u in 0..n as u32 {
            let mut exact: Vec<Neighbor> = (0..n as u32)
                .filter(|&v| v != u)
                .map(|v| {
                    Neighbor::new(
                        v,
                        gass_core::l2_sq(space.store().get(u), space.store().get(v)),
                    )
                })
                .collect();
            exact.sort_unstable();
            exact.truncate(self.k);
            let approx = &self.lists[u as usize];
            total += exact.len();
            hit += exact.iter().filter(|e| approx.iter().any(|a| a.id == e.id)).count();
        }
        hit as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;
    use gass_data::synth::deep_like;

    #[test]
    fn random_init_lists_are_valid() {
        let store = deep_like(50, 1);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let state = KnnGraphState::random_init(space, 5, 2);
        for (u, list) in state.lists().iter().enumerate() {
            assert_eq!(list.len(), 5);
            assert!(list.iter().all(|n| n.id != u as u32));
            for w in list.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn iterations_improve_graph_recall() {
        let store = deep_like(200, 3);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut state = KnnGraphState::random_init(space, 10, 4);
        let before = state.graph_recall(space);
        state.run(space, 8, 20, 0.001, 5);
        let after = state.graph_recall(space);
        assert!(
            after > before + 0.2,
            "NNDescent should substantially improve recall: {before} -> {after}"
        );
        assert!(after > 0.8, "converged recall too low: {after}");
    }

    #[test]
    fn convergence_stops_early() {
        let store = deep_like(80, 6);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut state = KnnGraphState::random_init(space, 8, 7);
        let iters = state.run(space, 50, 16, 0.001, 8);
        assert!(iters < 50, "should converge well before 50 iterations: {iters}");
    }

    #[test]
    fn from_candidates_scores_and_truncates() {
        let store = VectorStore::from_flat(1, vec![0.0, 1.0, 2.0, 3.0]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let cands = vec![
            vec![1, 2, 3, 1, 0], // self + duplicate must be dropped
            vec![0],
            vec![3],
            vec![2],
        ];
        let state = KnnGraphState::from_candidates(space, 2, cands);
        assert_eq!(state.lists()[0].len(), 2);
        assert_eq!(state.lists()[0][0].id, 1);
        assert_eq!(state.lists()[0][1].id, 2);
    }

    #[test]
    fn parallel_join_is_bit_identical_to_serial() {
        let store = deep_like(120, 11);
        let counter_s = DistCounter::new();
        let space_s = Space::new(&store, &counter_s);
        let mut serial = KnnGraphState::random_init(space_s, 8, 3);
        let counter_p = DistCounter::new();
        let space_p = Space::new(&store, &counter_p);
        let mut parallel = KnnGraphState::random_init(space_p, 8, 3);
        let is = serial.run(space_s, 5, 16, 0.001, 9);
        let ip = parallel.run_with(space_p, 5, 16, 0.001, 9, 4);
        assert_eq!(is, ip, "iteration counts diverged");
        assert_eq!(counter_s.get(), counter_p.get(), "distance counts diverged");
        for (a, b) in serial.lists().iter().zip(parallel.lists()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
        }
    }

    #[test]
    fn distance_calls_are_counted() {
        let store = deep_like(40, 9);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut state = KnnGraphState::random_init(space, 4, 1);
        let base = counter.get();
        assert!(base > 0);
        state.iterate(space, 8, 2);
        assert!(counter.get() > base, "join phase must count distances");
    }
}
