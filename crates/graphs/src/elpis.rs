//! **ELPIS** — Divide-and-Conquer with II+ND inside each partition: a
//! Hercules (EAPCA) tree splits the dataset into leaves; an HNSW graph is
//! built *in parallel* on every leaf; at query time the leaves are ranked
//! by EAPCA lower-bounding distance, the best leaf is searched first, and
//! only leaves whose lower bound can still improve the running k-th best
//! answer are searched afterwards (up to `nprobe` leaves, optionally
//! concurrently).

use crate::common::BuildReport;
use crate::hnsw::{HnswIndex, HnswParams};
use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, IndexStats, QueryParams};
use gass_core::neighbor::Neighbor;
use gass_core::reorder::ReorderStrategy;
use gass_core::search::{SearchResult, SearchStats};
use gass_core::store::VectorStore;
use gass_trees::eapca::HerculesTree;

/// ELPIS construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ElpisParams {
    /// EAPCA segments for the Hercules tree.
    pub segments: usize,
    /// Maximum Hercules leaf size (vectors per partition graph).
    pub leaf_size: usize,
    /// HNSW parameters for each leaf graph. ELPIS gets away with a smaller
    /// `M`/`ef` than a monolithic HNSW — that is its indexing-footprint
    /// advantage (paper Fig. 8).
    pub hnsw: HnswParams,
    /// Maximum number of leaves searched per query (`nprobe`).
    pub nprobe: usize,
    /// Search candidate leaves concurrently (ELPIS answers a single query
    /// with multiple threads — its 1B-scale advantage in Fig. 16).
    pub parallel_query: bool,
    /// Construction worker threads (0 = all available cores). Leaf graphs
    /// are independent with derived per-leaf seeds, so any thread count
    /// builds the identical index.
    pub threads: usize,
}

impl ElpisParams {
    /// Small-scale defaults: 8 segments, 256-vector leaves, nprobe 4.
    pub fn small() -> Self {
        Self {
            segments: 8,
            leaf_size: 256,
            hnsw: HnswParams { m: 8, ef_construction: 48, seed: 42, threads: 1 },
            nprobe: 4,
            parallel_query: false,
            threads: 0,
        }
    }
}

struct Leaf {
    /// Global ids, parallel to the leaf HNSW's local ids.
    ids: Vec<u32>,
    index: HnswIndex,
}

/// A built ELPIS index.
pub struct ElpisIndex {
    dim: usize,
    n: usize,
    tree: HerculesTree,
    leaves: Vec<Leaf>,
    params: ElpisParams,
    build: BuildReport,
    raw_bytes: usize,
}

impl ElpisIndex {
    /// Builds the index: Hercules partition, then one HNSW per leaf, built
    /// in parallel.
    pub fn build(store: VectorStore, params: ElpisParams) -> Self {
        assert!(store.len() >= 4, "need at least four vectors");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let segments = params.segments.min(store.dim());
        let tree = HerculesTree::build(&store, segments, params.leaf_size);

        // Build leaf graphs in parallel; each leaf gets a deterministic
        // seed derived from its position.
        let threads = gass_core::effective_threads(params.threads);
        let leaves: Vec<Leaf> = gass_core::par_map(threads, tree.num_leaves(), |li| {
            let ids = tree.leaves()[li].ids.clone();
            let sub = store.subset(&ids);
            let index = if sub.len() >= 2 {
                HnswIndex::build(
                    sub,
                    HnswParams {
                        seed: params.hnsw.seed.wrapping_add(li as u64),
                        ..params.hnsw
                    },
                )
            } else {
                // A singleton leaf still needs a searchable index;
                // pad by duplicating the lone vector (the duplicate
                // maps back to the same global id).
                let mut padded = store.subset(&ids);
                padded.push(store.get(ids[0]));
                HnswIndex::build(padded, params.hnsw)
            };
            counter.add(index.build_report().dist_calcs);
            Leaf { ids, index }
        });

        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let raw_bytes = store.heap_bytes();
        Self { dim: store.dim(), n: store.len(), tree, leaves, params, build, raw_bytes }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// Number of partitions.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Search parameters (nprobe etc.).
    pub fn params(&self) -> &ElpisParams {
        &self.params
    }

    fn search_leaf(
        &self,
        li: usize,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> (Vec<Neighbor>, SearchStats) {
        let leaf = &self.leaves[li];
        let res = leaf.index.search(query, params, counter);
        let mapped = res
            .neighbors
            .into_iter()
            .map(|n| Neighbor::new(leaf.ids[(n.id as usize).min(leaf.ids.len() - 1)], n.dist))
            .collect();
        (mapped, res.stats)
    }
}

impl AnnIndex for ElpisIndex {
    fn name(&self) -> String {
        "ELPIS".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let qs = self.tree.summarize_query(query);
        let order = self.tree.leaf_order(&qs);
        let mut stats = SearchStats::default();
        let mut merged: Vec<Neighbor> = Vec::new();

        // Initial leaf.
        let (first, st) = self.search_leaf(order[0].0, query, params, counter);
        stats.hops += st.hops;
        stats.evaluated += st.evaluated;
        merged.extend(first);
        merged.sort_unstable();
        merged.dedup_by_key(|n| n.id);

        let kth = |m: &Vec<Neighbor>| -> f32 {
            m.get(params.k.saturating_sub(1)).map_or(f32::INFINITY, |n| n.dist)
        };

        // Candidate leaves whose lower bound can still improve the answer.
        let mut bound = kth(&merged);
        let candidates: Vec<usize> = order[1..]
            .iter()
            .filter(|&&(_, lb)| lb < bound)
            .take(self.params.nprobe.saturating_sub(1))
            .map(|&(li, _)| li)
            .collect();

        if self.params.parallel_query && candidates.len() > 1 {
            let results: Vec<(Vec<Neighbor>, SearchStats)> =
                gass_core::par_map(candidates.len(), candidates.len(), |i| {
                    self.search_leaf(candidates[i], query, params, counter)
                });
            for (neighbors, st) in results {
                stats.hops += st.hops;
                stats.evaluated += st.evaluated;
                merged.extend(neighbors);
            }
        } else {
            for li in candidates {
                // Re-check the bound as answers improve (sequential mode
                // prunes harder than parallel mode, same results).
                let lb = self.tree.leaves()[li]
                    .lower_bound(&qs, &segment_lengths(self.dim, self.tree.segments()));
                if lb >= bound {
                    continue;
                }
                let (neighbors, st) = self.search_leaf(li, query, params, counter);
                stats.hops += st.hops;
                stats.evaluated += st.evaluated;
                merged.extend(neighbors);
                merged.sort_unstable();
                merged.dedup_by_key(|n| n.id);
                bound = kth(&merged);
            }
        }

        merged.sort_unstable();
        merged.dedup_by_key(|n| n.id);
        merged.truncate(params.k);
        SearchResult { neighbors: merged, stats }
    }

    fn freeze(&mut self) {
        // ELPIS has no monolithic graph; freezing delegates to every
        // per-leaf HNSW so all partition traversals run over CSR.
        for leaf in &mut self.leaves {
            leaf.index.freeze();
        }
    }

    fn is_frozen(&self) -> bool {
        self.leaves.iter().all(|l| l.index.is_frozen())
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        // No monolithic store either: quantization delegates to every
        // per-leaf HNSW, which encodes its leaf-local vector copy.
        for leaf in &mut self.leaves {
            leaf.index.quantize(spec);
        }
    }

    fn is_quantized(&self) -> bool {
        self.leaves.iter().all(|l| l.index.is_quantized())
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        // Each leaf HNSW is relabeled independently; leaf search results
        // come back in leaf-local *original* ids, so the `leaf.ids`
        // global translation stays valid untouched.
        for leaf in &mut self.leaves {
            leaf.index.reorder(strategy);
        }
    }

    fn is_reordered(&self) -> bool {
        self.leaves.iter().all(|l| l.index.is_reordered())
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.leaves.first().map_or(ReorderStrategy::None, |l| l.index.reorder_strategy())
    }

    fn stats(&self) -> IndexStats {
        let mut s = IndexStats { nodes: self.n, ..Default::default() };
        for leaf in &self.leaves {
            let ls = leaf.index.stats();
            s.edges += ls.edges;
            s.graph_bytes += ls.graph_bytes;
            s.aux_bytes += ls.aux_bytes;
            s.max_degree = s.max_degree.max(ls.max_degree);
        }
        // Tree + duplicated leaf stores count as auxiliary overhead; the
        // global raw store is reported separately by the harness.
        s.aux_bytes += self.tree.heap_bytes();
        s.aux_bytes += self.raw_bytes; // leaf-local vector copies
        s.avg_degree = if self.n > 0 { s.edges as f64 / self.n as f64 } else { 0.0 };
        s
    }
}

fn segment_lengths(dim: usize, segments: usize) -> Vec<usize> {
    let base = dim / segments;
    let mut lens = vec![base; segments];
    *lens.last_mut().expect("segments > 0") += dim - base * segments;
    lens
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    fn recall(idx: &ElpisIndex, base: &VectorStore, queries: &VectorStore, l: usize) -> f64 {
        let gt = ground_truth(base, queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, l);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        hit as f64 / (10 * gt.len()) as f64
    }

    #[test]
    fn elpis_high_recall() {
        let base = deep_like(800, 1);
        let queries = deep_like(20, 2);
        let idx = ElpisIndex::build(base.clone(), ElpisParams::small());
        assert!(idx.num_leaves() >= 2, "partitioning must occur");
        let r = recall(&idx, &base, &queries, 48);
        assert!(r > 0.9, "ELPIS recall too low: {r}");
    }

    #[test]
    fn parallel_query_matches_sequential_recall() {
        let base = deep_like(600, 3);
        let queries = deep_like(10, 4);
        let seq = ElpisIndex::build(base.clone(), ElpisParams::small());
        let par = ElpisIndex::build(
            base.clone(),
            ElpisParams { parallel_query: true, ..ElpisParams::small() },
        );
        let rs = recall(&seq, &base, &queries, 48);
        let rp = recall(&par, &base, &queries, 48);
        assert!(
            (rs - rp).abs() < 0.1,
            "parallel ({rp}) and sequential ({rs}) should agree closely"
        );
    }

    #[test]
    fn nprobe_one_searches_single_leaf() {
        let base = deep_like(600, 5);
        let idx =
            ElpisIndex::build(base.clone(), ElpisParams { nprobe: 1, ..ElpisParams::small() });
        let counter = DistCounter::new();
        let res = idx.search(base.get(9), &QueryParams::new(5, 32), &counter);
        // The exact vector lives in its home leaf, which ranks first.
        assert_eq!(res.neighbors[0].id, 9);
    }

    #[test]
    fn higher_nprobe_never_hurts() {
        let base = deep_like(700, 6);
        let queries = deep_like(12, 7);
        let one =
            ElpisIndex::build(base.clone(), ElpisParams { nprobe: 1, ..ElpisParams::small() });
        let four =
            ElpisIndex::build(base.clone(), ElpisParams { nprobe: 4, ..ElpisParams::small() });
        let r1 = recall(&one, &base, &queries, 48);
        let r4 = recall(&four, &base, &queries, 48);
        assert!(r4 + 1e-9 >= r1, "nprobe=4 recall {r4} below nprobe=1 {r1}");
    }
}
