//! NUMA topology sniffing and thread placement for shard-affine serving.
//!
//! On a multi-socket box, a remote-node memory access costs 1.5–2× a
//! local one, and a graph traversal is almost nothing *but* memory
//! accesses. The sharded index therefore gives every shard a **home
//! node** and (a) first-touch-allocates the shard's serving state — CSR,
//! vectors, codec rows — while pinned to that node, and (b) pins the
//! fan-out and serve workers that probe the shard to the same node, so
//! traversals walk local memory.
//!
//! Zero dependencies, like [`crate::mmap`]: topology comes from
//! `/sys/devices/system/node/node*/cpulist`, and placement uses raw-FFI
//! `sched_setaffinity`/`sched_getaffinity` through the `libc` shim.
//! First-touch pinning is deliberately chosen over `mbind`: Linux
//! allocates a faulted page on the node of the faulting CPU, so pinning
//! the thread that first writes an arena places the pages without
//! needing the `mbind`/`set_mempolicy` syscall surface (whose numbers
//! and flag sets vary across architectures).
//!
//! Everything degrades to a **graceful no-op**: on non-Linux targets, on
//! single-node hosts (every container CI runs in), when `/sys` is
//! unreadable, or when disabled via `GASS_NO_NUMA=1` /
//! [`set_numa_enabled`], every placement call returns `false` or runs
//! the closure unpinned — observationally identical, just without the
//! locality.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

const NUMA_UNINIT: u8 = 0;
const NUMA_ON: u8 = 1;
const NUMA_OFF: u8 = 2;

static NUMA_MODE: AtomicU8 = AtomicU8::new(NUMA_UNINIT);

#[cold]
fn init_numa_mode() -> u8 {
    let off = !cfg!(target_os = "linux")
        || std::env::var("GASS_NO_NUMA").is_ok_and(|v| !v.is_empty() && v != "0");
    let m = if off { NUMA_OFF } else { NUMA_ON };
    NUMA_MODE.store(m, Ordering::Relaxed);
    m
}

/// Whether placement calls will try to pin (Linux, not disabled via
/// `GASS_NO_NUMA=1` or [`set_numa_enabled`]). Read once from the
/// environment, like the SIMD/mmap toggles. Note a single-node topology
/// still makes every pin a no-op even when enabled.
#[inline]
pub fn numa_enabled() -> bool {
    let m = NUMA_MODE.load(Ordering::Relaxed);
    let m = if m == NUMA_UNINIT { init_numa_mode() } else { m };
    m == NUMA_ON
}

/// In-process override for A/B runs and fallback tests. `true` re-enables
/// placement only where the platform supports it.
pub fn set_numa_enabled(on: bool) {
    let m = if on && cfg!(target_os = "linux") { NUMA_ON } else { NUMA_OFF };
    NUMA_MODE.store(m, Ordering::Relaxed);
}

/// Parses a kernel cpulist (`"0-3,8-11,17"`) into CPU numbers. Malformed
/// fragments are skipped rather than failing the whole sniff — a partial
/// topology still beats none.
fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for tok in s.trim().split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        match tok.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse::<usize>()) {
                    cpus.extend(lo..=hi);
                }
            }
            None => {
                if let Ok(c) = tok.parse() {
                    cpus.push(c);
                }
            }
        }
    }
    cpus
}

/// Reads `/sys/devices/system/node/node*/cpulist`. Returns node→CPUs in
/// node-id order, or `None` when the hierarchy is absent or unreadable.
fn sniff_sysfs() -> Option<Vec<Vec<usize>>> {
    let dir = std::fs::read_dir("/sys/devices/system/node").ok()?;
    let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
    for entry in dir.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(id) = name.strip_prefix("node").and_then(|n| n.parse().ok()) else {
            continue;
        };
        let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
            continue;
        };
        let cpus = parse_cpulist(&list);
        if !cpus.is_empty() {
            nodes.push((id, cpus));
        }
    }
    if nodes.is_empty() {
        return None;
    }
    nodes.sort_by_key(|(id, _)| *id);
    Some(nodes.into_iter().map(|(_, cpus)| cpus).collect())
}

static TOPOLOGY: OnceLock<Vec<Vec<usize>>> = OnceLock::new();

/// The sniffed node→CPUs map. Falls back to one node holding every CPU
/// the process may use, so `num_nodes() == 1` on hosts without a NUMA
/// hierarchy (and everywhere off Linux).
fn topology() -> &'static [Vec<usize>] {
    TOPOLOGY.get_or_init(|| {
        if cfg!(target_os = "linux") {
            if let Some(nodes) = sniff_sysfs() {
                return nodes;
            }
        }
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        vec![(0..cores).collect()]
    })
}

/// Number of NUMA nodes the host exposes (≥ 1; exactly 1 on single-node
/// hosts and non-Linux targets, where placement no-ops).
pub fn num_nodes() -> usize {
    topology().len()
}

/// The home node for worker `w` under the round-robin placement the
/// fan-out pool and serve executors share: `w % num_nodes()`.
pub fn node_of_worker(w: usize) -> usize {
    w % num_nodes()
}

#[cfg(target_os = "linux")]
mod affinity {
    /// Saved affinity mask, restored by [`restore`].
    pub struct Mask(libc::cpu_set_t);

    /// Reads the calling thread's current CPU mask.
    pub fn current() -> Option<Mask> {
        let mut set = libc::cpu_set_t { bits: [0; 16] };
        // SAFETY: `set` is a properly sized, writable cpu_set_t; pid 0
        // addresses the calling thread.
        let rc = unsafe {
            libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set)
        };
        (rc == 0).then_some(Mask(set))
    }

    /// Restricts the calling thread to `cpus`. CPUs past the 1024-bit
    /// kernel ABI mask are skipped; fails (returns `false`) when nothing
    /// remains to pin to or the syscall rejects the mask.
    pub fn pin(cpus: &[usize]) -> bool {
        let mut set = libc::cpu_set_t { bits: [0; 16] };
        let mut any = false;
        for &c in cpus {
            if c < 1024 {
                set.bits[c / 64] |= 1u64 << (c % 64);
                any = true;
            }
        }
        if !any {
            return false;
        }
        // SAFETY: `set` is a fully initialized cpu_set_t with at least
        // one bit set; pid 0 addresses the calling thread.
        let rc =
            unsafe { libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) };
        rc == 0
    }

    /// Restores a mask saved by [`current`].
    pub fn restore(mask: &Mask) {
        // SAFETY: the mask came from sched_getaffinity unmodified.
        unsafe {
            libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mask.0);
        }
    }
}

/// Pins the calling thread to `node`'s CPUs (node ids wrap modulo
/// [`num_nodes`]). Returns whether a pin actually happened — `false` on
/// the no-op paths (disabled, non-Linux, single-node topology, or a
/// rejected syscall), in which case the thread's affinity is untouched.
pub fn pin_to_node(node: usize) -> bool {
    let topo = topology();
    if !numa_enabled() || topo.len() <= 1 {
        return false;
    }
    #[cfg(target_os = "linux")]
    let pinned = affinity::pin(&topo[node % topo.len()]);
    #[cfg(not(target_os = "linux"))]
    let pinned = {
        let _ = node;
        false
    };
    pinned
}

/// Runs `f` with the calling thread pinned to `node`, restoring the
/// previous affinity mask afterwards. This is the **first-touch
/// placement** primitive: allocate-and-write a shard's serving arenas
/// inside the closure and Linux places their pages on `node`. On the
/// no-op paths `f` simply runs unpinned — same result, default placement.
pub fn run_on_node<R>(node: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(target_os = "linux")]
    {
        if numa_enabled() && topology().len() > 1 {
            if let Some(saved) = affinity::current() {
                if pin_to_node(node) {
                    // Catch unwinds so a panicking closure cannot leak
                    // the narrowed mask into unrelated work.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    affinity::restore(&saved);
                    return match out {
                        Ok(r) => r,
                        Err(p) => std::panic::resume_unwind(p),
                    };
                }
                affinity::restore(&saved);
            }
        }
    }
    let _ = node;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_singles_and_junk() {
        assert_eq!(parse_cpulist("0-3,8-11"), vec![0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(" 0 , 2-3 \n"), vec![0, 2, 3]);
        assert_eq!(parse_cpulist("x,4,a-b"), vec![4]);
        assert!(parse_cpulist("").is_empty());
    }

    #[test]
    fn topology_always_has_a_node() {
        assert!(num_nodes() >= 1);
        assert!(!topology().iter().any(Vec::is_empty));
        assert_eq!(node_of_worker(num_nodes()), 0);
    }

    /// The fallback contract CI relies on: with placement disabled (and
    /// on the single-node hosts containers expose even when enabled),
    /// pinning reports no-op and `run_on_node` still runs the closure.
    #[test]
    fn placement_noops_cleanly_when_unavailable() {
        set_numa_enabled(false);
        assert!(!numa_enabled());
        assert!(!pin_to_node(0));
        assert_eq!(run_on_node(0, || 41 + 1), 42);

        set_numa_enabled(true);
        if num_nodes() == 1 {
            // The container/CI path: enabled but nothing to place on.
            assert!(!pin_to_node(0), "single-node pin must be a no-op");
        }
        assert_eq!(run_on_node(0, || "touched"), "touched");
        set_numa_enabled(true);
    }

    #[test]
    fn run_on_node_propagates_values_per_node() {
        for node in 0..num_nodes().max(2) {
            assert_eq!(run_on_node(node, || node * 10), node * 10);
        }
    }
}
