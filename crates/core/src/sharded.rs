//! Sharded serving: IVF-on-top-of-graphs for datasets past the
//! last-level cache (and past RAM, with mapped stores).
//!
//! A [`ShardedIndex`] partitions the vectors with balanced k-means
//! ([`crate::kmeans::balanced_kmeans`], trained on a stride sample, then
//! one capacity-capped assignment round over the full dataset), builds an
//! independent proximity graph per shard, and at query time ranks shards
//! by query-to-centroid distance and searches only the nearest `nprobe`
//! of them — the classic inverted-file pattern with a graph traversal
//! inside each cell. Per-shard top-`k` lists merge through one bounded
//! neighbor heap with local→global id translation.
//!
//! Why shard a graph index at all: a monolithic graph's beam search
//! scatters reads across the entire dataset, so past the LLC almost every
//! hop is a cache (or page) miss. A shard confines the traversal to a
//! working set `shards×` smaller — when a shard's rows fit in cache the
//! per-hop cost drops, and with mapped stores the untouched shards never
//! fault in at all. The price is recall: the true neighbors of a query
//! near a partition boundary may live in a shard that was not probed.
//! `nprobe` trades that risk back — `nprobe = shards` searches every
//! shard and is exactly the merged union of all per-shard searches.
//!
//! At query time the planned probes either run sequentially on the
//! caller or fan out across the resident [`crate::fanout::FanoutPool`]
//! (when `--fanout-workers`/[`crate::fanout::set_fanout_workers`] asks
//! for more than one executor), with workers pinned to each shard's home
//! NUMA node ([`crate::numa`]). Both paths merge per-shard results in
//! ranked-centroid order and are observationally identical — same
//! neighbors, same distance bits, same counter totals.
//!
//! Each shard is a full [`PrebuiltIndex`], so the entire serving ladder
//! (freeze → quantize → reorder) applies per shard unchanged. Sharded
//! state persists through [`crate::persist`] as a shard table (centroids
//! and per-shard global id lists) plus per-shard store/graph sections
//! in the mapped layout; see [`ShardedIndex::save`].

use crate::distance::{l2_sq, DistCounter, Space};
use crate::fanout;
use crate::graph::FlatGraph;
use crate::index::{AnnIndex, IndexStats, PrebuiltIndex, QueryParams};
use crate::kmeans;
use crate::neighbor::{BoundedMaxHeap, Neighbor};
use crate::numa;
use crate::par::par_map;
use crate::persist::{self, PersistError, ShardTable};
use crate::search::{SearchResult, SearchScratch, SearchStats};
use crate::seed::{RandomSeeds, SeedProvider};
use crate::store::VectorStore;
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// One reusable probe scratch per executor thread. Both the
    /// sequential probe loop and every fan-out worker search through this
    /// slot, so the visited-set/candidate allocations persist across
    /// probes, shards, and batches instead of being re-borrowed from (or
    /// freshly allocated by) each shard's [`crate::index::ScratchPool`]
    /// per probe.
    static PROBE_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new(0, 1));
}

/// Partitioning parameters for [`ShardedIndex::build_with`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedParams {
    /// Number of partitions (clamped to the dataset size; shards left
    /// empty by the balanced assignment are dropped).
    pub shards: usize,
    /// Default shards searched per query (clamped to `1..=shards`;
    /// adjustable later via [`ShardedIndex::set_nprobe`]).
    pub nprobe: usize,
    /// Balanced k-means refinement rounds over the training sample.
    pub kmeans_iters: usize,
    /// Training sample cap: k-means sees every `ceil(n / train_sample)`-th
    /// row, the full dataset only joins for the final assignment round.
    pub train_sample: usize,
    /// RNG seed for the k-means initialization.
    pub seed: u64,
}

impl ShardedParams {
    /// `shards` partitions with the defaults the extension benches use:
    /// probe a quarter of the shards, 10 Lloyd rounds over at most 64Ki
    /// training rows.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self {
            shards,
            nprobe: shards.div_ceil(4),
            kmeans_iters: 10,
            train_sample: 65_536,
            seed: 42,
        }
    }

    /// Overrides the default probe count.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.clamp(1, self.shards);
        self
    }

    /// Overrides the k-means seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One partition: a full per-shard index plus the translation from
/// shard-local ids back to dataset ids.
struct Shard {
    index: PrebuiltIndex,
    /// `to_global[local] = global`; local ids are positions in the
    /// shard's own store, which [`PrebuiltIndex`] already reports in
    /// *original* (pre-reorder) local space.
    to_global: Vec<u32>,
    /// The NUMA node this shard's serving state was first-touched on
    /// (`shard % num_nodes`); fan-out workers prefer probes whose shard
    /// lives on their node. `0` everywhere placement is a no-op.
    home_node: usize,
}

/// A balanced-k-means-partitioned collection of per-shard graph indexes
/// with centroid-routed `nprobe` search — see the module docs.
pub struct ShardedIndex {
    shards: Vec<Shard>,
    /// Aligned `shards × dim` store of partition centroids.
    centroids: VectorStore,
    dim: usize,
    total: usize,
    /// Shards searched per query. Atomic so serving threads can share the
    /// index immutably while benches sweep the recall/QPS ladder without
    /// rebuilding.
    nprobe: AtomicUsize,
}

impl ShardedIndex {
    /// Partitions `store` and builds one graph per shard through `build`,
    /// which receives the shard number and the shard's (shard-local)
    /// store and returns its traversal graph and seed provider. Shards
    /// build in parallel across the worker pool; `build` itself may also
    /// parallelize internally.
    ///
    /// # Panics
    /// Panics if `store` is empty or a `build` result disagrees with its
    /// shard's store.
    pub fn build_with<F>(
        store: &VectorStore,
        params: &ShardedParams,
        counter: &DistCounter,
        build: F,
    ) -> Self
    where
        F: Fn(usize, &VectorStore) -> (FlatGraph, Box<dyn SeedProvider>) + Sync,
    {
        let total = store.len();
        let (centroid_rows, shard_ids) = partition(store, params, counter);
        let centroids =
            VectorStore::from_rows(store.dim(), centroid_rows.iter().map(Vec::as_slice))
                .to_aligned();
        let shards: Vec<Shard> = par_map(0, shard_ids.len(), |s| {
            // First-touch the shard's store and graph arenas on its home
            // node (no-op off multi-node Linux; see `crate::numa`).
            let home = numa::node_of_worker(s);
            numa::run_on_node(home, || {
                let ids = &shard_ids[s];
                let sub = store.subset(ids);
                let (graph, seeds) = build(s, &sub);
                Shard {
                    index: PrebuiltIndex::new(sub, graph, seeds, format!("shard-{s}")),
                    to_global: ids.clone(),
                    home_node: home,
                }
            })
        });
        let nprobe = AtomicUsize::new(params.nprobe.clamp(1, shards.len()));
        Self { shards, centroids, dim: store.dim(), total, nprobe }
    }

    /// Builds the sharded state **one shard at a time**, persisting each
    /// to `dir` and dropping it before the next — peak heap stays near a
    /// single shard's footprint plus the (possibly mapped) source store.
    /// This is the build path for tiers past RAM: pair it with a mapped
    /// source store and reload the result with [`Self::load`], which maps
    /// the per-shard stores back in on fault.
    ///
    /// Layout matches [`Self::save`] exactly (`shards.gass` + per-shard
    /// mapped store and graph files).
    pub fn build_to_dir<F>(
        store: &VectorStore,
        params: &ShardedParams,
        counter: &DistCounter,
        dir: &Path,
        build: F,
    ) -> Result<(), PersistError>
    where
        F: Fn(usize, &VectorStore) -> (FlatGraph, Box<dyn SeedProvider>),
    {
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let (centroid_rows, shard_ids) = partition(store, params, counter);
        let table = ShardTable {
            nprobe: params.nprobe.clamp(1, shard_ids.len()),
            dim: store.dim(),
            centroids: centroid_rows.into_iter().flatten().collect(),
            shard_ids: shard_ids.clone(),
        };
        persist::save_shard_table(&table, &dir.join("shards.gass"))?;
        for (s, ids) in shard_ids.iter().enumerate() {
            let sub = store.subset(ids);
            let (graph, _seeds) = build(s, &sub);
            persist::save_store_mapped(&sub, &dir.join(format!("shard-{s:03}.store.gass")))?;
            persist::save_flat_graph(&graph, &dir.join(format!("shard-{s:03}.graph.gass")))?;
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards searched per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe.load(Ordering::Relaxed)
    }

    /// Sets the shards searched per query (clamped to `1..=shards`).
    /// Takes `&self`: serving threads may share the index while a
    /// controller sweeps the recall/QPS ladder.
    pub fn set_nprobe(&self, nprobe: usize) {
        self.nprobe.store(nprobe.clamp(1, self.shards.len()), Ordering::Relaxed);
    }

    /// The partition centroids (`num_shards` rows).
    pub fn centroids(&self) -> &VectorStore {
        &self.centroids
    }

    /// The global ids shard `s` holds, in shard-local order.
    pub fn shard_ids(&self, s: usize) -> &[u32] {
        &self.shards[s].to_global
    }

    /// Shard `s`'s index (the full per-shard ladder applies through the
    /// [`AnnIndex`] forwarding methods; this accessor serves inspection
    /// and per-shard rebuild flows).
    pub fn shard(&self, s: usize) -> &PrebuiltIndex {
        &self.shards[s].index
    }

    /// Re-aligns every shard's store rows to the SIMD stride (forwarded
    /// [`PrebuiltIndex::align_store`]; part of the serving configuration).
    /// The re-laid rows are first-touched on each shard's home node, like
    /// every other ladder step.
    pub fn align_store(&mut self) {
        for shard in &mut self.shards {
            let home = shard.home_node;
            numa::run_on_node(home, || shard.index.align_store());
        }
    }

    /// Reassembles the full dataset in global id order by gathering every
    /// shard's rows — the inverse of the partition. Used where a consumer
    /// needs the base vectors (exact ground truth, re-partitioning).
    ///
    /// # Panics
    /// Panics after [`AnnIndex::reorder`]: reordered shard stores are in
    /// permuted local order and no longer gatherable by original id.
    pub fn gather_store(&self) -> VectorStore {
        assert!(
            !self.shards.iter().any(|s| s.index.is_reordered()),
            "gather_store requires pre-reorder shard stores"
        );
        let mut flat = vec![0.0f32; self.total * self.dim];
        for shard in &self.shards {
            let store = shard.index.store();
            for (local, &global) in shard.to_global.iter().enumerate() {
                let dst = global as usize * self.dim;
                flat[dst..dst + self.dim].copy_from_slice(store.get(local as u32));
            }
        }
        VectorStore::from_flat(self.dim, flat)
    }

    /// Shard indices in ascending query-to-centroid distance (ties by
    /// shard number). Centroid evaluations go through `counter`.
    fn ranked_shards(&self, query: &[f32], counter: &DistCounter) -> Vec<usize> {
        self.ranked_shards_with_dists(query, counter).into_iter().map(|(_, s)| s).collect()
    }

    /// [`Self::ranked_shards`] keeping each shard's centroid distance —
    /// the margin adaptive probing compares against the merged top-`k`.
    fn ranked_shards_with_dists(
        &self,
        query: &[f32],
        counter: &DistCounter,
    ) -> Vec<(f32, usize)> {
        let mut order: Vec<(f32, usize)> = (0..self.shards.len())
            .map(|s| {
                counter.bump();
                (l2_sq(query, self.centroids.get(s as u32)), s)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        order
    }

    /// The probe plan every search path shares: shard indices in ranked
    /// centroid order, truncated to the current `nprobe`. Merging in plan
    /// order is what keeps sequential, coalesced, and fanned-out serving
    /// observationally identical.
    fn probe_plan(&self, query: &[f32], counter: &DistCounter) -> Vec<usize> {
        let nprobe = self.nprobe().min(self.shards.len());
        let mut ranked = self.ranked_shards(query, counter);
        ranked.truncate(nprobe);
        ranked
    }

    /// One shard probe through the calling thread's reusable scratch slot
    /// (see [`PROBE_SCRATCH`]).
    fn probe(
        &self,
        s: usize,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        PROBE_SCRATCH.with(|cell| {
            self.shards[s].index.search_with_scratch(
                query,
                params,
                counter,
                &mut cell.borrow_mut(),
            )
        })
    }

    /// Runs `f` once per shard in `plan`, returning results in plan
    /// order. With a configured fan-out pool and more than one planned
    /// shard, the jobs run concurrently, grouped by each shard's home
    /// node so pinned workers probe local memory; otherwise this is the
    /// plain sequential loop. Either way the output order (and therefore
    /// every downstream merge) is identical — per-shard work is
    /// independent and deterministic, and `DistCounter` totals commute.
    fn for_each_planned<R, F>(&self, plan: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if plan.len() > 1 {
            if let Some(pool) = fanout::shared_pool() {
                let nodes = numa::num_nodes();
                let mut lists: Vec<Vec<usize>> = vec![Vec::new(); nodes];
                for (rank, &s) in plan.iter().enumerate() {
                    lists[self.shards[s].home_node % nodes].push(rank);
                }
                return pool
                    .map(lists, plan.len(), |rank| f(plan[rank]))
                    .into_iter()
                    .map(|r| r.expect("every planned shard job ran"))
                    .collect();
            }
        }
        plan.iter().map(|&s| f(s)).collect()
    }

    /// Merges one shard's result into the shared heap, translating local
    /// ids to dataset ids. Returns `true` when the probe improved the
    /// merged top-`k` (any push was retained) — the saturation signal
    /// adaptive probing watches across probes.
    fn merge(
        &self,
        s: usize,
        res: SearchResult,
        heap: &mut BoundedMaxHeap,
        stats: &mut SearchStats,
    ) -> bool {
        stats.hops += res.stats.hops;
        stats.evaluated += res.stats.evaluated;
        let mut improved = false;
        for n in res.neighbors {
            improved |=
                heap.push(Neighbor::new(self.shards[s].to_global[n.id as usize], n.dist));
        }
        improved
    }

    /// [`AnnIndex::search`] also reporting how many shards were probed.
    ///
    /// With a fixed [`crate::term::Termination`] this is the classic
    /// plan-then-probe path (always exactly `nprobe` probes, fanned out
    /// across the pool when configured). With an adaptive policy,
    /// `nprobe` becomes a **cap**: shards are probed sequentially in
    /// centroid-distance order and the loop stops early when
    ///
    /// * `DistRatio { eps }` — the next shard's centroid is farther than
    ///   `(1+eps)×` the *nearest* centroid's distance (the IVF routing
    ///   margin: only shards competitively close to the query get
    ///   probed; a query deep inside one partition probes few, a query
    ///   on a partition boundary probes many), or
    /// * `Saturation { patience }` — `patience` consecutive probes
    ///   retained nothing in the merged heap, or
    /// * `max_dists` — the accumulated evaluation budget is spent
    ///   (each probe's sub-search receives the remaining budget, so the
    ///   cap holds across shard boundaries too).
    ///
    /// The policy governs **routing**: each probed shard still runs its
    /// traversal under `Fixed` (plus any remaining budget), so every
    /// probe contributes its full-quality slice answer and early
    /// stopping only skips whole shards — recall holds while mean
    /// probes drop.
    ///
    /// The adaptive loop is inherently sequential — whether to issue
    /// probe `i+1` depends on probe `i`'s merge — so it bypasses the
    /// fan-out pool; the saved probes are the point.
    pub fn search_with_probes(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> (SearchResult, usize) {
        let term = params.termination();
        let mut heap = BoundedMaxHeap::new(params.k);
        let mut stats = SearchStats { hops: 0, evaluated: self.shards.len() };
        if term.is_fixed() {
            let plan = self.probe_plan(query, counter);
            let results =
                self.for_each_planned(&plan, |s| self.probe(s, query, params, counter));
            for (&s, res) in plan.iter().zip(results) {
                self.merge(s, res, &mut heap, &mut stats);
            }
            let probes = plan.len();
            return (SearchResult { neighbors: heap.into_sorted(), stats }, probes);
        }

        let cap = self.nprobe().min(self.shards.len());
        let ranked = self.ranked_shards_with_dists(query, counter);
        let nearest = ranked.first().map_or(0.0, |&(d, _)| d);
        let mut probes = 0usize;
        let mut stale = 0usize;
        for &(cdist, s) in ranked.iter().take(cap) {
            if probes > 0 {
                if term.max_dists > 0 && stats.evaluated >= term.max_dists {
                    break;
                }
                match term.policy {
                    crate::term::TerminationPolicy::DistRatio { eps } => {
                        if cdist > (1.0 + eps) * nearest {
                            break;
                        }
                    }
                    crate::term::TerminationPolicy::Saturation { patience } => {
                        if stale >= patience.max(1) {
                            break;
                        }
                    }
                    crate::term::TerminationPolicy::Fixed => {}
                }
            }
            // Routing is adaptive; the traversal inside a probed shard is
            // not — it runs `Fixed` so the shard contributes its
            // full-quality slice answer. Only the hard budget crosses the
            // boundary (floor 1 so a probe can always at least seed):
            // the whole query obeys `max_dists`, not each probe
            // independently.
            let mut sub = *params;
            sub.term = crate::term::TerminationPolicy::Fixed;
            sub.max_dists = 0;
            if term.max_dists > 0 {
                sub.max_dists = term.max_dists.saturating_sub(stats.evaluated).max(1);
            }
            let res = self.probe(s, query, &sub, counter);
            if self.merge(s, res, &mut heap, &mut stats) {
                stale = 0;
            } else {
                stale += 1;
            }
            probes += 1;
        }
        (SearchResult { neighbors: heap.into_sorted(), stats }, probes)
    }

    /// Writes the sharded state under directory `dir`: `shards.gass` (the
    /// routing table) plus per-shard `shard-NNN.store.gass` (mapped
    /// layout, so huge tiers reload without heap residency) and
    /// `shard-NNN.graph.gass`.
    ///
    /// Persists the **pre-ladder** state, mirroring the CLI's convention
    /// for monolithic indexes: freeze/quantize/reorder are cheap,
    /// deterministic re-applications on load, and seed structures are
    /// rebuilt rather than shipped.
    ///
    /// # Panics
    /// Panics if a shard has been reordered (its store rows would no
    /// longer line up with the saved graph's ids).
    pub fn save(&self, dir: &Path) -> Result<(), PersistError> {
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let table = ShardTable {
            nprobe: self.nprobe(),
            dim: self.dim,
            centroids: (0..self.centroids.len() as u32)
                .flat_map(|s| self.centroids.get(s).iter().copied())
                .collect(),
            shard_ids: self.shards.iter().map(|s| s.to_global.clone()).collect(),
        };
        persist::save_shard_table(&table, &dir.join("shards.gass"))?;
        for (s, shard) in self.shards.iter().enumerate() {
            assert!(
                !shard.index.is_reordered(),
                "save sharded state before reordering (the ladder re-applies on load)"
            );
            persist::save_store_mapped(
                shard.index.store(),
                &dir.join(format!("shard-{s:03}.store.gass")),
            )?;
            persist::save_flat_graph(
                shard.index.graph(),
                &dir.join(format!("shard-{s:03}.graph.gass")),
            )?;
        }
        Ok(())
    }

    /// Reloads sharded state saved by [`Self::save`]. Shard stores come
    /// back through [`persist::open_store`] — memory-mapped when enabled,
    /// parsed onto the heap otherwise — and each shard is served through
    /// a [`PrebuiltIndex`] with K-sampled random seeds, exactly like the
    /// CLI's monolithic load path.
    pub fn load(dir: &Path) -> Result<Self, PersistError> {
        let table = persist::load_shard_table(&dir.join("shards.gass"))?;
        let dim = table.dim;
        let total: usize = table.shard_ids.iter().map(Vec::len).sum();
        let centroid_count = table.centroids.len() / dim.max(1);
        if centroid_count != table.shard_ids.len()
            || centroid_count * dim != table.centroids.len()
        {
            return Err(PersistError::Truncated);
        }
        let centroids = VectorStore::from_flat(dim, table.centroids).to_aligned();
        let mut shards = Vec::with_capacity(table.shard_ids.len());
        for (s, ids) in table.shard_ids.into_iter().enumerate() {
            // Parse (or map) each shard's serving state pinned to its
            // home node so heap-parsed pages land locally; mapped stores
            // fault in later from the node-pinned probe workers instead.
            let home = numa::node_of_worker(s);
            let shard = numa::run_on_node(home, || -> Result<Shard, PersistError> {
                let store = persist::open_store(&dir.join(format!("shard-{s:03}.store.gass")))?;
                let graph =
                    persist::load_flat_graph(&dir.join(format!("shard-{s:03}.graph.gass")))?;
                if store.len() != ids.len() || store.dim() != dim {
                    return Err(PersistError::Truncated);
                }
                // Per-query-keyed draws: coalesced bucketing visits shards in
                // a different order than the sequential loop, and only an
                // order-independent provider keeps the two bit-identical.
                let seeds = Box::new(RandomSeeds::per_query(store.len(), 7));
                Ok(Shard {
                    index: PrebuiltIndex::new(store, graph, seeds, format!("shard-{s}")),
                    to_global: ids,
                    home_node: home,
                })
            })?;
            shards.push(shard);
        }
        let nprobe = AtomicUsize::new(table.nprobe.clamp(1, shards.len()));
        Ok(Self { shards, centroids, dim, total, nprobe })
    }
}

impl AnnIndex for ShardedIndex {
    fn name(&self) -> String {
        format!("Sharded({}x)", self.shards.len())
    }

    fn num_vectors(&self) -> usize {
        self.total
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        self.search_with_probes(query, params, counter).0
    }

    fn search_coalesced(
        &self,
        queries: &[&[f32]],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> Vec<SearchResult> {
        if queries.len() < 2 || !params.termination().is_fixed() {
            // Adaptive probing decides each query's next probe from its
            // own merged heap — there is no shared plan to bucket by, so
            // non-fixed batches run the per-query adaptive loop.
            return queries.iter().map(|q| self.search(q, params, counter)).collect();
        }
        // Bucket queries by probed shard so each shard's engine coalesces
        // its own visitors, then merge per query in that query's ranked
        // shard order — bit-identical to the sequential loop (each shard
        // search is, and the heap sees pushes in the same order).
        let ranked: Vec<Vec<usize>> =
            queries.iter().map(|q| self.probe_plan(q, counter)).collect();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (qi, probes) in ranked.iter().enumerate() {
            for &s in probes {
                buckets[s].push(qi);
            }
        }
        // Each non-empty bucket is an independent per-shard batch; the
        // fan-out pool runs them shard-affine, and results scatter back
        // into rank slots exactly as the serial bucket loop would.
        let active: Vec<usize> =
            (0..buckets.len()).filter(|&s| !buckets[s].is_empty()).collect();
        let per_shard = self.for_each_planned(&active, |s| {
            let qs: Vec<&[f32]> = buckets[s].iter().map(|&qi| queries[qi]).collect();
            self.shards[s].index.search_coalesced(&qs, params, counter)
        });
        let mut slots: Vec<Vec<Option<SearchResult>>> =
            ranked.iter().map(|r| vec![None; r.len()]).collect();
        for (&s, res) in active.iter().zip(per_shard) {
            for (&qi, r) in buckets[s].iter().zip(res) {
                let rank = ranked[qi].iter().position(|&x| x == s).unwrap();
                slots[qi][rank] = Some(r);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(qi, per_shard)| {
                let mut heap = BoundedMaxHeap::new(params.k);
                let mut stats = SearchStats { hops: 0, evaluated: self.shards.len() };
                for (rank, res) in per_shard.into_iter().enumerate() {
                    let res = res.expect("every probed shard answered");
                    self.merge(ranked[qi][rank], res, &mut heap, &mut stats);
                }
                SearchResult { neighbors: heap.into_sorted(), stats }
            })
            .collect()
    }

    fn freeze(&mut self) {
        // Ladder steps allocate fresh serving arenas (CSR slabs, codec
        // rows, permuted stores); building them pinned to the shard's
        // home node is what places the pages the probes will walk.
        for shard in &mut self.shards {
            let home = shard.home_node;
            numa::run_on_node(home, || shard.index.freeze());
        }
    }

    fn is_frozen(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.index.is_frozen())
    }

    fn quantize(&mut self, spec: crate::quant::CodecSpec) {
        for shard in &mut self.shards {
            let home = shard.home_node;
            numa::run_on_node(home, || shard.index.quantize(spec));
        }
    }

    fn is_quantized(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.index.is_quantized())
    }

    fn reorder(&mut self, strategy: crate::reorder::ReorderStrategy) {
        for shard in &mut self.shards {
            let home = shard.home_node;
            numa::run_on_node(home, || shard.index.reorder(strategy));
        }
    }

    fn is_reordered(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.index.is_reordered())
    }

    fn reorder_strategy(&self) -> crate::reorder::ReorderStrategy {
        self.shards
            .first()
            .map(|s| s.index.reorder_strategy())
            .unwrap_or(crate::reorder::ReorderStrategy::None)
    }

    fn stats(&self) -> IndexStats {
        let mut out = IndexStats::default();
        for shard in &self.shards {
            let s = shard.index.stats();
            out.nodes += s.nodes;
            out.edges += s.edges;
            out.max_degree = out.max_degree.max(s.max_degree);
            out.graph_bytes += s.graph_bytes;
            out.aux_bytes += s.aux_bytes;
            // The routing structures are auxiliary state.
            out.aux_bytes += shard.to_global.capacity() * std::mem::size_of::<u32>();
        }
        out.aux_bytes += self.centroids.heap_bytes();
        out.avg_degree = if out.nodes > 0 { out.edges as f64 / out.nodes as f64 } else { 0.0 };
        out
    }
}

/// Balanced partition shared by the in-memory and to-disk build paths:
/// train on a stride sample, then one capacity-capped assignment round
/// over the full dataset (capacity exactly `ceil(n/k)`, so no shard
/// exceeds its fair share). Shards the capped greedy round starved are
/// dropped rather than carried as unroutable centroids.
fn partition(
    store: &VectorStore,
    params: &ShardedParams,
    counter: &DistCounter,
) -> (Vec<Vec<f32>>, Vec<Vec<u32>>) {
    assert!(!store.is_empty(), "cannot shard an empty store");
    let total = store.len();
    let k = params.shards.min(total);
    let step = total.div_ceil(params.train_sample.max(1)).max(1);
    let train: Vec<u32> = (0..total as u32).step_by(step).collect();
    let clustering =
        kmeans::balanced_kmeans(store, &train, k, params.kmeans_iters, params.seed, counter);
    let all: Vec<u32> = (0..total as u32).collect();
    let mut assignment = vec![0usize; total];
    let cap = total.div_ceil(clustering.centroids.len());
    kmeans::balanced_assign_round(
        store,
        &all,
        &clustering.centroids,
        cap,
        counter,
        &mut assignment,
    );
    let mut shard_ids: Vec<Vec<u32>> = vec![Vec::new(); clustering.centroids.len()];
    for (pos, &c) in assignment.iter().enumerate() {
        shard_ids[c].push(pos as u32);
    }
    clustering.centroids.into_iter().zip(shard_ids).filter(|(_, ids)| !ids.is_empty()).unzip()
}

/// Builds a sharded index whose shards use the same graph construction as
/// the CLI's `--method` dispatch is free to provide; here as a
/// convenience for tests and benches: a Vamana-style graph via the
/// workspace's default prebuilt path is *not* constructible from core
/// (methods live above core), so this helper builds each shard as a
/// brute-force k-NN graph — exact, deterministic, and adequate for the
/// observational-equivalence tests. Real builds inject their method
/// through [`ShardedIndex::build_with`].
pub fn build_knn_sharded(
    store: &VectorStore,
    params: &ShardedParams,
    degree: usize,
    counter: &DistCounter,
) -> ShardedIndex {
    ShardedIndex::build_with(store, params, counter, |_, sub| {
        let n = sub.len();
        let mut adj = crate::graph::AdjacencyGraph::new(n);
        let space = Space::new(sub, counter);
        for v in 0..n as u32 {
            let mut heap = BoundedMaxHeap::new(degree.min(n.saturating_sub(1)).max(1));
            for u in 0..n as u32 {
                if u != v {
                    heap.push(Neighbor::new(u, space.dist(v, u)));
                }
            }
            adj.set_neighbors(v, heap.into_sorted().into_iter().map(|nb| nb.id).collect());
        }
        let graph = FlatGraph::from_adjacency(&adj, None);
        let seeds: Box<dyn SeedProvider> = Box::new(RandomSeeds::per_query(n, 7));
        (graph, seeds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn blobs(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = VectorStore::new(dim);
        for i in 0..n {
            let center = (i % 4) as f32 * 10.0;
            let row: Vec<f32> =
                (0..dim).map(|_| center + rng.random_range(-1.0f32..1.0)).collect();
            store.push(&row);
        }
        store
    }

    #[test]
    fn partitions_are_balanced_and_cover_everything() {
        let store = blobs(200, 8, 1);
        let counter = DistCounter::default();
        let idx = build_knn_sharded(&store, &ShardedParams::new(4), 8, &counter);
        let cap = 200usize.div_ceil(idx.num_shards());
        let mut seen = [false; 200];
        for s in 0..idx.num_shards() {
            let ids = idx.shard_ids(s);
            assert!(ids.len() <= cap, "shard {s} over capacity: {}", ids.len());
            for &id in ids {
                assert!(!std::mem::replace(&mut seen[id as usize], true), "id {id} twice");
            }
        }
        assert!(seen.iter().all(|&s| s), "some id unassigned");
    }

    #[test]
    fn full_probe_equals_merged_per_shard_searches() {
        let store = blobs(160, 6, 2);
        let counter = DistCounter::default();
        let idx = build_knn_sharded(&store, &ShardedParams::new(4), 10, &counter);
        idx.set_nprobe(idx.num_shards());
        let params = QueryParams::new(5, 20);
        let query: Vec<f32> = vec![5.0; 6];
        let res = idx.search(&query, &params, &counter);
        // Reference: search every shard directly and merge by hand.
        let mut heap = BoundedMaxHeap::new(params.k);
        for s in 0..idx.num_shards() {
            let r = idx.shard(s).search(&query, &params, &counter);
            for n in r.neighbors {
                heap.push(Neighbor::new(idx.shard_ids(s)[n.id as usize], n.dist));
            }
        }
        let want = heap.into_sorted();
        assert_eq!(
            res.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
            want.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn coalesced_matches_sequential() {
        let store = blobs(120, 6, 3);
        let counter = DistCounter::default();
        let mut idx =
            build_knn_sharded(&store, &ShardedParams::new(3).with_nprobe(2), 8, &counter);
        idx.freeze();
        idx.quantize(crate::quant::CodecSpec::Sq8);
        let params = QueryParams::new(4, 16);
        let queries: Vec<Vec<f32>> =
            (0..7).map(|i| (0..6).map(|d| (i * 7 + d) as f32 * 0.3).collect()).collect();
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let coalesced = idx.search_coalesced(&refs, &params, &counter);
        let sequential: Vec<SearchResult> =
            refs.iter().map(|q| idx.search(q, &params, &counter)).collect();
        for (c, s) in coalesced.iter().zip(&sequential) {
            assert_eq!(
                c.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                s.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>()
            );
        }
    }

    /// Fan-out at several executors against a reference that never takes
    /// the fan path: the plan probed shard-by-shard through the public
    /// per-shard API and merged by hand in ranked order. Neighbors,
    /// distance bits, and distance-counter totals must all agree.
    #[test]
    fn fanout_probing_is_observationally_sequential() {
        let store = blobs(180, 6, 7);
        let counter = DistCounter::default();
        let idx = build_knn_sharded(&store, &ShardedParams::new(4).with_nprobe(3), 8, &counter);
        let params = QueryParams::new(4, 16);
        let query: Vec<f32> = (0..6).map(|d| d as f32 * 1.7).collect();

        let c_ref = DistCounter::new();
        let plan = idx.probe_plan(&query, &c_ref);
        let mut heap = BoundedMaxHeap::new(params.k);
        let mut stats = SearchStats { hops: 0, evaluated: idx.shards.len() };
        for &s in &plan {
            let res = idx.shards[s].index.search(&query, &params, &c_ref);
            idx.merge(s, res, &mut heap, &mut stats);
        }
        let want = heap.into_sorted();

        for workers in [2, 4] {
            crate::fanout::set_fanout_enabled(true);
            crate::fanout::set_fanout_workers(workers);
            let c_fan = DistCounter::new();
            let got = idx.search(&query, &params, &c_fan);
            assert_eq!(
                got.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                want.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                "workers={workers}"
            );
            assert_eq!(c_fan.get(), c_ref.get(), "counter totals at workers={workers}");
        }
        crate::fanout::set_fanout_workers(1);
    }

    #[test]
    fn build_to_dir_matches_in_memory_build_then_save() {
        let store = blobs(100, 4, 9);
        let counter = DistCounter::default();
        let params = ShardedParams::new(3);
        let dir_mem = std::env::temp_dir().join("gass_sharded_mem_save");
        let dir_disk = std::env::temp_dir().join("gass_sharded_disk_build");
        build_knn_sharded(&store, &params, 6, &counter).save(&dir_mem).unwrap();
        ShardedIndex::build_to_dir(&store, &params, &counter, &dir_disk, |_, sub| {
            let n = sub.len();
            let mut adj = crate::graph::AdjacencyGraph::new(n);
            let space = Space::new(sub, &counter);
            for v in 0..n as u32 {
                let mut heap = BoundedMaxHeap::new(6.min(n - 1).max(1));
                for u in 0..n as u32 {
                    if u != v {
                        heap.push(Neighbor::new(u, space.dist(v, u)));
                    }
                }
                adj.set_neighbors(v, heap.into_sorted().into_iter().map(|nb| nb.id).collect());
            }
            let seeds: Box<dyn SeedProvider> = Box::new(RandomSeeds::per_query(n, 7));
            (FlatGraph::from_adjacency(&adj, None), seeds)
        })
        .unwrap();
        for entry in std::fs::read_dir(&dir_mem).unwrap() {
            let name = entry.unwrap().file_name();
            let a = std::fs::read(dir_mem.join(&name)).unwrap();
            let b = std::fs::read(dir_disk.join(&name)).unwrap();
            assert_eq!(a, b, "{name:?} differs between build paths");
        }
    }

    #[test]
    fn gather_store_inverts_the_partition() {
        let store = blobs(70, 5, 11);
        let counter = DistCounter::default();
        let idx = build_knn_sharded(&store, &ShardedParams::new(4), 6, &counter);
        let back = idx.gather_store();
        assert_eq!(back.len(), store.len());
        for i in 0..store.len() as u32 {
            assert_eq!(back.get(i), store.get(i), "row {i} differs");
        }
    }

    #[test]
    fn save_load_roundtrip_is_byte_stable() {
        let store = blobs(90, 5, 4);
        let counter = DistCounter::default();
        let idx = build_knn_sharded(&store, &ShardedParams::new(3), 6, &counter);
        let dir = std::env::temp_dir().join("gass_sharded_roundtrip");
        let dir2 = std::env::temp_dir().join("gass_sharded_roundtrip_2");
        idx.save(&dir).unwrap();
        let back = ShardedIndex::load(&dir).unwrap();
        assert_eq!(back.num_shards(), idx.num_shards());
        assert_eq!(back.num_vectors(), idx.num_vectors());
        back.save(&dir2).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let a = std::fs::read(dir.join(&name)).unwrap();
            let b = std::fs::read(dir2.join(&name)).unwrap();
            assert_eq!(a, b, "{name:?} differs after a save/load/save cycle");
        }
        // Loaded index answers, and full-probe answers are exact merges.
        back.set_nprobe(back.num_shards());
        let params = QueryParams::new(3, 12);
        let res = back.search(&[5.0; 5], &params, &counter);
        assert_eq!(res.neighbors.len(), 3);
    }
}
