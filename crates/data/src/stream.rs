//! Streaming dataset writers for tiers that must never be heap-resident.
//!
//! The beyond-RAM harnesses (the paper's 25GB and 1B tiers, fig13/fig16)
//! need a base dataset on disk in the mapped `KIND_MSTORE` layout so
//! [`gass_core::persist::open_store`] can serve it by page fault instead
//! of loading it. The writers here drive the row-streaming generator
//! cores in [`crate::synth`] straight into a
//! [`gass_core::persist::MappedStoreWriter`]: peak heap is one row,
//! and the rows are bit-identical to the in-memory generators (same RNG
//! stream, same order), so scaled-down in-memory runs and full mapped
//! runs describe the same distribution.

use gass_core::persist::{MappedStoreWriter, PersistError};
use std::path::Path;

/// Streams `n` [`crate::synth::deep_like`] rows into a mapped store file
/// at `path`, bit-identical to the in-memory generator. Returns the
/// number of bytes written.
pub fn write_deep_like_mapped(path: &Path, n: usize, seed: u64) -> Result<u64, PersistError> {
    let mut writer = MappedStoreWriter::create(path, 96, n)?;
    let mut err = None;
    crate::synth::deep_like_rows(n, seed, |row| {
        if err.is_none() {
            if let Err(e) = writer.push_row(row) {
                err = Some(e);
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    writer.finish()?;
    std::fs::metadata(path).map(|m| m.len()).map_err(PersistError::Io)
}

/// Streams an arbitrary [`crate::synth::manifold_mixture`] configuration
/// into a mapped store file (see [`write_deep_like_mapped`]).
#[allow(clippy::too_many_arguments)]
pub fn write_manifold_mixture_mapped(
    path: &Path,
    n: usize,
    dim: usize,
    intrinsic_dim: usize,
    n_clusters: usize,
    cluster_spread: f32,
    noise: f32,
    seed: u64,
) -> Result<u64, PersistError> {
    let mut writer = MappedStoreWriter::create(path, dim, n)?;
    let mut err = None;
    crate::synth::manifold_mixture_rows(
        n,
        dim,
        intrinsic_dim,
        n_clusters,
        cluster_spread,
        noise,
        seed,
        |row| {
            if err.is_none() {
                if let Err(e) = writer.push_row(row) {
                    err = Some(e);
                }
            }
        },
    );
    if let Some(e) = err {
        return Err(e);
    }
    writer.finish()?;
    std::fs::metadata(path).map(|m| m.len()).map_err(PersistError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_mapped_file_matches_in_memory_generator() {
        let path = std::env::temp_dir().join("gass_stream_deep.store.gass");
        let bytes = write_deep_like_mapped(&path, 60, 5).unwrap();
        assert!(bytes > 0);
        let opened = gass_core::persist::open_store(&path).unwrap();
        let want = crate::synth::deep_like(60, 5);
        assert_eq!(opened.len(), want.len());
        assert_eq!(opened.dim(), want.dim());
        for i in 0..want.len() as u32 {
            assert_eq!(opened.get(i), want.get(i), "row {i} differs");
        }
    }

    #[test]
    fn streamed_file_is_byte_identical_to_save_store_mapped() {
        let a = std::env::temp_dir().join("gass_stream_a.store.gass");
        let b = std::env::temp_dir().join("gass_stream_b.store.gass");
        write_manifold_mixture_mapped(&a, 40, 24, 8, 4, 1.5, 0.1, 9).unwrap();
        let store = crate::synth::manifold_mixture(40, 24, 8, 4, 1.5, 0.1, 9);
        gass_core::persist::save_store_mapped(&store, &b).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }
}
