//! Scalar vs SIMD SQ8 asymmetric-distance micro-benchmarks at the paper's
//! dataset dimensionalities (Glove 25/100, Deep 96, Sift 128, Gist 960),
//! mirroring `simd_kernels` for the f32 path. The dispatched kernels
//! (`l2_sq_u8`, `l2_sq_u8_batch`) pick AVX2/NEON at runtime; the
//! `*_scalar` rows pin the 8-lane reference the dispatcher falls back to
//! under `GASS_NO_SIMD`.
//!
//! Inputs come from a real `QuantizedStore` so the code rows carry the
//! cache-line-padded stride the serving path sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_core::quant::{l2_sq_u8, l2_sq_u8_batch, l2_sq_u8_batch_scalar, l2_sq_u8_scalar};
use gass_core::{PreparedQuery, QuantizedStore, VectorStore};
use std::hint::black_box;

fn quantized(dim: usize) -> (QuantizedStore, PreparedQuery) {
    let gen = |phase: f32| (0..dim).map(move |i| (i as f32 * 0.37 + phase).sin());
    let flat: Vec<f32> = (0..5).flat_map(|v| gen(1.0 + v as f32)).collect();
    let store = QuantizedStore::from_store(&VectorStore::from_flat(dim, flat));
    let query: Vec<f32> = gen(0.0).collect();
    let mut pq = PreparedQuery::default();
    store.prepare_into(&query, &mut pq);
    (store, pq)
}

fn bench_quant_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_kernels");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for dim in [25usize, 96, 100, 128, 960] {
        let (store, pq) = quantized(dim);
        let (u, s) = (pq.u(), pq.s());
        let row = store.code_row(0);
        let rows = [store.code_row(1), store.code_row(2), store.code_row(3), store.code_row(4)];
        group.bench_with_input(BenchmarkId::new("l2_sq_u8/simd", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_u8(black_box(u), black_box(s), black_box(row)))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq_u8/scalar", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq_u8_scalar(black_box(u), black_box(s), black_box(row)))
        });
        group.bench_with_input(
            BenchmarkId::new("l2_sq_u8_batch/simd", dim),
            &dim,
            |bench, _| {
                bench.iter(|| l2_sq_u8_batch(black_box(u), black_box(s), black_box(rows)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("l2_sq_u8_batch/scalar", dim),
            &dim,
            |bench, _| {
                bench
                    .iter(|| l2_sq_u8_batch_scalar(black_box(u), black_box(s), black_box(rows)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quant_kernels);
criterion_main!(benches);
