//! Per-method construction throughput at a fixed small tier — the
//! micro-level companion to Figure 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gass_data::synth::deep_like;
use gass_graphs::{build_method, MethodKind};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let base = deep_like(1_200, 1);
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for kind in [
        MethodKind::Hnsw,
        MethodKind::Vamana,
        MethodKind::Elpis,
        MethodKind::KGraph,
        MethodKind::Hcnng,
    ] {
        group.bench_with_input(BenchmarkId::new("build", kind.name()), &kind, |b, &kind| {
            b.iter(|| black_box(build_method(kind, base.clone(), 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
