//! Small sampling helpers shared by the generators.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Standard normal sample via Box–Muller.
#[inline]
pub fn gaussian(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Power-law sample on `[0, 1]` with density `∝ x^a` (`a = 0` is uniform;
/// larger `a` concentrates mass near 1 — the paper's RandPow generator
/// with exponents 0, 5 and 50).
#[inline]
pub fn power_law(rng: &mut SmallRng, a: f64) -> f32 {
    let u: f64 = rng.random_range(0.0..1.0);
    u.powf(1.0 / (a + 1.0)) as f32
}

/// Fills `out` with i.i.d. standard normals.
pub fn fill_gaussian(rng: &mut SmallRng, out: &mut [f32]) {
    for x in out.iter_mut() {
        *x = gaussian(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn power_law_zero_is_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20000;
        let mean: f64 = (0..n).map(|_| power_law(&mut rng, 0.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean should be ~0.5, got {mean}");
    }

    #[test]
    fn power_law_large_exponent_skews_high() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20000;
        let mean: f64 =
            (0..n).map(|_| power_law(&mut rng, 50.0) as f64).sum::<f64>() / n as f64;
        // E[X] = (a+1)/(a+2) = 51/52 ≈ 0.98.
        assert!(mean > 0.95, "a=50 mean should approach 1, got {mean}");
    }

    #[test]
    fn gaussian_fill_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = vec![0.0f32; 64];
        fill_gaussian(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }
}
