//! Vantage-Point trees — NGT's seed-selection structure.
//!
//! Each node picks a vantage point, computes distances from it to the
//! remaining points, and splits at the median distance: inner child holds
//! points closer than the median, outer child the rest. Query-time seed
//! retrieval is a bounded best-first search that *does* evaluate (counted)
//! distances to vantage points, unlike coordinate-comparing K-D trees.

use gass_core::distance::{l2_sq, Space};
use gass_core::neighbor::Neighbor;
use gass_core::reorder::IdRemap;
use gass_core::seed::SeedProvider;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

#[derive(Clone, Debug)]
enum Node {
    Ball {
        vantage: u32,
        radius: f32, // squared median distance
        inner: u32,
        outer: u32,
    },
    Leaf {
        ids: Vec<u32>,
    },
}

/// A vantage-point tree over all vectors of a store.
#[derive(Clone, Debug)]
pub struct VpTree {
    nodes: Vec<Node>,
    root: u32,
    leaf_size: usize,
}

impl VpTree {
    /// Builds the tree; construction distance evaluations are counted
    /// through `space`.
    ///
    /// # Panics
    /// Panics if the store is empty or `leaf_size == 0`.
    pub fn build(space: Space<'_>, leaf_size: usize, seed: u64) -> Self {
        assert!(!space.is_empty(), "VP-tree over empty store");
        assert!(leaf_size > 0, "leaf size must be positive");
        let ids: Vec<u32> = (0..space.len() as u32).collect();
        let mut tree = Self { nodes: Vec::new(), root: 0, leaf_size };
        let mut rng = SmallRng::seed_from_u64(seed);
        tree.root = tree.build_rec(space, ids, &mut rng);
        tree
    }

    fn build_rec(&mut self, space: Space<'_>, mut ids: Vec<u32>, rng: &mut SmallRng) -> u32 {
        if ids.len() <= self.leaf_size {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { ids });
            return idx;
        }
        let v_pos = rng.random_range(0..ids.len());
        let vantage = ids.swap_remove(v_pos);
        let mut with_d: Vec<(f32, u32)> =
            ids.iter().map(|&id| (space.dist(vantage, id), id)).collect();
        let mid = with_d.len() / 2;
        with_d.select_nth_unstable_by(mid, |a, b| a.0.total_cmp(&b.0));
        let radius = with_d[mid].0;
        let inner_ids: Vec<u32> = with_d[..mid].iter().map(|&(_, id)| id).collect();
        let mut outer_ids: Vec<u32> = with_d[mid..].iter().map(|&(_, id)| id).collect();
        // The vantage point itself lives with the outer child so every id
        // appears in exactly one leaf.
        outer_ids.push(vantage);
        if inner_ids.is_empty() {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { ids: outer_ids });
            return idx;
        }
        let inner = self.build_rec(space, inner_ids, rng);
        let outer = self.build_rec(space, outer_ids, rng);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Ball { vantage, radius, inner, outer });
        idx
    }

    /// Retrieves up to `budget` candidate ids for `query`, best-first by
    /// ball margin; vantage-point distances are counted through `space`.
    pub fn candidates(
        &self,
        space: Space<'_>,
        query: &[f32],
        budget: usize,
        out: &mut Vec<u32>,
    ) {
        let mut frontier: Vec<(f32, u32)> = vec![(0.0, self.root)];
        while !frontier.is_empty() {
            let mut best = 0;
            for i in 1..frontier.len() {
                if frontier[i].0 < frontier[best].0 {
                    best = i;
                }
            }
            let (_, node) = frontier.swap_remove(best);
            match &self.nodes[node as usize] {
                Node::Leaf { ids } => {
                    out.extend_from_slice(ids);
                    if out.len() >= budget {
                        return;
                    }
                }
                Node::Ball { vantage, radius, inner, outer } => {
                    let d = space.dist_to(query, *vantage);
                    // Margin to the splitting sphere, in squared space:
                    // approximate priority by |d - radius|.
                    let margin = (d - radius).abs();
                    if d < *radius {
                        frontier.push((0.0, *inner));
                        frontier.push((margin, *outer));
                    } else {
                        frontier.push((0.0, *outer));
                        frontier.push((margin, *inner));
                    }
                }
            }
        }
    }

    /// Exact-ish k-NN through the tree with a candidate budget, returning
    /// evaluated neighbors sorted by distance. Convenience for tests.
    pub fn knn(
        &self,
        space: Space<'_>,
        query: &[f32],
        k: usize,
        budget: usize,
    ) -> Vec<Neighbor> {
        let mut cand = Vec::new();
        self.candidates(space, query, budget, &mut cand);
        cand.sort_unstable();
        cand.dedup();
        let mut scored: Vec<Neighbor> = cand
            .into_iter()
            .map(|id| Neighbor::new(id, l2_sq(query, space.store().get(id))))
            .collect();
        scored.sort_unstable();
        scored.truncate(k);
        scored
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let leaf_ids: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { ids } => ids.capacity() * std::mem::size_of::<u32>(),
                _ => 0,
            })
            .sum();
        self.nodes.capacity() * std::mem::size_of::<Node>() + leaf_ids
    }

    /// Relabels vantage points and leaf ids through `map` after the
    /// vector store was permuted. Each remapped vantage id denotes the
    /// same vector, so the descent and its counted distance evaluations
    /// are unchanged.
    pub fn reorder(&mut self, map: &IdRemap) {
        for node in &mut self.nodes {
            match node {
                Node::Ball { vantage, .. } => *vantage = map.to_new(*vantage),
                Node::Leaf { ids } => {
                    for id in ids.iter_mut() {
                        *id = map.to_new(*id);
                    }
                }
            }
        }
    }
}

/// VP-tree seed provider (NGT's strategy). Holds its own tree; the store it
/// was built on must be the one queried.
#[derive(Clone, Debug)]
pub struct VpSeeds {
    tree: VpTree,
    /// After a reorder: `new → old` table used as the sort key so the
    /// truncated seed set is identical before and after relabeling.
    orig: Option<Vec<u32>>,
}

impl VpSeeds {
    /// Builds the VP-tree seed structure over `space`'s store.
    pub fn build(space: Space<'_>, leaf_size: usize, seed: u64) -> Self {
        Self { tree: VpTree::build(space, leaf_size, seed), orig: None }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &VpTree {
        &self.tree
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }
}

impl SeedProvider for VpSeeds {
    fn seeds(&self, space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        self.tree.candidates(space, query, count.max(1), out);
        match &self.orig {
            Some(orig) => out.sort_unstable_by_key(|&id| orig[id as usize]),
            None => out.sort_unstable(),
        }
        out.dedup();
        out.truncate(count.max(1));
    }

    fn label(&self) -> &'static str {
        "VP"
    }

    fn reorder(&mut self, map: &IdRemap) {
        self.tree.reorder(map);
        self.orig = Some(match self.orig.take() {
            Some(prev) => {
                (0..prev.len()).map(|id| prev[map.to_old(id as u32) as usize]).collect()
            }
            None => map.new_to_old().to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_core::store::VectorStore;

    fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn every_id_in_exactly_one_leaf() {
        let store = random_store(200, 4, 1);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let tree = VpTree::build(space, 8, 2);
        let mut all = Vec::new();
        // Exhaustive traversal: huge budget collects every leaf.
        tree.candidates(space, &[0.0; 4], usize::MAX, &mut all);
        all.sort_unstable();
        let expected: Vec<u32> = (0..200).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn construction_distances_are_counted() {
        let store = random_store(100, 4, 3);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let _ = VpTree::build(space, 8, 2);
        assert!(counter.get() > 0);
    }

    #[test]
    fn knn_finds_true_nn_with_generous_budget() {
        let store = random_store(300, 6, 5);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let tree = VpTree::build(space, 10, 6);
        let query: Vec<f32> = store.get(42).to_vec();
        let res = tree.knn(space, &query, 1, 300);
        assert_eq!(res[0].id, 42);
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn seed_provider_respects_count() {
        let store = random_store(100, 3, 9);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let seeds = VpSeeds::build(space, 5, 1);
        let mut out = Vec::new();
        seeds.seeds(space, &[0.1, 0.2, 0.3], 7, &mut out);
        assert!(out.len() <= 7);
        assert!(!out.is_empty());
        assert_eq!(seeds.label(), "VP");
    }

    #[test]
    fn small_budget_visits_few_points() {
        let store = random_store(500, 4, 11);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let tree = VpTree::build(space, 8, 3);
        counter.reset();
        let mut out = Vec::new();
        tree.candidates(space, store.get(7), 16, &mut out);
        assert!(out.len() >= 8);
        // Bounded traversal: far fewer vantage evaluations than points.
        assert!(counter.get() < 200, "too many evals: {}", counter.get());
    }
}
