//! Lloyd's k-means and the *balanced* variant used by Balanced K-means
//! Trees (SPTAG-BKT's seed-selection structure).
//!
//! Operates over an id subset of a [`VectorStore`] so divide-and-conquer
//! methods can cluster recursively without copying vectors. All point ↔
//! centroid distance evaluations are counted through the provided
//! [`Space`], so clustering cost shows up in construction accounting.

use gass_core::distance::{l2_sq, Space};
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// `k` centroid vectors (row-major, `dim` floats each).
    pub centroids: Vec<Vec<f32>>,
    /// For each input id (parallel to the `ids` argument), the index of its
    /// assigned cluster.
    pub assignment: Vec<usize>,
}

impl Clustering {
    /// Groups the input ids by cluster.
    pub fn groups(&self, ids: &[u32]) -> Vec<Vec<u32>> {
        let k = self.centroids.len();
        let mut groups = vec![Vec::new(); k];
        for (pos, &c) in self.assignment.iter().enumerate() {
            groups[c].push(ids[pos]);
        }
        groups
    }
}

fn init_centroids(
    store: &VectorStore,
    ids: &[u32],
    k: usize,
    rng: &mut SmallRng,
) -> Vec<Vec<f32>> {
    // k-means++ style seeding, but with a fixed candidate sample to keep it
    // O(k·sample) rather than O(k·n).
    let mut picks: Vec<u32> = ids.to_vec();
    picks.shuffle(rng);
    picks.truncate(k.max(1));
    // If fewer ids than k, repeat.
    while picks.len() < k {
        picks.push(ids[rng.random_range(0..ids.len())]);
    }
    picks.iter().map(|&id| store.get(id).to_vec()).collect()
}

/// Standard Lloyd's k-means over `ids`, `iters` refinement rounds.
///
/// # Panics
/// Panics if `ids` is empty or `k == 0`.
pub fn kmeans(space: Space<'_>, ids: &[u32], k: usize, iters: usize, seed: u64) -> Clustering {
    assert!(!ids.is_empty(), "k-means over empty id set");
    assert!(k > 0, "k must be positive");
    let store = space.store();
    let dim = store.dim();
    let k = k.min(ids.len());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = init_centroids(store, ids, k, &mut rng);
    let mut assignment = vec![0usize; ids.len()];

    for _ in 0..iters.max(1) {
        // Assign.
        for (pos, &id) in ids.iter().enumerate() {
            let v = store.get(id);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                space.counter().bump();
                let d = l2_sq(v, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[pos] = best;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (pos, &id) in ids.iter().enumerate() {
            let c = assignment[pos];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(store.get(id)) {
                *s += *x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed empty cluster at a random point.
                let id = ids[rng.random_range(0..ids.len())];
                centroids[c] = store.get(id).to_vec();
            } else {
                for (dst, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = (*s / counts[c] as f64) as f32;
                }
            }
        }
    }

    // Final assignment against the last centroid update.
    for (pos, &id) in ids.iter().enumerate() {
        let v = store.get(id);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, cent) in centroids.iter().enumerate() {
            space.counter().bump();
            let d = l2_sq(v, cent);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignment[pos] = best;
    }

    Clustering { centroids, assignment }
}

/// Balanced k-means (Malinen & Fränti style, greedy approximation): like
/// Lloyd's, but each cluster accepts at most `ceil(n/k)` points per round.
/// Points are processed in order of assignment confidence (gap between
/// best and second-best centroid), so strongly attached points claim their
/// cluster first.
pub fn balanced_kmeans(
    space: Space<'_>,
    ids: &[u32],
    k: usize,
    iters: usize,
    seed: u64,
) -> Clustering {
    assert!(!ids.is_empty(), "balanced k-means over empty id set");
    assert!(k > 0, "k must be positive");
    let store = space.store();
    let dim = store.dim();
    let k = k.min(ids.len());
    let cap = ids.len().div_ceil(k);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = init_centroids(store, ids, k, &mut rng);
    let mut assignment = vec![0usize; ids.len()];

    for _ in 0..iters.max(1) {
        // Compute all point->centroid distances and a confidence score:
        // (confidence, position, sorted (distance, centroid) preferences).
        type Pref = (f32, usize, Vec<(f32, usize)>);
        let mut prefs: Vec<Pref> = Vec::with_capacity(ids.len());
        for (pos, &id) in ids.iter().enumerate() {
            let v = store.get(id);
            let mut ds: Vec<(f32, usize)> = centroids
                .iter()
                .enumerate()
                .map(|(c, cent)| {
                    space.counter().bump();
                    (l2_sq(v, cent), c)
                })
                .collect();
            ds.sort_by(|a, b| a.0.total_cmp(&b.0));
            let confidence = if ds.len() > 1 { ds[1].0 - ds[0].0 } else { f32::INFINITY };
            prefs.push((confidence, pos, ds));
        }
        // Most-confident points assign first.
        prefs.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut loads = vec![0usize; k];
        for (_, pos, ds) in &prefs {
            let mut placed = false;
            for &(_, c) in ds {
                if loads[c] < cap {
                    assignment[*pos] = c;
                    loads[c] += 1;
                    placed = true;
                    break;
                }
            }
            debug_assert!(placed, "capacity sums to >= n, a slot must exist");
        }
        // Update centroids.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (pos, &id) in ids.iter().enumerate() {
            let c = assignment[pos];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(store.get(id)) {
                *s += *x as f64;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (dst, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = (*s / counts[c] as f64) as f32;
                }
            }
        }
    }

    Clustering { centroids, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;

    /// Two well-separated 2-d blobs of 20 points each.
    fn blobs() -> VectorStore {
        let mut s = VectorStore::new(2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            s.push(&[rng.random_range(-0.1..0.1f32), rng.random_range(-0.1..0.1f32)]);
        }
        for _ in 0..20 {
            s.push(&[10.0 + rng.random_range(-0.1..0.1f32), rng.random_range(-0.1..0.1f32)]);
        }
        s
    }

    #[test]
    fn kmeans_separates_blobs() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..40).collect();
        let c = kmeans(space, &ids, 2, 10, 1);
        // All points in the same blob share a cluster.
        let first = c.assignment[0];
        assert!(c.assignment[..20].iter().all(|&a| a == first));
        let second = c.assignment[20];
        assert_ne!(first, second);
        assert!(c.assignment[20..].iter().all(|&a| a == second));
        assert!(counter.get() > 0, "clustering cost must be counted");
    }

    #[test]
    fn kmeans_handles_k_larger_than_n() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = vec![0, 1, 2];
        let c = kmeans(space, &ids, 10, 3, 1);
        assert_eq!(c.centroids.len(), 3);
        assert_eq!(c.assignment.len(), 3);
    }

    #[test]
    fn balanced_kmeans_caps_cluster_sizes() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (0..40).collect();
        // 4 clusters over 40 points -> each cluster must hold exactly <=10.
        let c = balanced_kmeans(space, &ids, 4, 6, 9);
        let groups = c.groups(&ids);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert!(g.len() <= 10, "balanced cluster exceeded capacity: {}", g.len());
        }
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn groups_partition_input() {
        let store = blobs();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ids: Vec<u32> = (5..25).collect();
        let c = kmeans(space, &ids, 3, 4, 2);
        let groups = c.groups(&ids);
        let mut all: Vec<u32> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, ids);
    }
}
