//! **DPG** — Diversified Proximity Graph: a KGraph (NNDescent) base whose
//! neighborhoods are diversified by edge orientation — the strategy the
//! paper names **MOND** — and then made undirected to improve
//! connectivity.
//!
//! The paper notes DPG's public implementation actually uses RND rather
//! than MOND; we default to MOND per the published algorithm and expose
//! the strategy as a parameter so both variants can be measured.

use crate::common::BuildReport;
use crate::nndescent::KnnGraphState;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::{RandomSeeds, SeedProvider};
use gass_core::store::VectorStore;

/// DPG construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct DpgParams {
    /// Base k-NN graph neighbor count (`2·target_degree` is customary).
    pub base_k: usize,
    /// Diversified out-degree kept per node before the undirected closure.
    pub target_degree: usize,
    /// Diversification strategy (MOND per the paper; the public code uses
    /// RND).
    pub nd: NdStrategy,
    /// NNDescent iterations for the base graph.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). The
    /// NNDescent join and the per-node diversification both parallelize
    /// without changing the result: the built graph is bit-identical at
    /// any thread count.
    pub threads: usize,
}

impl DpgParams {
    /// Small-scale defaults: base `k=24`, keep 12, MOND θ=60°.
    pub fn small() -> Self {
        Self {
            base_k: 24,
            target_degree: 12,
            nd: NdStrategy::mond_default(),
            iters: 10,
            seed: 42,
            threads: 0,
        }
    }
}

/// A built DPG index.
pub struct DpgIndex {
    store: VectorStore,
    graph: AdjacencyGraph,
    serving: ServingState,
    seeds: RandomSeeds,
    scratch: ScratchPool,
    build: BuildReport,
}

impl DpgIndex {
    /// Builds the index: KGraph base → diversify → undirected closure.
    pub fn build(store: VectorStore, params: DpgParams) -> Self {
        assert!(store.len() > params.base_k, "need more points than base_k");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let graph = {
            let space = Space::new(&store, &counter);
            let threads = gass_core::effective_threads(params.threads);
            let mut state = KnnGraphState::random_init(space, params.base_k, params.seed);
            state.run_with(
                space,
                params.iters,
                params.base_k + 8,
                0.002,
                params.seed ^ 0xd,
                threads,
            );
            // Per-node diversification only reads the frozen lists.
            let kept_lists: Vec<Vec<u32>> = gass_core::par_map(threads, store.len(), |u| {
                params
                    .nd
                    .diversify(space, u as u32, &state.lists()[u], params.target_degree)
                    .into_iter()
                    .map(|n| n.id)
                    .collect()
            });
            let mut g = AdjacencyGraph::new(store.len());
            for (u, kept) in kept_lists.into_iter().enumerate() {
                g.set_neighbors(u as u32, kept);
            }
            g.undirected_closure();
            g
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let seeds = RandomSeeds::new(store.len(), params.seed ^ 0x5eed);
        Self {
            store,
            graph,
            seeds,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The underlying (undirected) graph.
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }
}

impl AnnIndex for DpgIndex {
    fn name(&self) -> String {
        "DPG".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn dpg_recall_is_reasonable() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = DpgIndex::build(base.clone(), DpgParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 80).with_seed_count(12);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.85, "DPG recall too low: {recall}");
    }

    #[test]
    fn closure_makes_graph_symmetric() {
        let base = deep_like(200, 3);
        let idx = DpgIndex::build(base, DpgParams::small());
        let g = idx.graph();
        for u in 0..g.num_nodes() as u32 {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u), "edge {u}->{v} missing its reverse");
            }
        }
    }

    #[test]
    fn rnd_variant_prunes_harder_than_mond() {
        let base = deep_like(300, 5);
        let mond = DpgIndex::build(base.clone(), DpgParams::small());
        let rnd =
            DpgIndex::build(base, DpgParams { nd: NdStrategy::Rnd, ..DpgParams::small() });
        assert!(
            rnd.stats().edges <= mond.stats().edges,
            "RND ({}) should not keep more edges than MOND ({})",
            rnd.stats().edges,
            mond.stats().edges
        );
    }
}
