//! Figure 18: the recommendation matrix — which methods to use by dataset
//! size, hardness, and recall target. Derived live from quick probes at
//! two tiers on an easy and a hard dataset, mirroring the paper's
//! decision tree:
//!
//! * ≤25GB + easy data  -> HNSW, NSG/SSG;
//! * ≤25GB + hard data  -> DC methods (SPTAG, ELPIS, HCNNG);
//! * ≥100GB             -> HNSW, ELPIS.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig18_recommend
//! ```

use gass_bench::{num_queries, results_dir, tiers};
use gass_data::DatasetKind;
use gass_eval::{evaluate_at, Table};
use gass_graphs::{build_method, MethodKind};

fn probe(kind: DatasetKind, n: usize, methods: &[MethodKind]) -> Vec<(String, f64, u64)> {
    let (base, queries) = kind.generate(n, num_queries().min(30), 181);
    let truth = gass_data::ground_truth(&base, &queries, 10);
    methods
        .iter()
        .map(|&m| {
            let built = build_method(m, base.clone(), 181);
            let p = evaluate_at(built.index.as_ref(), &queries, &truth, 10, 80, 16);
            eprintln!("probed {} on {}", m.name(), kind.name());
            (m.name(), p.recall, p.dist_calcs / queries.len() as u64)
        })
        .collect()
}

fn main() {
    let small = tiers()[0].n;
    let candidates = [
        MethodKind::Hnsw,
        MethodKind::Nsg,
        MethodKind::Ssg,
        MethodKind::Elpis,
        MethodKind::SptagBkt,
        MethodKind::Hcnng,
        MethodKind::Vamana,
    ];

    let mut table =
        Table::new(vec!["scenario", "recommended", "evidence(recall@L=80, dists/query)"]);

    // Small + easy.
    let mut easy = probe(DatasetKind::Deep, small, &candidates);
    easy.sort_by(|a, b| {
        (b.1, std::cmp::Reverse(b.2)).partial_cmp(&(a.1, std::cmp::Reverse(a.2))).unwrap()
    });
    let top_easy: Vec<String> = easy.iter().take(3).map(|e| e.0.clone()).collect();
    table.row(vec![
        "<=25GB, easy data".to_string(),
        top_easy.join(", "),
        easy.iter()
            .take(3)
            .map(|e| format!("{}:{:.3}/{}", e.0, e.1, e.2))
            .collect::<Vec<_>>()
            .join("  "),
    ]);

    // Small + hard.
    let mut hard = probe(DatasetKind::Seismic, small, &candidates);
    hard.sort_by(|a, b| {
        (b.1, std::cmp::Reverse(b.2)).partial_cmp(&(a.1, std::cmp::Reverse(a.2))).unwrap()
    });
    let top_hard: Vec<String> = hard.iter().take(3).map(|e| e.0.clone()).collect();
    table.row(vec![
        "<=25GB, hard data".to_string(),
        top_hard.join(", "),
        hard.iter()
            .take(3)
            .map(|e| format!("{}:{:.3}/{}", e.0, e.1, e.2))
            .collect::<Vec<_>>()
            .join("  "),
    ]);

    // Large tier: only the scalable builders qualify by construction.
    let mut large = probe(DatasetKind::Deep, tiers()[2].n, &MethodKind::scalable());
    large.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    table.row(vec![
        ">=100GB".to_string(),
        large.iter().take(2).map(|e| e.0.clone()).collect::<Vec<_>>().join(", "),
        large
            .iter()
            .map(|e| format!("{}:{:.3}/{}", e.0, e.1, e.2))
            .collect::<Vec<_>>()
            .join("  "),
    ]);

    table.emit(&results_dir(), "fig18_recommend").expect("write results");
    println!("Paper's matrix: HNSW/NSG/SSG for small+easy; SPTAG/ELPIS/HCNNG for small+hard; HNSW/ELPIS at scale.");
}
