//! Figure 14: query performance at the 100GB tier — only the methods
//! whose construction scaled (HNSW, ELPIS, Vamana).
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig14_search_100g
//! ```

use gass_bench::{run_search_figure, tiers};
use gass_data::DatasetKind;
use gass_graphs::MethodKind;

fn main() {
    let n = tiers()[2].n;
    let workloads = [(DatasetKind::Deep, n), (DatasetKind::Sift, n)];
    run_search_figure("fig14_search_100g", &workloads, &MethodKind::scalable(), 10, 105);
    println!("Read as Fig. 14: ELPIS and HNSW should lead, Vamana close behind.");
}
