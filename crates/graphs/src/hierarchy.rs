//! The stacked-NSW hierarchy — HNSW's multi-layer structure and the
//! paper's **SN** seed-selection strategy.
//!
//! Every node draws a maximum level `L = ⌊−ln(ξ)·mL⌋` with `mL = 1/ln(M)`
//! (Eq. 1 of the paper, as in HNSW); nodes with `L ≥ 1` are inserted into
//! sparse NSW graphs at layers `1..=L`, each layer diversified with RND.
//! A query greedily descends from the top layer's entry point; the node
//! reached at layer 1 (and its neighbors, via the subsequent beam search)
//! seed the base-layer search.
//!
//! The hierarchy is independent of the base graph, which is exactly what
//! the paper's Figure 6 experiment needs: attach SN to *any* graph built
//! over the same store.

use gass_core::distance::Space;
use gass_core::graph::GraphView;
use gass_core::nd::NdStrategy;
use gass_core::neighbor::Neighbor;
use gass_core::reorder::IdRemap;
use gass_core::search::{beam_search, SearchScratch};
use gass_core::seed::SeedProvider;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// One sparse layer: adjacency over a subset of global ids. Implements
/// [`GraphView`] so the shared beam search runs on it unchanged.
#[derive(Clone, Debug, Default)]
pub struct SparseLayer {
    adj: HashMap<u32, Vec<u32>>,
    num_nodes_global: usize,
}

impl SparseLayer {
    fn new(num_nodes_global: usize) -> Self {
        Self { adj: HashMap::new(), num_nodes_global }
    }

    /// Ids present in this layer.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.adj.keys().copied()
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` if the layer has no members.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.adj.values().map(|v| v.capacity() * std::mem::size_of::<u32>() + 24).sum()
    }
}

impl GraphView for SparseLayer {
    fn num_nodes(&self) -> usize {
        self.num_nodes_global
    }

    fn neighbors(&self, node: u32) -> &[u32] {
        self.adj.get(&node).map_or(&[], Vec::as_slice)
    }
}

/// Draws a node's maximum layer per Eq. 1: `⌊−ln(ξ) / ln(M)⌋`.
pub fn draw_level(m: usize, rng: &mut SmallRng) -> usize {
    let xi: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let ml = 1.0 / (m.max(2) as f64).ln();
    (-xi.ln() * ml).floor() as usize
}

/// The stacked-NSW hierarchy (layers ≥ 1 only; the base layer belongs to
/// the method that owns it).
#[derive(Debug)]
pub struct Hierarchy {
    layers: Vec<SparseLayer>,    // layers[0] is hierarchy layer 1
    entry: Option<(u32, usize)>, // (node, top layer index into `layers`)
    m: usize,
    ef: usize,
    scratch: Mutex<SearchScratch>,
}

impl Hierarchy {
    /// An empty hierarchy for a dataset of `n` vectors, max out-degree `m`
    /// and construction beam width `ef`.
    pub fn new(n: usize, m: usize, ef: usize) -> Self {
        assert!(m >= 2, "hierarchy degree must be at least 2");
        Self {
            layers: Vec::new(),
            entry: None,
            m,
            ef: ef.max(m),
            scratch: Mutex::new(SearchScratch::new(n, ef.max(m))),
        }
    }

    /// Builds the full hierarchy over every stored vector in one pass
    /// (standalone **SN** construction). Level draws are deterministic
    /// under `seed`.
    pub fn build_over_store(space: Space<'_>, m: usize, ef: usize, seed: u64) -> Self {
        let mut h = Self::new(space.len(), m, ef);
        let mut rng = SmallRng::seed_from_u64(seed);
        for id in 0..space.len() as u32 {
            let level = draw_level(m, &mut rng);
            h.insert(space, id, level);
        }
        h
    }

    /// Inserts `id` with maximum layer `level` (0 = base-only: hierarchy
    /// untouched except entry bookkeeping for the very first node).
    pub fn insert(&mut self, space: Space<'_>, id: u32, level: usize) {
        if level == 0 {
            if self.entry.is_none() {
                // Keep at least one entry point even if no node ever draws
                // a positive level (tiny datasets).
                self.entry = Some((id, 0));
                if self.layers.is_empty() {
                    self.layers.push(SparseLayer::new(space.len()));
                }
                self.layers[0].adj.entry(id).or_default();
            }
            return;
        }
        while self.layers.len() < level {
            self.layers.push(SparseLayer::new(space.len()));
        }
        let query = space.store().get(id).to_vec();

        // Greedy descent from the top down to `level + 1`.
        let (mut cur, top) = match self.entry {
            Some((e, t)) => (e, t),
            None => {
                for l in 0..level {
                    self.layers[l].adj.entry(id).or_default();
                }
                self.entry = Some((id, level - 1));
                return;
            }
        };
        let mut l = top as isize;
        while l >= level as isize {
            cur = greedy_on_layer(&self.layers[l as usize], space, &query, cur);
            l -= 1;
        }

        // Beam search + RND selection on each layer from min(level, top+1)
        // down to 1 (layer index level-1 .. 0).
        let mut scratch = self.scratch.lock().unwrap();
        for layer_idx in (0..level.min(top + 1)).rev() {
            let res = beam_search(
                &self.layers[layer_idx],
                space,
                &query,
                &[cur],
                self.ef,
                self.ef,
                &mut scratch,
            );
            let selected = NdStrategy::Rnd.diversify(space, id, &res.neighbors, self.m);
            let layer = &mut self.layers[layer_idx];
            layer.adj.insert(id, selected.iter().map(|n| n.id).collect());
            for nb in &selected {
                let list = layer.adj.entry(nb.id).or_default();
                if !list.contains(&id) {
                    list.push(id);
                }
                if list.len() > self.m {
                    let owner = nb.id;
                    let scored: Vec<Neighbor> = layer.adj[&owner]
                        .iter()
                        .map(|&v| Neighbor::new(v, space.dist(owner, v)))
                        .collect();
                    let kept = NdStrategy::Rnd.diversify(space, owner, &scored, self.m);
                    layer.adj.insert(owner, kept.into_iter().map(|n| n.id).collect());
                }
            }
            if !res.neighbors.is_empty() {
                cur = res.neighbors[0].id;
            }
        }

        // Layers above the previous top had no structure to search; the new
        // node simply becomes their (isolated) member and the entry point.
        for layer_idx in (top + 1)..level {
            self.layers[layer_idx].adj.entry(id).or_default();
        }
        if level > top + 1 {
            self.entry = Some((id, level - 1));
        }
    }

    /// Greedy descent for a query: returns the closest node found at
    /// hierarchy layer 1 (a base-graph seed). Distance evaluations are
    /// counted through `space` — SN's seed-selection overhead is real work
    /// the paper measures.
    pub fn descend(&self, space: Space<'_>, query: &[f32]) -> Option<u32> {
        self.descend_budgeted(space, query, 0)
    }

    /// [`Self::descend`] under a hard `max_dists` evaluation budget
    /// (`0` = unlimited, exactly `descend`). An exhausted descent
    /// returns its best node so far from whatever layer it reached: a
    /// mid-hierarchy entry point still seeds the base search usefully,
    /// which is how deadline-squeezed queries degrade gracefully instead
    /// of being dropped.
    pub fn descend_budgeted(
        &self,
        space: Space<'_>,
        query: &[f32],
        max_dists: usize,
    ) -> Option<u32> {
        let (mut cur, top) = self.entry?;
        let mut spent = 0usize;
        for l in (0..=top).rev() {
            let (node, used) = greedy_on_layer_budgeted(
                &self.layers[l],
                space,
                query,
                cur,
                max_dists.saturating_sub(spent),
                max_dists > 0,
            );
            cur = node;
            spent += used;
            if max_dists > 0 && spent >= max_dists {
                break;
            }
        }
        Some(cur)
    }

    /// Number of hierarchy layers (excluding the base layer).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The global entry node (top of the descent), if any — the natural
    /// BFS/RCM seed for graph reordering.
    pub fn entry_node(&self) -> Option<u32> {
        self.entry.map(|(e, _)| e)
    }

    /// Nodes present at hierarchy layer `l` (1-based layer = index `l-1`).
    pub fn layer_len(&self, l: usize) -> usize {
        self.layers.get(l).map_or(0, SparseLayer::len)
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.layers.iter().map(SparseLayer::heap_bytes).sum()
    }

    /// Relabels every layer's adjacency (keys and neighbor lists) and the
    /// entry point through `map` after the base store was permuted. The
    /// greedy descent visits the same vectors in the same order, so its
    /// counted distance evaluations are unchanged.
    pub fn reorder(&mut self, map: &IdRemap) {
        for layer in &mut self.layers {
            let adj = std::mem::take(&mut layer.adj);
            layer.adj = adj
                .into_iter()
                .map(|(node, mut nbrs)| {
                    for v in nbrs.iter_mut() {
                        *v = map.to_new(*v);
                    }
                    (map.to_new(node), nbrs)
                })
                .collect();
        }
        if let Some((e, _)) = self.entry.as_mut() {
            *e = map.to_new(*e);
        }
    }
}

fn greedy_on_layer(layer: &SparseLayer, space: Space<'_>, query: &[f32], entry: u32) -> u32 {
    greedy_on_layer_budgeted(layer, space, query, entry, 0, false).0
}

/// Budgeted per-layer hill climb: stops once `budget` evaluations were
/// spent (when `budgeted`), returning the best node found and the
/// evaluation count. With `budgeted == false` the loop runs to the local
/// minimum — exactly the historical `greedy_on_layer`.
fn greedy_on_layer_budgeted(
    layer: &SparseLayer,
    space: Space<'_>,
    query: &[f32],
    entry: u32,
    budget: usize,
    budgeted: bool,
) -> (u32, usize) {
    let mut best = entry;
    let mut best_d = space.dist_to(query, entry);
    let mut spent = 1usize;
    loop {
        if budgeted && spent >= budget {
            return (best, spent);
        }
        let mut improved = false;
        for &nb in layer.neighbors(best) {
            let d = space.dist_to(query, nb);
            spent += 1;
            if d < best_d {
                best = nb;
                best_d = d;
                improved = true;
            }
        }
        if !improved {
            return (best, spent);
        }
    }
}

/// **SN** seed provider: a standalone stacked-NSW hierarchy.
#[derive(Debug)]
pub struct SnSeeds {
    hierarchy: Hierarchy,
}

impl SnSeeds {
    /// Builds the hierarchy over `space`'s store.
    pub fn build(space: Space<'_>, m: usize, ef: usize, seed: u64) -> Self {
        Self { hierarchy: Hierarchy::build_over_store(space, m, ef, seed) }
    }

    /// Wraps an existing hierarchy.
    pub fn from_hierarchy(hierarchy: Hierarchy) -> Self {
        Self { hierarchy }
    }

    /// The wrapped hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.hierarchy.heap_bytes()
    }
}

impl SeedProvider for SnSeeds {
    fn seeds(&self, space: Space<'_>, query: &[f32], _count: usize, out: &mut Vec<u32>) {
        if let Some(s) = self.hierarchy.descend(space, query) {
            out.push(s);
        }
    }

    fn label(&self) -> &'static str {
        "SN"
    }

    fn reorder(&mut self, map: &IdRemap) {
        self.hierarchy.reorder(map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::DistCounter;
    use gass_data::synth::deep_like;

    #[test]
    fn level_distribution_is_geometricish() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50000;
        let levels: Vec<usize> = (0..n).map(|_| draw_level(16, &mut rng)).collect();
        let l0 = levels.iter().filter(|&&l| l == 0).count() as f64 / n as f64;
        // P(L=0) = 1 - 1/M = 15/16 ≈ 0.9375.
        assert!((l0 - 0.9375).abs() < 0.01, "P(level=0) = {l0}");
        let max = levels.iter().max().copied().unwrap_or(0);
        assert!(max <= 8, "implausibly deep hierarchy: {max}");
    }

    #[test]
    fn hierarchy_descend_finds_near_node() {
        let store = deep_like(400, 2);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let h = Hierarchy::build_over_store(space, 8, 32, 3);
        assert!(h.num_layers() >= 1);
        // Descending with a stored vector should land at a node whose
        // distance is no worse than the median pairwise distance.
        let q = store.get(77).to_vec();
        let landed = h.descend(space, &q).expect("entry exists");
        let d_landed = gass_core::l2_sq(&q, store.get(landed));
        let mut dists: Vec<f32> =
            (0..400u32).map(|v| gass_core::l2_sq(&q, store.get(v))).collect();
        dists.sort_by(f32::total_cmp);
        let median = dists[200];
        assert!(d_landed <= median, "descent landed badly: {d_landed} vs median {median}");
    }

    #[test]
    fn layers_shrink_upward() {
        let store = deep_like(1000, 5);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let h = Hierarchy::build_over_store(space, 8, 24, 6);
        for l in 1..h.num_layers() {
            assert!(h.layer_len(l) <= h.layer_len(l - 1), "layer {l} larger than layer below");
        }
        // Layer 1 holds roughly n/M of the nodes.
        let l1 = h.layer_len(0) as f64;
        assert!(l1 > 1000.0 / 8.0 * 0.4 && l1 < 1000.0 / 8.0 * 2.5, "layer1 = {l1}");
    }

    #[test]
    fn sn_seeds_counts_descent_distances() {
        let store = deep_like(300, 7);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let sn = SnSeeds::build(space, 8, 16, 9);
        counter.reset();
        let mut out = Vec::new();
        sn.seeds(space, store.get(5), 10, &mut out);
        assert_eq!(out.len(), 1);
        assert!(counter.get() > 0, "SN descent must be counted");
        assert_eq!(sn.label(), "SN");
    }

    #[test]
    fn degenerate_all_level_zero_still_has_entry() {
        let store = deep_like(5, 8);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut h = Hierarchy::new(5, 4, 8);
        for id in 0..5u32 {
            h.insert(space, id, 0);
        }
        assert_eq!(h.descend(space, store.get(3)), Some(0));
    }
}
