//! Distance kernels and the distance-call accounting used throughout the
//! evaluation.
//!
//! The paper measures efficiency primarily in **number of distance
//! calculations**, a machine-independent proxy for work. Every search and
//! construction routine in this workspace therefore funnels its distance
//! evaluations through a [`DistCounter`] so experiments can report the exact
//! figure.
//!
//! All graph methods in the paper use the Euclidean distance; we compute the
//! *squared* Euclidean distance internally (monotone in the true distance,
//! one `sqrt` cheaper) and take square roots only at reporting boundaries
//! (e.g. LID/LRC estimation).
//!
//! ## Kernel dispatch
//!
//! The hot kernels ([`l2_sq`], [`l2_sq_batch`], [`dot`]) are dispatched at
//! runtime to an explicit SIMD implementation — AVX2 on x86-64, NEON on
//! aarch64 — with the unrolled scalar code as the portable fallback.
//! Detection runs once; `GASS_NO_SIMD=1` forces the scalar path for A/B
//! runs, and [`set_simd_enabled`] toggles it in-process for ablation
//! harnesses.
//!
//! **Every backend is bit-identical.** All implementations follow one
//! canonical arithmetic: eight accumulator lanes (lane `j` receives the
//! elements at positions `≡ j (mod 8)`), unfused multiply-then-add, and a
//! fixed `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` reduction tree. Because
//! IEEE-754 single-precision operations round identically whether executed
//! in a vector register or one float at a time, switching kernels changes
//! *only* wall-clock time: recall, traversal paths, and [`DistCounter`]
//! totals are invariant — which is exactly what an evaluation framework
//! built on machine-independent metrics needs.

use crate::store::VectorStore;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Accumulator lanes in the canonical kernel arithmetic (one AVX2 vector;
/// two NEON vectors). Also the element granularity of the padded store
/// layout's stride rounding (`16` floats = one cache line; a multiple of
/// this).
pub const KERNEL_LANES: usize = 8;

// --- runtime kernel dispatch -------------------------------------------

const BACKEND_UNINIT: u8 = 0;
const BACKEND_SCALAR: u8 = 1;
pub(crate) const BACKEND_AVX2: u8 = 2;
pub(crate) const BACKEND_NEON: u8 = 3;

static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNINIT);

/// Best SIMD backend the host supports (ignoring overrides).
fn native_backend() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return BACKEND_AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return BACKEND_NEON;
        }
    }
    BACKEND_SCALAR
}

#[cold]
fn init_backend() -> u8 {
    let no_simd = std::env::var("GASS_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0");
    let b = if no_simd { BACKEND_SCALAR } else { native_backend() };
    BACKEND.store(b, Ordering::Relaxed);
    b
}

#[inline(always)]
fn backend() -> u8 {
    let b = BACKEND.load(Ordering::Relaxed);
    if b == BACKEND_UNINIT {
        init_backend()
    } else {
        b
    }
}

/// The active backend id, for sibling modules (`quant`) that dispatch
/// their own kernels under the same detection, env override and in-process
/// toggle.
#[inline(always)]
pub(crate) fn active_backend() -> u8 {
    backend()
}

/// Name of the active kernel backend: `"avx2"`, `"neon"`, or `"scalar"`.
pub fn simd_backend() -> &'static str {
    match backend() {
        BACKEND_AVX2 => "avx2",
        BACKEND_NEON => "neon",
        _ => "scalar",
    }
}

/// Enables or disables the SIMD kernels at runtime (ablation harnesses use
/// this to A/B within one process). Disabling selects the scalar fallback;
/// enabling re-detects the best backend. Because every backend is
/// bit-identical, toggling mid-run changes wall-clock behavior only.
pub fn set_simd_enabled(on: bool) {
    let b = if on { native_backend() } else { BACKEND_SCALAR };
    BACKEND.store(b, Ordering::Relaxed);
}

// Software prefetch is governed the same way: on by default, `GASS_NO_PREFETCH`
// disables it for a whole run, `set_prefetch_enabled` toggles it in-process.
// Tri-state so the env var is read once, lazily.
static PREFETCH: AtomicU8 = AtomicU8::new(PF_UNINIT);
const PF_UNINIT: u8 = 0;
const PF_OFF: u8 = 1;
const PF_ON: u8 = 2;

#[cold]
fn init_prefetch() -> u8 {
    let off = std::env::var("GASS_NO_PREFETCH").is_ok_and(|v| !v.is_empty() && v != "0");
    let p = if off { PF_OFF } else { PF_ON };
    PREFETCH.store(p, Ordering::Relaxed);
    p
}

/// `true` when query-time software prefetching is active.
#[inline(always)]
pub fn prefetch_enabled() -> bool {
    let p = PREFETCH.load(Ordering::Relaxed);
    if p == PF_UNINIT {
        init_prefetch() == PF_ON
    } else {
        p == PF_ON
    }
}

/// Enables or disables query-time software prefetching (ablation knob;
/// prefetching has no semantic effect either way).
pub fn set_prefetch_enabled(on: bool) {
    PREFETCH.store(if on { PF_ON } else { PF_OFF }, Ordering::Relaxed);
}

// --- scalar reference kernels ------------------------------------------

/// Reduces the eight canonical accumulator lanes in the fixed tree order
/// shared by every backend.
#[inline(always)]
fn reduce8(acc: [f32; 8]) -> f32 {
    let c = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    (c[0] + c[2]) + (c[1] + c[3])
}

/// Scalar reference for [`l2_sq`]: eight-lane unrolled squared Euclidean
/// distance. The unrolling matters twice over — it breaks the FP-add
/// latency chain, and it autovectorizes well where explicit SIMD is
/// unavailable. Tail elements keep their lane (position `mod 8`), which is
/// what makes the SIMD backends' zero-masked tail handling bit-identical.
#[inline]
pub fn l2_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let base = i * 8;
        for lane in 0..8 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let base = chunks * 8;
    for lane in 0..a.len() - base {
        let d = a[base + lane] - b[base + lane];
        acc[lane] += d * d;
    }
    reduce8(acc)
}

/// Scalar reference for [`l2_sq_batch`]: four independent [`l2_sq_scalar`]
/// accumulations sharing each loaded query chunk.
#[inline]
pub fn l2_sq_batch_scalar(query: &[f32], vs: [&[f32]; 4]) -> [f32; 4] {
    for v in vs {
        debug_assert_eq!(query.len(), v.len());
    }
    let mut acc = [[0.0f32; 8]; 4];
    let chunks = query.len() / 8;
    for i in 0..chunks {
        let base = i * 8;
        for (v, vec) in vs.iter().enumerate() {
            for lane in 0..8 {
                let d = query[base + lane] - vec[base + lane];
                acc[v][lane] += d * d;
            }
        }
    }
    let base = chunks * 8;
    let mut out = [0.0f32; 4];
    for (v, vec) in vs.iter().enumerate() {
        for lane in 0..query.len() - base {
            let d = query[base + lane] - vec[base + lane];
            acc[v][lane] += d * d;
        }
        out[v] = reduce8(acc[v]);
    }
    out
}

/// Scalar reference for [`dot`]: eight-lane unrolled inner product.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let base = i * 8;
        for lane in 0..8 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let base = chunks * 8;
    for lane in 0..a.len() - base {
        acc[lane] += a[base + lane] * b[base + lane];
    }
    reduce8(acc)
}

// --- AVX2 kernels -------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 implementations of the canonical kernel arithmetic. No FMA
    //! contraction: fusing the multiply-add would change rounding and break
    //! bit-identity with the scalar reference (the ~cycle it would save is
    //! dwarfed by the loads on this memory-bound kernel). Tails load
    //! through `vmaskmov`, which reads only the enabled lanes and yields
    //! zeros elsewhere — and a `(0-0)²` or `0·0` term leaves its
    //! accumulator lane bit-unchanged.

    use core::arch::x86_64::*;

    /// Mask table for tail loads: `TAIL_MASK[8 - rem ..]` enables the
    /// first `rem` lanes.
    static TAIL_MASK: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

    #[inline(always)]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        debug_assert!((1..=7).contains(&rem));
        _mm256_loadu_si256(TAIL_MASK.as_ptr().add(8 - rem) as *const __m256i)
    }

    /// Canonical `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` reduction.
    #[inline(always)]
    unsafe fn reduce8(acc: __m256) -> f32 {
        let c = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        let d = _mm_add_ps(c, _mm_movehl_ps(c, c));
        let e = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
        _mm_cvtss_f32(e)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 8;
        for i in 0..chunks {
            let d =
                _mm256_sub_ps(_mm256_loadu_ps(pa.add(i * 8)), _mm256_loadu_ps(pb.add(i * 8)));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        }
        let rem = n % 8;
        if rem != 0 {
            let m = tail_mask(rem);
            let d = _mm256_sub_ps(
                _mm256_maskload_ps(pa.add(chunks * 8), m),
                _mm256_maskload_ps(pb.add(chunks * 8), m),
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        }
        reduce8(acc)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn l2_sq_batch(query: &[f32], vs: [&[f32]; 4]) -> [f32; 4] {
        for v in vs {
            debug_assert_eq!(query.len(), v.len());
        }
        let n = query.len();
        let pq = query.as_ptr();
        let pv = [vs[0].as_ptr(), vs[1].as_ptr(), vs[2].as_ptr(), vs[3].as_ptr()];
        let mut acc = [_mm256_setzero_ps(); 4];
        let chunks = n / 8;
        for i in 0..chunks {
            let q = _mm256_loadu_ps(pq.add(i * 8));
            for v in 0..4 {
                let d = _mm256_sub_ps(q, _mm256_loadu_ps(pv[v].add(i * 8)));
                acc[v] = _mm256_add_ps(acc[v], _mm256_mul_ps(d, d));
            }
        }
        let rem = n % 8;
        if rem != 0 {
            let m = tail_mask(rem);
            let q = _mm256_maskload_ps(pq.add(chunks * 8), m);
            for v in 0..4 {
                let d = _mm256_sub_ps(q, _mm256_maskload_ps(pv[v].add(chunks * 8), m));
                acc[v] = _mm256_add_ps(acc[v], _mm256_mul_ps(d, d));
            }
        }
        [reduce8(acc[0]), reduce8(acc[1]), reduce8(acc[2]), reduce8(acc[3])]
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 8;
        for i in 0..chunks {
            let p =
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(i * 8)), _mm256_loadu_ps(pb.add(i * 8)));
            acc = _mm256_add_ps(acc, p);
        }
        let rem = n % 8;
        if rem != 0 {
            let m = tail_mask(rem);
            let p = _mm256_mul_ps(
                _mm256_maskload_ps(pa.add(chunks * 8), m),
                _mm256_maskload_ps(pb.add(chunks * 8), m),
            );
            acc = _mm256_add_ps(acc, p);
        }
        reduce8(acc)
    }
}

// --- NEON kernels -------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON implementations of the canonical kernel arithmetic: two
    //! `float32x4` accumulators model the eight lanes (low half = lanes
    //! 0–3, high half = lanes 4–7), so the cross-half `lo + hi` add is the
    //! canonical reduction's first level. Tails go through a zero-filled
    //! stack buffer; zero terms leave their accumulator lane bit-unchanged.

    use core::arch::aarch64::*;

    #[inline(always)]
    unsafe fn reduce8(lo: float32x4_t, hi: float32x4_t) -> f32 {
        let c = vaddq_f32(lo, hi);
        let (c0, c1, c2, c3) = (
            vgetq_lane_f32(c, 0),
            vgetq_lane_f32(c, 1),
            vgetq_lane_f32(c, 2),
            vgetq_lane_f32(c, 3),
        );
        (c0 + c2) + (c1 + c3)
    }

    /// Copies the `rem`-element tail starting at `p` into a zero-padded
    /// 8-float buffer.
    #[inline(always)]
    unsafe fn tail(p: *const f32, rem: usize) -> [f32; 8] {
        let mut buf = [0.0f32; 8];
        core::ptr::copy_nonoverlapping(p, buf.as_mut_ptr(), rem);
        buf
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        let chunks = n / 8;
        for i in 0..chunks {
            let d0 = vsubq_f32(vld1q_f32(pa.add(i * 8)), vld1q_f32(pb.add(i * 8)));
            let d1 = vsubq_f32(vld1q_f32(pa.add(i * 8 + 4)), vld1q_f32(pb.add(i * 8 + 4)));
            lo = vaddq_f32(lo, vmulq_f32(d0, d0));
            hi = vaddq_f32(hi, vmulq_f32(d1, d1));
        }
        let rem = n % 8;
        if rem != 0 {
            let ta = tail(pa.add(chunks * 8), rem);
            let tb = tail(pb.add(chunks * 8), rem);
            let d0 = vsubq_f32(vld1q_f32(ta.as_ptr()), vld1q_f32(tb.as_ptr()));
            let d1 = vsubq_f32(vld1q_f32(ta.as_ptr().add(4)), vld1q_f32(tb.as_ptr().add(4)));
            lo = vaddq_f32(lo, vmulq_f32(d0, d0));
            hi = vaddq_f32(hi, vmulq_f32(d1, d1));
        }
        reduce8(lo, hi)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn l2_sq_batch(query: &[f32], vs: [&[f32]; 4]) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        for (o, v) in out.iter_mut().zip(vs) {
            *o = l2_sq(query, v);
        }
        out
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        let chunks = n / 8;
        for i in 0..chunks {
            lo = vaddq_f32(lo, vmulq_f32(vld1q_f32(pa.add(i * 8)), vld1q_f32(pb.add(i * 8))));
            hi = vaddq_f32(
                hi,
                vmulq_f32(vld1q_f32(pa.add(i * 8 + 4)), vld1q_f32(pb.add(i * 8 + 4))),
            );
        }
        let rem = n % 8;
        if rem != 0 {
            let ta = tail(pa.add(chunks * 8), rem);
            let tb = tail(pb.add(chunks * 8), rem);
            lo = vaddq_f32(lo, vmulq_f32(vld1q_f32(ta.as_ptr()), vld1q_f32(tb.as_ptr())));
            hi = vaddq_f32(
                hi,
                vmulq_f32(vld1q_f32(ta.as_ptr().add(4)), vld1q_f32(tb.as_ptr().add(4))),
            );
        }
        reduce8(lo, hi)
    }
}

// --- dispatched public kernels -----------------------------------------

/// Squared Euclidean distance between two equal-length slices, dispatched
/// to the best available kernel (see the module docs: all backends are
/// bit-identical).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        BACKEND_AVX2 => unsafe { avx2::l2_sq(a, b) },
        #[cfg(target_arch = "aarch64")]
        BACKEND_NEON => unsafe { neon::l2_sq(a, b) },
        _ => l2_sq_scalar(a, b),
    }
}

/// Squared Euclidean distance from one query to **four** stored vectors at
/// once — the beam-search neighbor loop's batched kernel.
///
/// Evaluating four candidates per call reuses each loaded query chunk
/// across all four vectors and gives the hardware four independent
/// accumulation chains. Per vector the arithmetic is exactly [`l2_sq`]'s,
/// so results are bit-identical to four separate calls.
#[inline]
pub fn l2_sq_batch(query: &[f32], vs: [&[f32]; 4]) -> [f32; 4] {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        BACKEND_AVX2 => unsafe { avx2::l2_sq_batch(query, vs) },
        #[cfg(target_arch = "aarch64")]
        BACKEND_NEON => unsafe { neon::l2_sq_batch(query, vs) },
        _ => l2_sq_batch_scalar(query, vs),
    }
}

/// Euclidean distance (`sqrt` of [`l2_sq`]).
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Inner product of two equal-length slices, dispatched like [`l2_sq`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        BACKEND_AVX2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        BACKEND_NEON => unsafe { neon::dot(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// Squared L2 norm.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Cosine *distance* (1 − cosine similarity). Zero vectors are treated as
/// maximally distant.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm_sq(a).sqrt();
    let nb = norm_sq(b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Shared, thread-safe counter of distance evaluations, split by
/// precision: full-precision `f32` evaluations and quantized `u8`
/// evaluations are tracked separately so harnesses can prove where the
/// work went under SQ8 serving ([`get_f32`](Self::get_f32) /
/// [`get_u8`](Self::get_u8)); [`get`](Self::get) stays the combined total,
/// so all pre-quantization accounting is unchanged.
///
/// Cloning is cheap (an `Arc` bump); clones observe the same count, which is
/// what parallel index construction needs. Counting uses relaxed atomics —
/// the total is read only after the workload quiesces.
#[derive(Clone, Debug, Default)]
pub struct DistCounter(Arc<DistCounts>);

#[derive(Debug, Default)]
struct DistCounts {
    full: AtomicU64,
    quant: AtomicU64,
}

impl DistCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` full-precision (`f32`) distance evaluations.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.full.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a single full-precision distance evaluation.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Records `n` quantized (`u8` code-space) distance evaluations.
    #[inline]
    pub fn add_u8(&self, n: u64) {
        self.0.quant.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a single quantized distance evaluation.
    #[inline]
    pub fn bump_u8(&self) {
        self.add_u8(1);
    }

    /// Current total across both precisions (the paper's machine-
    /// independent work metric).
    pub fn get(&self) -> u64 {
        self.get_f32() + self.get_u8()
    }

    /// Full-precision (`f32`) evaluations only.
    pub fn get_f32(&self) -> u64 {
        self.0.full.load(Ordering::Relaxed)
    }

    /// Quantized (`u8`) evaluations only.
    pub fn get_u8(&self) -> u64 {
        self.0.quant.load(Ordering::Relaxed)
    }

    /// Resets both precisions to zero (between experiment phases).
    pub fn reset(&self) {
        self.0.full.store(0, Ordering::Relaxed);
        self.0.quant.store(0, Ordering::Relaxed);
    }
}

/// A view of a [`CodecStore`](crate::quant::CodecStore) (SQ8, SQ4 or PQ
/// codes) plus the serving-time rerank policy, attached to a [`Space`] to
/// route traversal through compressed code-space distances.
#[derive(Clone, Copy)]
pub struct QuantView<'a> {
    store: &'a dyn crate::quant::CodecStore,
    rerank_factor: usize,
}

impl<'a> QuantView<'a> {
    /// Pairs quantized codes with a rerank pool multiplier (a
    /// `rerank_factor * k` candidate pool is re-scored exactly before
    /// results are returned; values below 1 behave as 1).
    pub fn new(store: &'a dyn crate::quant::CodecStore, rerank_factor: usize) -> Self {
        Self { store, rerank_factor: rerank_factor.max(1) }
    }

    /// The quantized codes.
    #[inline]
    pub fn store(&self) -> &'a dyn crate::quant::CodecStore {
        self.store
    }

    /// Exact re-scoring pool multiplier (≥ 1).
    #[inline]
    pub fn rerank_factor(&self) -> usize {
        self.rerank_factor
    }
}

/// A vector store paired with a distance counter: the "space" every search
/// and construction routine runs in.
///
/// This is deliberately a borrow-holding view rather than an owning struct:
/// methods keep their own `VectorStore` and create `Space` views per phase
/// so each phase gets its own accounting.
#[derive(Clone, Copy)]
pub struct Space<'a> {
    store: &'a VectorStore,
    counter: &'a DistCounter,
    quant: Option<QuantView<'a>>,
}

impl<'a> Space<'a> {
    /// Wraps a store and counter (full-precision space; no quantization).
    pub fn new(store: &'a VectorStore, counter: &'a DistCounter) -> Self {
        Self { store, counter, quant: None }
    }

    /// Attaches (or detaches) a quantized view. With a view present, the
    /// shared searches traverse on `u8` code-space distances and re-score
    /// a `rerank_factor * k` pool exactly before returning.
    pub fn with_quant(mut self, quant: Option<QuantView<'a>>) -> Self {
        self.quant = quant;
        self
    }

    /// The attached quantized view, if any.
    #[inline]
    pub fn quant(&self) -> Option<QuantView<'a>> {
        self.quant
    }

    /// The underlying store.
    #[inline]
    pub fn store(&self) -> &'a VectorStore {
        self.store
    }

    /// The distance counter.
    #[inline]
    pub fn counter(&self) -> &'a DistCounter {
        self.counter
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// Counted squared distance between stored vectors `i` and `j`.
    #[inline]
    pub fn dist(&self, i: u32, j: u32) -> f32 {
        self.counter.bump();
        l2_sq(self.store.get(i), self.store.get(j))
    }

    /// Counted squared distance between an external query and stored
    /// vector `i`.
    #[inline]
    pub fn dist_to(&self, query: &[f32], i: u32) -> f32 {
        self.counter.bump();
        l2_sq(query, self.store.get(i))
    }

    /// Counted squared distances from `query` to four stored vectors at
    /// once (see [`l2_sq_batch`]). Counts four evaluations.
    #[inline]
    pub fn dist_to_batch(&self, query: &[f32], ids: [u32; 4]) -> [f32; 4] {
        self.counter.add(4);
        l2_sq_batch(
            query,
            [
                self.store.get(ids[0]),
                self.store.get(ids[1]),
                self.store.get(ids[2]),
                self.store.get(ids[3]),
            ],
        )
    }

    /// Hints the CPU to pull stored vector `i` into cache (see
    /// [`VectorStore::prefetch`]). Free of semantic effect; a no-op when
    /// prefetching is disabled via `GASS_NO_PREFETCH` /
    /// [`set_prefetch_enabled`].
    #[inline]
    pub fn prefetch(&self, i: u32) {
        if prefetch_enabled() {
            self.store.prefetch(i);
        }
    }

    /// Counted quantized distance from a prepared query to vector `i`.
    /// Only meaningful when a quant view is attached.
    ///
    /// # Panics
    /// Panics if no quant view is attached.
    #[inline]
    pub fn qdist_to(&self, pq: &crate::quant::PreparedQuery, i: u32) -> f32 {
        self.counter.bump_u8();
        self.quant.expect("qdist_to without a quant view").store().dist_prepared(pq, i)
    }

    /// Counted quantized distances from a prepared query to four vectors
    /// at once. Counts four `u8` evaluations.
    ///
    /// # Panics
    /// Panics if no quant view is attached.
    #[inline]
    pub fn qdist_to_batch(&self, pq: &crate::quant::PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        self.counter.add_u8(4);
        self.quant
            .expect("qdist_to_batch without a quant view")
            .store()
            .dist_prepared_batch(pq, ids)
    }

    /// Prefetch analog of [`Self::prefetch`] for the quantized code row of
    /// vector `i`. No-op without a quant view or with prefetch disabled.
    #[inline]
    pub fn qprefetch(&self, i: u32) {
        if prefetch_enabled() {
            if let Some(q) = self.quant {
                q.store().prefetch(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn l2_sq_zero_for_identical() {
        let a = vec![1.5f32; 9];
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    fn ramp(dim: usize, phase: usize) -> Vec<f32> {
        (0..dim).map(|i| ((i + phase * 31) as f32 * 0.3).cos()).collect()
    }

    #[test]
    fn dispatched_kernels_are_bit_identical_to_scalar() {
        // Exercises every tail length (dims 1..=40 cover all `mod 8`
        // classes several times) plus the paper's dataset dims.
        for dim in (1usize..=40).chain([96, 100, 128, 200, 960]) {
            let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
            let b = ramp(dim, 1);
            assert_eq!(
                l2_sq(&a, &b).to_bits(),
                l2_sq_scalar(&a, &b).to_bits(),
                "l2_sq dim={dim} backend={}",
                simd_backend()
            );
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_scalar(&a, &b).to_bits(),
                "dot dim={dim} backend={}",
                simd_backend()
            );
            let vs: Vec<Vec<f32>> = (0..4).map(|v| ramp(dim, v + 2)).collect();
            let refs = [&vs[0][..], &vs[1][..], &vs[2][..], &vs[3][..]];
            let batch = l2_sq_batch(&a, refs);
            let batch_ref = l2_sq_batch_scalar(&a, refs);
            for v in 0..4 {
                assert_eq!(
                    batch[v].to_bits(),
                    batch_ref[v].to_bits(),
                    "batch dim={dim} v={v} backend={}",
                    simd_backend()
                );
            }
        }
    }

    #[test]
    fn l2_sq_batch_is_bit_identical_to_l2_sq() {
        // Awkward dimensions exercise the remainder path too.
        for dim in [1usize, 4, 8, 13, 96, 100] {
            let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
            let vs: Vec<Vec<f32>> = (0..4).map(|v| ramp(dim, v)).collect();
            let batch = l2_sq_batch(&q, [&vs[0], &vs[1], &vs[2], &vs[3]]);
            for v in 0..4 {
                assert_eq!(
                    batch[v].to_bits(),
                    l2_sq(&q, &vs[v]).to_bits(),
                    "dim={dim} vector={v}"
                );
            }
        }
    }

    #[test]
    fn simd_toggle_round_trips() {
        // Scalar and SIMD are bit-identical, so flipping the global toggle
        // is observable only through the backend name. (Safe against
        // concurrent tests for the same reason.)
        let before = simd_backend();
        set_simd_enabled(false);
        assert_eq!(simd_backend(), "scalar");
        set_simd_enabled(true);
        let native = simd_backend();
        assert!(["avx2", "neon", "scalar"].contains(&native));
        set_simd_enabled(before != "scalar");
    }

    #[test]
    fn dist_to_batch_counts_four() {
        let store = VectorStore::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let ds = space.dist_to_batch(&[0.0, 0.0], [0, 1, 2, 3]);
        assert_eq!(counter.get(), 4);
        assert_eq!(ds, [0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn l2_is_sqrt_of_l2_sq() {
        let a = [3.0f32, 0.0];
        let b = [0.0f32, 4.0];
        assert!((l2(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let b: Vec<f32> = (1..=10).map(|i| (i * 2) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn cosine_distance_bounds() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine_distance(&a, &a)).abs() < 1e-6);
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
        let c = [-1.0f32, 0.0];
        assert!((cosine_distance(&a, &c) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_zero_vector() {
        let z = [0.0f32, 0.0];
        let a = [1.0f32, 0.0];
        assert_eq!(cosine_distance(&z, &a), 1.0);
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let c = DistCounter::new();
        let c2 = c.clone();
        c.add(3);
        c2.bump();
        assert_eq!(c.get(), 4);
        c.reset();
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn counter_splits_precisions_and_totals_them() {
        let c = DistCounter::new();
        c.add(3);
        c.add_u8(5);
        c.bump_u8();
        assert_eq!(c.get_f32(), 3);
        assert_eq!(c.get_u8(), 6);
        assert_eq!(c.get(), 9, "get() stays the combined total");
        c.reset();
        assert_eq!((c.get_f32(), c.get_u8()), (0, 0));
    }

    #[test]
    fn space_counts_every_call() {
        let store = VectorStore::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        assert!((space.dist(0, 1) - 25.0).abs() < 1e-6);
        assert!((space.dist_to(&[0.0, 0.0], 1) - 25.0).abs() < 1e-6);
        assert_eq!(counter.get(), 2);
        space.prefetch(1); // semantic no-op, must not affect the counter
        assert_eq!(counter.get(), 2);
    }
}
