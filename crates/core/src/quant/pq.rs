//! Product quantization: `m` subquantizers × 16 k-means centroids with
//! 4-bit codes, scored through per-query distance tables scanned by SIMD
//! 16-entry LUT kernels — the Faiss/kANNolo fast-scan family adapted to
//! scattered graph traversal.
//!
//! ## Codes
//!
//! Each vector splits into `m` subvectors of `dsub = dim/m` dimensions.
//! Dimensions are dealt to subquantizers by descending per-dim variance
//! in snake order (L2 is permutation-invariant, so distances are
//! unchanged), which balances the quantization energy across
//! subquantizers — contiguous blocking concentrates the error in the
//! high-variance regions of histogram-style data and measurably hurts
//! rerank containment. Subquantizer `j` assigns its subvector to the
//! nearest of (up to) 16 centroids learned by a **deterministic** Lloyd's
//! k-means over a stride-sampled training set (maximin seeding from the
//! subspace mean, fixed iteration count, farthest-point reseeding of
//! empty clusters — no RNG, so the same store always yields the same
//! codebooks and codes). Codes pack two per byte (even `j` low nibble,
//! odd `j` high nibble), rows pad to a multiple of 16 bytes from a
//! 64-byte-aligned base.
//!
//! ## Per-query LUT and the compare-select scan
//!
//! [`PqStore::prepare_into`] computes the exact `f32` table `T[j][c] =
//! ‖q_j − centroid_{j,c}‖²`, then quantizes it to `u8` with a per-query
//! additive bias (`Σ_j min_c T[j][c]`) and one shared scale `λ`
//! (`max residual / 255`), so a candidate's code distance is recovered as
//! `λ · Σ_j lut[j][c_j] + bias` — the inner sum is **exact integer**
//! arithmetic, which is why scalar and SIMD agree bitwise by construction.
//!
//! True `vpshufb` fast-scan shuffles one subquantizer's 16-entry table
//! against 16 *sequential* database vectors; graph traversal visits
//! scattered ids in batches of four, so the kernels here keep the
//! register-resident 16-entry tables but select with compare masks
//! instead: for each candidate code value `c`, `sel |= (codes == c) &
//! lut_row[c]` — the masks are disjoint, so the OR accumulates each lane's
//! table entry — then a horizontal byte sum feeds the integer accumulator
//! (`vpcmpeqb`/`vpand`/`vpor`/`vpsadbw` on AVX2, `vceqq`/`vandq`/`vorrq`/
//! `vpadalq` on NEON). The LUT is laid out chunk-major for 16-byte rows:
//! for each 16-byte group of code bytes (32 subquantizers), entry `c`
//! stores 16 even-nibble bytes then 16 odd-nibble bytes at offset
//! `chunk·512 + c·32`.

use super::{
    lines_as_bytes_mut, CodeBuf, CodeLine, CodecSpec, CodecStore, PreparedQuery, LINE_U8,
};
use crate::distance::l2_sq;
use crate::par::par_map;
use crate::store::VectorStore;

/// Centroids per subquantizer (4-bit codes).
pub const KSUB: usize = 16;

/// Training sample cap: k-means sees every `ceil(n / PQ_TRAIN_MAX)`-th row.
const PQ_TRAIN_MAX: usize = 32_768;

/// Lloyd refinement rounds.
const PQ_KMEANS_ITERS: usize = 25;

/// LUT bytes per 16-byte code chunk: 16 entries × (16 even + 16 odd).
const LUT_CHUNK: usize = 512;

/// The divisor of `dim` nearest `dim/6` (ties prefer the larger `m`) —
/// the default subquantizer count, matching the extension ladder's
/// operating point (e.g. 960 → 160, 96 → 16, 100 → 20).
pub fn pq_auto_m(dim: usize) -> usize {
    assert!(dim > 0, "vector dimension must be positive");
    let target = ((dim as f64) / 6.0).round().max(1.0) as usize;
    let mut best = 1usize;
    for m in 1..=dim {
        if dim.is_multiple_of(m) {
            let (d, bd) = (m.abs_diff(target), best.abs_diff(target));
            if d < bd || (d == bd && m > best) {
                best = m;
            }
        }
    }
    best
}

/// Bytes between consecutive row starts: two codes per byte, rounded up
/// to whole 16-byte kernel chunks.
pub(crate) fn pq_stride(m: usize) -> usize {
    m.div_ceil(2).next_multiple_of(16)
}

/// Deals dimensions to subquantizers by descending per-dim variance
/// (computed over the training sample, f64 sums in row order) in snake
/// order, so every subquantizer receives a balanced share of the data's
/// energy. Returns the group-major map: subquantizer `j`'s `p`-th
/// dimension is original dimension `perm[j*dsub + p]`.
fn balanced_dim_order(store: &VectorStore, train: &[u32], m: usize, dsub: usize) -> Vec<u32> {
    let dim = m * dsub;
    let mut sum = vec![0.0f64; dim];
    let mut sq = vec![0.0f64; dim];
    for &id in train {
        for (d, &x) in store.get(id).iter().enumerate() {
            sum[d] += x as f64;
            sq[d] += (x as f64) * (x as f64);
        }
    }
    let n = train.len() as f64;
    let mut order: Vec<u32> = (0..dim as u32).collect();
    order.sort_by(|&a, &b| {
        let va = sq[a as usize] / n - (sum[a as usize] / n).powi(2);
        let vb = sq[b as usize] / n - (sum[b as usize] / n).powi(2);
        vb.total_cmp(&va).then(a.cmp(&b))
    });
    let mut perm = vec![0u32; dim];
    for (rank, &d) in order.iter().enumerate() {
        let (round, lane) = (rank / m, rank % m);
        let j = if round % 2 == 0 { lane } else { m - 1 - lane };
        perm[j * dsub + round] = d;
    }
    perm
}

/// Deterministic Lloyd's k-means over subvector `j` of the training rows,
/// via the workspace's shared trainer [`crate::kmeans::maximin_lloyd`]:
/// maximin seeding, fixed iterations, empty clusters reseeded at the
/// current farthest-assigned points (successively, index tie-break). Same
/// inputs always produce the same centroids. Returns `ncent` centroids
/// flattened, zero-padded to [`KSUB`] rows.
fn train_subquantizer(
    store: &VectorStore,
    train: &[u32],
    perm_j: &[u32],
    ncent: usize,
) -> Vec<f32> {
    let dsub = perm_j.len();
    // Gather this subquantizer's (permuted) training subvectors once into
    // a flat matrix so the k-means inner loops stay contiguous.
    let tv: Vec<f32> = train
        .iter()
        .flat_map(|&id| {
            let row = store.get(id);
            perm_j.iter().map(move |&d| row[d as usize])
        })
        .collect();
    let mut centroids = crate::kmeans::maximin_lloyd(&tv, dsub, ncent, PQ_KMEANS_ITERS);
    centroids.resize(KSUB * dsub, 0.0);
    centroids
}

/// Encodes every row of `store` against fixed codebooks: nearest centroid
/// per subquantizer (strict `<`, lowest index on ties), nibble-packed.
/// Row-local, so it commutes with any row permutation.
fn encode_rows(
    store: &VectorStore,
    m: usize,
    dsub: usize,
    ncent: usize,
    centroids: &[f32],
    perm: &[u32],
    stride: usize,
) -> Vec<CodeLine> {
    let rows: Vec<Vec<u8>> = par_map(0, store.len(), |i| {
        let row = store.get(i as u32);
        let mut sv = vec![0.0f32; dsub];
        let mut packed = vec![0u8; m.div_ceil(2)];
        for j in 0..m {
            for (s, &d) in sv.iter_mut().zip(&perm[j * dsub..(j + 1) * dsub]) {
                *s = row[d as usize];
            }
            let v = &sv[..];
            let base = j * KSUB * dsub;
            let (mut best, mut best_d) = (0usize, f32::INFINITY);
            for c in 0..ncent {
                let d = l2_sq(v, &centroids[base + c * dsub..base + (c + 1) * dsub]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            packed[j / 2] |= (best as u8) << (4 * (j % 2));
        }
        packed
    });
    let mut codes = vec![CodeLine([0u8; LINE_U8]); (store.len() * stride).div_ceil(LINE_U8)];
    let raw = lines_as_bytes_mut(&mut codes);
    for (i, row) in rows.iter().enumerate() {
        raw[i * stride..i * stride + row.len()].copy_from_slice(row);
    }
    codes
}

/// Product-quantized codes over a whole [`VectorStore`]: `m` subquantizer
/// codebooks plus nibble-packed code rows in 16-byte-strided,
/// 64-byte-based storage.
#[derive(Clone, Debug)]
pub struct PqStore {
    dim: usize,
    m: usize,
    dsub: usize,
    ncent: usize,
    stride: usize,
    len: usize,
    /// Group-major dimension map: subquantizer `j`'s `p`-th dimension is
    /// original dimension `perm[j*dsub + p]` (the variance-balanced snake
    /// deal from [`balanced_dim_order`]).
    perm: Vec<u32>,
    /// `m * KSUB * dsub` floats; centroid `c` of subquantizer `j` at
    /// `[(j*KSUB + c)*dsub ..][..dsub]` (rows past `ncent` are zero pads).
    centroids: Vec<f32>,
    codes: CodeBuf,
}

impl PqStore {
    /// Trains codebooks on (a deterministic sample of) `store` and encodes
    /// every row. `m` must divide the dimensionality; `None` resolves via
    /// [`pq_auto_m`].
    ///
    /// # Panics
    /// Panics if `store` is empty or `m` does not divide `dim`.
    pub fn from_store(store: &VectorStore, m: Option<usize>) -> Self {
        assert!(!store.is_empty(), "cannot quantize an empty store");
        let dim = store.dim();
        let m = m.unwrap_or_else(|| pq_auto_m(dim));
        assert!(
            m >= 1 && m <= dim && dim.is_multiple_of(m),
            "pq subquantizer count m={m} must divide dim={dim}"
        );
        let dsub = dim / m;
        let step = store.len().div_ceil(PQ_TRAIN_MAX);
        let train: Vec<u32> = (0..store.len() as u32).step_by(step).collect();
        let ncent = train.len().min(KSUB);
        let perm = balanced_dim_order(store, &train, m, dsub);
        let centroids: Vec<f32> = par_map(0, m, |j| {
            train_subquantizer(store, &train, &perm[j * dsub..(j + 1) * dsub], ncent)
        })
        .into_iter()
        .flatten()
        .collect();
        let stride = pq_stride(m);
        let codes =
            CodeBuf::Heap(encode_rows(store, m, dsub, ncent, &centroids, &perm, stride));
        Self { dim, m, dsub, ncent, stride, len: store.len(), perm, centroids, codes }
    }

    /// Reassembles a store from persisted parts: the group-major dimension
    /// permutation, full padded codebooks (`m * 16 * dsub` floats with
    /// `dsub = dim/m`), the live centroid count, and packed code rows
    /// (`ceil(m/2)` bytes each).
    ///
    /// # Panics
    /// Panics if the lengths are inconsistent or `perm` is not a
    /// permutation of `0..dim`.
    pub fn from_parts(
        dim: usize,
        m: usize,
        ncent: usize,
        perm: Vec<u32>,
        centroids: Vec<f32>,
        packed: Vec<u8>,
    ) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(m >= 1 && m <= dim && dim.is_multiple_of(m), "m={m} must divide dim={dim}");
        assert!((1..=KSUB).contains(&ncent), "centroid count {ncent} out of range");
        assert_eq!(perm.len(), dim, "dimension permutation length mismatch");
        let mut seen = vec![false; dim];
        for &d in &perm {
            assert!(
                (d as usize) < dim && !std::mem::replace(&mut seen[d as usize], true),
                "perm is not a permutation of 0..{dim}"
            );
        }
        let dsub = dim / m;
        assert_eq!(centroids.len(), m * KSUB * dsub, "codebook length mismatch");
        let row_bytes = m.div_ceil(2);
        assert!(
            packed.len().is_multiple_of(row_bytes),
            "packed code length {} is not a multiple of row width {}",
            packed.len(),
            row_bytes
        );
        let stride = pq_stride(m);
        let len = packed.len() / row_bytes;
        let mut codes = vec![CodeLine([0u8; LINE_U8]); (len * stride).div_ceil(LINE_U8)];
        let raw = lines_as_bytes_mut(&mut codes);
        for (id, row) in packed.chunks_exact(row_bytes).enumerate() {
            raw[id * stride..id * stride + row_bytes].copy_from_slice(row);
        }
        Self { dim, m, dsub, ncent, stride, len, perm, centroids, codes: CodeBuf::Heap(codes) }
    }

    /// Reassembles a store over a mapped code area (row geometry identical
    /// to the heap layout: `stride` bytes per row from a 64-byte base).
    ///
    /// # Panics
    /// Panics if parameter lengths or the region size are inconsistent, or
    /// `perm` is not a permutation of `0..dim`.
    pub fn from_parts_mapped(
        dim: usize,
        m: usize,
        ncent: usize,
        perm: Vec<u32>,
        centroids: Vec<f32>,
        len: usize,
        region: crate::mmap::MmapRegion,
    ) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(m >= 1 && m <= dim && dim.is_multiple_of(m), "m={m} must divide dim={dim}");
        assert!((1..=KSUB).contains(&ncent), "centroid count {ncent} out of range");
        assert_eq!(perm.len(), dim, "dimension permutation length mismatch");
        let mut seen = vec![false; dim];
        for &d in &perm {
            assert!(
                (d as usize) < dim && !std::mem::replace(&mut seen[d as usize], true),
                "perm is not a permutation of 0..{dim}"
            );
        }
        let dsub = dim / m;
        assert_eq!(centroids.len(), m * KSUB * dsub, "codebook length mismatch");
        let stride = pq_stride(m);
        assert_eq!(
            region.len(),
            (len * stride).next_multiple_of(LINE_U8),
            "mapped code area size mismatch"
        );
        Self {
            dim,
            m,
            dsub,
            ncent,
            stride,
            len,
            perm,
            centroids,
            codes: CodeBuf::from_mapped(region),
        }
    }

    /// Number of encoded vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Subquantizer count.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Live centroids per subquantizer (≤ 16; fewer only on tiny stores).
    #[inline]
    pub fn ncent(&self) -> usize {
        self.ncent
    }

    /// Bytes between consecutive row starts (a multiple of 16).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The full padded codebooks (`m * 16 * dsub` floats).
    #[inline]
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// The group-major dimension permutation (`dim` entries; subquantizer
    /// `j`'s `p`-th dimension is original dimension `perm()[j*dsub + p]`).
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Centroid `c` of subquantizer `j`.
    #[inline]
    fn centroid(&self, j: usize, c: usize) -> &[f32] {
        let start = (j * KSUB + c) * self.dsub;
        &self.centroids[start..start + self.dsub]
    }

    /// The full padded code row of vector `id` (`stride` bytes).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn code_row(&self, id: u32) -> &[u8] {
        let start = id as usize * self.stride;
        &self.codes.bytes()[start..start + self.stride]
    }

    /// Copies the logical code bytes into a packed `len * ceil(m/2)`
    /// buffer (padding stripped) — the persisted representation.
    pub fn to_packed_codes(&self) -> Vec<u8> {
        let row_bytes = self.m.div_ceil(2);
        let mut out = Vec::with_capacity(self.len * row_bytes);
        for id in 0..self.len as u32 {
            out.extend_from_slice(&self.code_row(id)[..row_bytes]);
        }
        out
    }

    /// Copies the store with code rows relabeled through `map`. Encoding
    /// is row-local under fixed codebooks, so the permuted rows are
    /// bit-identical to re-encoding the permuted vectors with this store's
    /// codebooks.
    pub fn permute(&self, map: &crate::reorder::IdRemap) -> PqStore {
        assert_eq!(map.len(), self.len, "remap covers a different vector count");
        let mut codes =
            vec![CodeLine([0u8; LINE_U8]); (self.len * self.stride).div_ceil(LINE_U8)];
        let src = self.codes.bytes();
        let dst = lines_as_bytes_mut(&mut codes);
        for new in 0..self.len {
            let old = map.to_old(new as u32) as usize;
            dst[new * self.stride..(new + 1) * self.stride]
                .copy_from_slice(&src[old * self.stride..old * self.stride + self.stride]);
        }
        Self {
            codes: CodeBuf::Heap(codes),
            perm: self.perm.clone(),
            centroids: self.centroids.clone(),
            ..*self
        }
    }

    /// Reconstructs vector `id` by scattering its assigned centroids back
    /// through the dimension permutation.
    pub fn decode(&self, id: u32) -> Vec<f32> {
        let row = self.code_row(id);
        let mut out = vec![0.0f32; self.dim];
        for j in 0..self.m {
            let c = ((row[j / 2] >> (4 * (j % 2))) & 0x0F) as usize;
            for (&d, &x) in
                self.perm[j * self.dsub..(j + 1) * self.dsub].iter().zip(self.centroid(j, c))
            {
                out[d as usize] = x;
            }
        }
        out
    }

    /// Builds the per-query quantized distance LUT (see the module docs):
    /// exact `f32` tables per subquantizer, folded into a `u8` table with
    /// bias `Σ_j min_c T[j][c]` and shared scale `λ`, laid out chunk-major
    /// for the compare-select kernels. Padded subquantizers and dead
    /// centroid slots hold zero and are never selected by live codes.
    pub fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery) {
        debug_assert_eq!(query.len(), self.dim, "query dimension mismatch");
        out.u.clear();
        out.s.clear();
        out.lut.clear();
        out.lut.resize((self.stride / 16) * LUT_CHUNK, 0);
        let mut table = vec![0.0f32; self.m * KSUB];
        let mut qsub = vec![0.0f32; self.dsub];
        let mut bias = 0.0f32;
        let mut maxres = 0.0f32;
        for j in 0..self.m {
            for (s, &d) in qsub.iter_mut().zip(&self.perm[j * self.dsub..(j + 1) * self.dsub]) {
                *s = query[d as usize];
            }
            let row = &mut table[j * KSUB..j * KSUB + self.ncent];
            let mut mn = f32::INFINITY;
            for (c, slot) in row.iter_mut().enumerate() {
                let d = l2_sq(&qsub, self.centroid(j, c));
                *slot = d;
                mn = mn.min(d);
            }
            bias += mn;
            for slot in row.iter_mut() {
                *slot -= mn;
                maxres = maxres.max(*slot);
            }
        }
        let inv = if maxres > 0.0 { 255.0 / maxres } else { 0.0 };
        for j in 0..self.m {
            // Chunk of 16 code bytes, lane within it, even/odd half.
            let (chunk, lane, half) = (j / 32, (j % 32) / 2, j % 2);
            let base = chunk * LUT_CHUNK + half * 16 + lane;
            for c in 0..self.ncent {
                let q = (table[j * KSUB + c] * inv).round().clamp(0.0, 255.0) as u8;
                out.lut[base + c * 32] = q;
            }
        }
        out.lut_scale = maxres / 255.0;
        out.lut_bias = bias;
    }

    /// Code distance from a prepared query to vector `id`: exact integer
    /// LUT sum, mapped back through the query's scale and bias.
    #[inline]
    pub fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32 {
        let sum = pq_scan(&pq.lut, self.code_row(id));
        (sum as f32).mul_add(pq.lut_scale, pq.lut_bias)
    }

    /// Code distances to **four** vectors at once (bit-identical to four
    /// [`Self::dist_prepared`] calls — the LUT sums are exact integers).
    #[inline]
    pub fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        let sums = pq_scan_batch(
            &pq.lut,
            [
                self.code_row(ids[0]),
                self.code_row(ids[1]),
                self.code_row(ids[2]),
                self.code_row(ids[3]),
            ],
        );
        let mut out = [0.0f32; 4];
        for (o, s) in out.iter_mut().zip(sums) {
            *o = (s as f32).mul_add(pq.lut_scale, pq.lut_bias);
        }
        out
    }

    /// Hints the CPU to pull vector `id`'s code row into L1. Semantically
    /// a no-op.
    #[inline]
    pub fn prefetch(&self, id: u32) {
        let start = id as usize * self.stride;
        let raw = self.codes.bytes();
        debug_assert!(start + self.stride <= raw.len());
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        unsafe {
            let p = raw.as_ptr().add(start).cast::<i8>();
            #[cfg(target_arch = "x86_64")]
            {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(p);
                if self.stride > LINE_U8 {
                    _mm_prefetch::<_MM_HINT_T0>(p.add(64));
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                core::arch::asm!(
                    "prfm pldl1keep, [{0}]",
                    in(reg) p,
                    options(nostack, preserves_flags)
                );
                if self.stride > LINE_U8 {
                    core::arch::asm!(
                        "prfm pldl1keep, [{0}]",
                        in(reg) p.add(64),
                        options(nostack, preserves_flags)
                    );
                }
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let _ = raw;
    }

    /// Heap bytes held by the codes, codebooks, and dimension map (mapped
    /// code areas count zero; their residency is kernel-managed).
    pub fn heap_bytes(&self) -> usize {
        self.codes.heap_bytes()
            + self.centroids.capacity() * std::mem::size_of::<f32>()
            + self.perm.capacity() * std::mem::size_of::<u32>()
    }

    /// Re-encodes `store` under this store's codebooks (the commutation
    /// reference: `permute` must equal encode-after-permute).
    #[cfg(test)]
    fn reencode(&self, store: &VectorStore) -> PqStore {
        assert_eq!(store.dim(), self.dim);
        let codes = encode_rows(
            store,
            self.m,
            self.dsub,
            self.ncent,
            &self.centroids,
            &self.perm,
            self.stride,
        );
        Self {
            codes: CodeBuf::Heap(codes),
            perm: self.perm.clone(),
            centroids: self.centroids.clone(),
            len: store.len(),
            ..*self
        }
    }
}

impl CodecStore for PqStore {
    fn spec(&self) -> CodecSpec {
        CodecSpec::Pq { m: Some(self.m) }
    }

    fn dim(&self) -> usize {
        self.dim()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn code_row(&self, id: u32) -> &[u8] {
        self.code_row(id)
    }

    fn prepare_into(&self, query: &[f32], out: &mut PreparedQuery) {
        self.prepare_into(query, out);
    }

    fn dist_prepared(&self, pq: &PreparedQuery, id: u32) -> f32 {
        self.dist_prepared(pq, id)
    }

    fn dist_prepared_batch(&self, pq: &PreparedQuery, ids: [u32; 4]) -> [f32; 4] {
        self.dist_prepared_batch(pq, ids)
    }

    fn prefetch(&self, id: u32) {
        self.prefetch(id);
    }

    fn decode(&self, id: u32) -> Vec<f32> {
        self.decode(id)
    }

    fn permute(&self, map: &crate::reorder::IdRemap) -> Box<dyn CodecStore> {
        Box::new(PqStore::permute(self, map))
    }

    fn heap_bytes(&self) -> usize {
        self.heap_bytes()
    }

    fn clone_box(&self) -> Box<dyn CodecStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// --- LUT scan kernels ---------------------------------------------------

/// Scalar reference for [`pq_scan`]: per 16-byte code chunk, each byte's
/// two nibbles index the chunk's even/odd 16-entry tables. Pure integer —
/// the SIMD backends must (and do) match it exactly.
#[inline]
pub fn pq_scan_scalar(lut: &[u8], codes: &[u8]) -> u32 {
    debug_assert!(codes.len().is_multiple_of(16), "code rows are 16-byte chunks");
    debug_assert_eq!(lut.len(), codes.len() * 32, "LUT covers every chunk");
    let mut sum = 0u32;
    for (b, chunk) in codes.chunks_exact(16).enumerate() {
        let base = b * LUT_CHUNK;
        for (i, &byte) in chunk.iter().enumerate() {
            let lo = (byte & 0x0F) as usize;
            let hi = (byte >> 4) as usize;
            sum += lut[base + lo * 32 + i] as u32;
            sum += lut[base + hi * 32 + 16 + i] as u32;
        }
    }
    sum
}

/// Scalar reference for [`pq_scan_batch`].
#[inline]
pub fn pq_scan_batch_scalar(lut: &[u8], codes: [&[u8]; 4]) -> [u32; 4] {
    [
        pq_scan_scalar(lut, codes[0]),
        pq_scan_scalar(lut, codes[1]),
        pq_scan_scalar(lut, codes[2]),
        pq_scan_scalar(lut, codes[3]),
    ]
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 compare-select LUT scan: the 16 even-nibble codes ride the low
    //! 128-bit lane, the 16 odd-nibble codes the high lane, so one 256-bit
    //! load pulls entry `c`'s even+odd table rows and one
    //! `vpcmpeqb`+`vpand`+`vpor` sequence selects both halves at once.
    //! `vpsadbw` folds the selected bytes into 64-bit partials — exact
    //! integer arithmetic end to end.

    use core::arch::x86_64::*;

    #[inline(always)]
    unsafe fn sum_sad(acc: __m256i) -> u32 {
        let s = _mm_add_epi64(_mm256_castsi256_si128(acc), _mm256_extracti128_si256::<1>(acc));
        (_mm_cvtsi128_si64(s) + _mm_extract_epi64::<1>(s)) as u32
    }

    /// Loads one 16-byte code chunk with even nibbles in the low lane and
    /// odd nibbles in the high lane.
    #[inline(always)]
    unsafe fn load_nibbles(p: *const u8) -> __m256i {
        let cv = _mm_loadu_si128(p as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let lo = _mm_and_si128(cv, mask);
        let hi = _mm_and_si128(_mm_srli_epi16::<4>(cv), mask);
        _mm256_set_m128i(hi, lo)
    }

    /// Selects each lane's LUT entry for one chunk via 16 compare-select
    /// rounds (disjoint masks, so OR accumulates the selection).
    #[inline(always)]
    unsafe fn select_chunk(cb: __m256i, lp: *const u8) -> __m256i {
        let mut sel = _mm256_setzero_si256();
        for c in 0..16i8 {
            let eq = _mm256_cmpeq_epi8(cb, _mm256_set1_epi8(c));
            let row = _mm256_loadu_si256(lp.add(c as usize * 32) as *const __m256i);
            sel = _mm256_or_si256(sel, _mm256_and_si256(eq, row));
        }
        sel
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pq_scan(lut: &[u8], codes: &[u8]) -> u32 {
        debug_assert!(codes.len().is_multiple_of(16));
        debug_assert_eq!(lut.len(), codes.len() * 32);
        let mut acc = _mm256_setzero_si256();
        for (b, chunk) in codes.chunks_exact(16).enumerate() {
            let cb = load_nibbles(chunk.as_ptr());
            let sel = select_chunk(cb, lut.as_ptr().add(b * super::LUT_CHUNK));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(sel, _mm256_setzero_si256()));
        }
        sum_sad(acc)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pq_scan_batch(lut: &[u8], codes: [&[u8]; 4]) -> [u32; 4] {
        for c in codes {
            debug_assert_eq!(c.len(), codes[0].len());
        }
        debug_assert!(codes[0].len().is_multiple_of(16));
        debug_assert_eq!(lut.len(), codes[0].len() * 32);
        let chunks = codes[0].len() / 16;
        let zero = _mm256_setzero_si256();
        let mut acc = [zero; 4];
        for b in 0..chunks {
            let lp = lut.as_ptr().add(b * super::LUT_CHUNK);
            let cb = [
                load_nibbles(codes[0].as_ptr().add(b * 16)),
                load_nibbles(codes[1].as_ptr().add(b * 16)),
                load_nibbles(codes[2].as_ptr().add(b * 16)),
                load_nibbles(codes[3].as_ptr().add(b * 16)),
            ];
            let mut sel = [zero; 4];
            for c in 0..16i8 {
                let bc = _mm256_set1_epi8(c);
                let row = _mm256_loadu_si256(lp.add(c as usize * 32) as *const __m256i);
                for v in 0..4 {
                    sel[v] = _mm256_or_si256(
                        sel[v],
                        _mm256_and_si256(_mm256_cmpeq_epi8(cb[v], bc), row),
                    );
                }
            }
            for v in 0..4 {
                acc[v] = _mm256_add_epi64(acc[v], _mm256_sad_epu8(sel[v], zero));
            }
        }
        [sum_sad(acc[0]), sum_sad(acc[1]), sum_sad(acc[2]), sum_sad(acc[3])]
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON compare-select LUT scan: `vceqq_u8` masks, `vandq`/`vorrq`
    //! selection, widening pairwise adds (`vpaddlq_u8` → `vpadalq_u16`)
    //! into a `u32x4` accumulator — exact integer arithmetic end to end.

    use core::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn pq_scan(lut: &[u8], codes: &[u8]) -> u32 {
        debug_assert!(codes.len() % 16 == 0);
        debug_assert_eq!(lut.len(), codes.len() * 32);
        let mut acc = vdupq_n_u32(0);
        for (b, chunk) in codes.chunks_exact(16).enumerate() {
            let cv = vld1q_u8(chunk.as_ptr());
            let lo = vandq_u8(cv, vdupq_n_u8(0x0F));
            let hi = vshrq_n_u8::<4>(cv);
            let lp = lut.as_ptr().add(b * super::LUT_CHUNK);
            let mut sel_e = vdupq_n_u8(0);
            let mut sel_o = vdupq_n_u8(0);
            for c in 0..16u8 {
                let bc = vdupq_n_u8(c);
                let e_row = vld1q_u8(lp.add(c as usize * 32));
                let o_row = vld1q_u8(lp.add(c as usize * 32 + 16));
                sel_e = vorrq_u8(sel_e, vandq_u8(vceqq_u8(lo, bc), e_row));
                sel_o = vorrq_u8(sel_o, vandq_u8(vceqq_u8(hi, bc), o_row));
            }
            acc = vpadalq_u16(acc, vpaddlq_u8(sel_e));
            acc = vpadalq_u16(acc, vpaddlq_u8(sel_o));
        }
        vaddvq_u32(acc)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn pq_scan_batch(lut: &[u8], codes: [&[u8]; 4]) -> [u32; 4] {
        let mut out = [0u32; 4];
        for (o, c) in out.iter_mut().zip(codes) {
            *o = pq_scan(lut, c);
        }
        out
    }
}

/// Integer LUT sum of one code row against a prepared query table,
/// dispatched to the best available kernel (all backends exact — the sum
/// is the same `u32` everywhere). `codes` is a whole number of 16-byte
/// chunks; `lut` holds 512 bytes per chunk in the layout documented in
/// the module docs.
#[inline]
pub fn pq_scan(lut: &[u8], codes: &[u8]) -> u32 {
    match crate::distance::active_backend() {
        #[cfg(target_arch = "x86_64")]
        crate::distance::BACKEND_AVX2 => unsafe { avx2::pq_scan(lut, codes) },
        #[cfg(target_arch = "aarch64")]
        crate::distance::BACKEND_NEON => unsafe { neon::pq_scan(lut, codes) },
        _ => pq_scan_scalar(lut, codes),
    }
}

/// [`pq_scan`] against **four** code rows at once, sharing the broadcast
/// and table loads. Identical results to four separate calls.
#[inline]
pub fn pq_scan_batch(lut: &[u8], codes: [&[u8]; 4]) -> [u32; 4] {
    match crate::distance::active_backend() {
        #[cfg(target_arch = "x86_64")]
        crate::distance::BACKEND_AVX2 => unsafe { avx2::pq_scan_batch(lut, codes) },
        #[cfg(target_arch = "aarch64")]
        crate::distance::BACKEND_NEON => unsafe { neon::pq_scan_batch(lut, codes) },
        _ => pq_scan_batch_scalar(lut, codes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_store(n: usize, dim: usize) -> VectorStore {
        let mut s = VectorStore::new(dim);
        for i in 0..n {
            let row: Vec<f32> =
                (0..dim).map(|d| ((i * 31 + d * 7) as f32 * 0.37).sin() * 3.0).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn auto_m_picks_divisor_near_dim_over_six() {
        assert_eq!(pq_auto_m(960), 160);
        assert_eq!(pq_auto_m(96), 16);
        assert_eq!(pq_auto_m(100), 20);
        assert_eq!(pq_auto_m(128), 16);
        assert_eq!(pq_auto_m(25), 5);
        assert_eq!(pq_auto_m(1), 1);
        for dim in 1usize..=300 {
            let m = pq_auto_m(dim);
            assert!(dim % m == 0, "dim={dim} m={m}");
        }
    }

    #[test]
    fn rows_are_chunk_padded_and_aligned() {
        let store = ramp_store(20, 96); // auto m = 16 -> 8 packed bytes -> stride 16
        let q = PqStore::from_store(&store, None);
        assert_eq!(q.m(), 16);
        assert_eq!(q.stride(), 16);
        assert_eq!(q.len(), 20);
        for id in 0..20u32 {
            assert_eq!(q.code_row(id).as_ptr() as usize % 16, 0, "row {id} misaligned");
            assert!(q.code_row(id)[8..].iter().all(|&b| b == 0), "padding must be zero");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let store = ramp_store(50, 24);
        let a = PqStore::from_store(&store, Some(4));
        let b = PqStore::from_store(&store, Some(4));
        assert_eq!(a.centroids(), b.centroids());
        for id in 0..50u32 {
            assert_eq!(a.code_row(id), b.code_row(id), "row {id}");
        }
    }

    #[test]
    fn single_vector_store_decodes_exactly() {
        let store = VectorStore::from_flat(6, vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0]);
        let q = PqStore::from_store(&store, Some(2));
        assert_eq!(q.ncent(), 1);
        assert_eq!(q.decode(0), vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0]);
        // With one centroid the scale degenerates and the LUT distance is
        // exactly the distance to the decode.
        let query = [0.5f32, 0.0, 1.0, -1.0, 2.0, 0.0];
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        assert_eq!(pq.lut_scale(), 0.0);
        let d = q.dist_prepared(&pq, 0);
        let exact = crate::distance::l2_sq(&query, &q.decode(0));
        assert!((d - exact).abs() <= exact.abs() * 1e-5 + 1e-5, "{d} vs {exact}");
    }

    #[test]
    fn lut_distance_tracks_decoded_distance_within_quantization() {
        let store = ramp_store(64, 24);
        let q = PqStore::from_store(&store, Some(4));
        let query: Vec<f32> = (0..24).map(|d| ((d * 13) as f32 * 0.21).cos() * 2.5).collect();
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        for id in 0..64u32 {
            let lut_d = q.dist_prepared(&pq, id);
            let exact = crate::distance::l2_sq(&query, &q.decode(id));
            // Each subquantizer's table entry rounds within λ/2.
            let tol = q.m() as f32 * pq.lut_scale() * 0.5 + exact.abs() * 1e-4 + 1e-3;
            assert!((lut_d - exact).abs() <= tol, "id={id}: {lut_d} vs {exact} (tol {tol})");
        }
    }

    #[test]
    fn batch_is_identical_to_single() {
        let store = ramp_store(10, 20);
        let q = PqStore::from_store(&store, Some(5));
        let query: Vec<f32> = (0..20).map(|d| (d as f32 * 0.11).sin()).collect();
        let mut pq = PreparedQuery::default();
        q.prepare_into(&query, &mut pq);
        let batch = q.dist_prepared_batch(&pq, [0, 3, 5, 9]);
        for (i, id) in [0u32, 3, 5, 9].into_iter().enumerate() {
            assert_eq!(batch[i].to_bits(), q.dist_prepared(&pq, id).to_bits());
        }
    }

    #[test]
    fn dispatched_scan_matches_scalar_exactly() {
        // Kernel-level agreement across every auto-resolved geometry for
        // dims 1..=200: synthetic LUTs and code rows, exact u32 sums.
        for dim in (1usize..=200).chain([256, 960]) {
            let m = pq_auto_m(dim);
            let stride = pq_stride(m);
            let lut: Vec<u8> =
                (0..(stride / 16) * LUT_CHUNK).map(|i| ((i * 73 + 11) % 256) as u8).collect();
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|v| (0..stride).map(|i| ((i * 37 + v * 91 + dim) % 256) as u8).collect())
                .collect();
            let refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            assert_eq!(pq_scan(&lut, refs[0]), pq_scan_scalar(&lut, refs[0]), "dim={dim}");
            assert_eq!(
                pq_scan_batch(&lut, refs),
                pq_scan_batch_scalar(&lut, refs),
                "dim={dim} m={m}"
            );
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let store = ramp_store(9, 33); // auto m = 11? 33/6 = 5.5 -> divisors 1,3,11,33
        let q = PqStore::from_store(&store, None);
        let back = PqStore::from_parts(
            q.dim(),
            q.m(),
            q.ncent(),
            q.perm().to_vec(),
            q.centroids().to_vec(),
            q.to_packed_codes(),
        );
        assert_eq!(back.len(), q.len());
        for id in 0..9u32 {
            assert_eq!(back.code_row(id), q.code_row(id), "row {id}");
        }
        let query: Vec<f32> = (0..33).map(|d| (d as f32 * 0.3).sin()).collect();
        let (mut pa, mut pb) = (PreparedQuery::default(), PreparedQuery::default());
        q.prepare_into(&query, &mut pa);
        back.prepare_into(&query, &mut pb);
        for id in 0..9u32 {
            assert_eq!(
                q.dist_prepared(&pa, id).to_bits(),
                back.dist_prepared(&pb, id).to_bits()
            );
        }
    }

    #[test]
    fn heap_bytes_accounts_codes_and_codebooks() {
        let store = ramp_store(16, 96);
        let q = PqStore::from_store(&store, None);
        assert!(q.heap_bytes() >= 16 * q.stride() + q.centroids().len() * 4);
    }

    #[test]
    fn pq_rows_are_at_least_4x_smaller_than_sq8() {
        // The ladder's headline geometry: 960 dims, m = 160.
        let (dim, m) = (960usize, pq_auto_m(960));
        let sq8_row = dim.next_multiple_of(64);
        let pq_row = pq_stride(m);
        assert!(pq_row * 4 <= sq8_row, "pq row {pq_row}B vs sq8 row {sq8_row}B");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::reorder::IdRemap;
    use proptest::prelude::*;

    fn stores() -> impl Strategy<Value = (usize, Vec<Vec<f32>>)> {
        (1usize..=12).prop_flat_map(|dim| {
            prop::collection::vec(prop::collection::vec(-1000.0f32..1000.0, dim), 1..=8)
                .prop_map(move |rows| (dim, rows))
        })
    }

    proptest! {
        /// Decoding returns each row's nearest centroid tuple: the decode
        /// error can never beat the best centroid, and with ≥ as many
        /// centroids as training rows every row decodes exactly (each row
        /// can claim its own centroid only if k-means converged there — so
        /// assert the weaker, always-true bound instead: decode error is
        /// minimal over this row's available centroids).
        #[test]
        fn decode_is_nearest_available_centroid(case in stores()) {
            let (dim, rows) = case;
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let q = PqStore::from_store(&VectorStore::from_flat(dim, flat), None);
            let dsub = q.dim() / q.m();
            for (id, r) in rows.iter().enumerate() {
                let dec = q.decode(id as u32);
                for j in 0..q.m() {
                    // Gather this subquantizer's dimensions through the
                    // variance-balanced permutation.
                    let sub = |v: &[f32]| -> Vec<f32> {
                        q.perm()[j * dsub..(j + 1) * dsub]
                            .iter()
                            .map(|&d| v[d as usize])
                            .collect()
                    };
                    let (rsub, dsubv) = (sub(r), sub(&dec));
                    let err = crate::distance::l2_sq(&dsubv, &rsub);
                    for c in 0..q.ncent() {
                        let alt = crate::distance::l2_sq(q.centroid(j, c), &rsub);
                        prop_assert!(
                            err <= alt + alt.abs() * 1e-5 + 1e-5,
                            "id {} subq {}: decode err {} beats centroid {} ({})",
                            id, j, err, c, alt
                        );
                    }
                }
            }
        }

        /// Permuting the encoded store is bit-identical to re-encoding the
        /// permuted vectors under the same codebooks (row-local encoding —
        /// the PQ leg of the reorder∘quantize commutation contract).
        #[test]
        fn permute_commutes_with_fixed_codebook_encode(case in stores(), seed in 0usize..6) {
            let (dim, rows) = case;
            let n = rows.len();
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let store = VectorStore::from_flat(dim, flat);
            let q = PqStore::from_store(&store, None);
            // A deterministic non-trivial permutation: rotate by `seed`.
            let new_to_old: Vec<u32> =
                (0..n as u32).map(|i| (i as usize + seed) as u32 % n as u32).collect();
            let map = IdRemap::from_new_to_old(new_to_old.clone()).unwrap();
            let mut permuted = VectorStore::new(dim);
            for &old in &new_to_old {
                permuted.push(&rows[old as usize]);
            }
            let a = q.permute(&map);
            let b = q.reencode(&permuted);
            for id in 0..n as u32 {
                prop_assert_eq!(a.code_row(id), b.code_row(id), "row {}", id);
            }
        }
    }
}
