//! # gass-graphs
//!
//! The twelve state-of-the-art graph-based vector search methods evaluated
//! in *"Graph-Based Vector Search: An Experimental Evaluation of the
//! State-of-the-Art"* (SIGMOD 2025), all built on the shared substrates of
//! `gass-core`, plus:
//!
//! * [`baseline`] — the paper's instrumented Incremental-Insertion
//!   baseline with pluggable ND and SS (Sections 4.2–4.3);
//! * [`nndescent`] — the Neighborhood-Propagation primitive;
//! * [`hierarchy`] — the stacked-NSW hierarchy (**SN** seed strategy);
//! * [`registry`] — build any method by name with tier-scaled presets.
//!
//! | Module | Method | Paradigms |
//! |---|---|---|
//! | [`kgraph`] | KGraph | NP |
//! | [`ieh`] | IEH (excluded from the paper's evaluation; see `ext_ieh_check`) | NP + LSH seeds |
//! | [`hvs`] | HVS (the paper could not run the official code; ours is faithful-in-spirit) | II + RND + Voronoi-pyramid seeds |
//! | [`nsw`] | NSW | II |
//! | [`efanna`] | EFANNA | NP + KD seeds |
//! | [`hnsw`] | HNSW | II + RND + SN |
//! | [`dpg`] | DPG | NP + MOND |
//! | [`ngt`] | NGT | NP + RND + VP seeds |
//! | [`nsg`] | NSG | NP + RND + MD |
//! | [`sptag`] | SPTAG-KDT / SPTAG-BKT | DC + RND + KD/KM seeds |
//! | [`vamana`] | Vamana | ND (RRND+RND) + MD/KS |
//! | [`ssg`] | SSG | NP + MOND |
//! | [`hcnng`] | HCNNG | DC + KD seeds |
//! | [`elpis`] | ELPIS | DC + II + RND |
//! | [`lshapg`] | LSHAPG | II + RND + LSH seeds |
//!
//! All methods answer queries with the *same* beam search
//! (`gass_core::search::beam_search`, the paper's Algorithm 1) and expose
//! the same [`gass_core::index::AnnIndex`] interface.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod common;
pub mod dpg;
pub mod efanna;
pub mod elpis;
pub mod hcnng;
pub mod hierarchy;
pub mod hnsw;
pub mod hvs;
pub mod ieh;
pub mod kgraph;
pub mod lshapg;
pub mod ngt;
pub mod nndescent;
pub mod nsg;
pub mod nsw;
pub mod registry;
pub mod sptag;
pub mod ssg;
pub mod vamana;

pub use baseline::{IiGraph, IiParams};
pub use common::BuildReport;
pub use dpg::{DpgIndex, DpgParams};
pub use efanna::{EfannaIndex, EfannaParams};
pub use elpis::{ElpisIndex, ElpisParams};
pub use hcnng::{HcnngIndex, HcnngParams};
pub use hierarchy::{Hierarchy, SnSeeds};
pub use hnsw::{HnswIndex, HnswParams};
pub use hvs::{HvsIndex, HvsParams, VoronoiPyramid};
pub use ieh::{IehIndex, IehParams};
pub use kgraph::{KGraphIndex, KGraphParams};
pub use lshapg::{LshapgIndex, LshapgParams};
pub use ngt::{NgtIndex, NgtParams};
pub use nndescent::KnnGraphState;
pub use nsg::{NsgIndex, NsgParams};
pub use nsw::{NswIndex, NswParams};
pub use registry::{build_method, build_method_with_threads, BuiltMethod, MethodKind};
pub use sptag::{SptagIndex, SptagParams, SptagVariant};
pub use ssg::{SsgIndex, SsgParams};
pub use vamana::{VamanaIndex, VamanaParams};
