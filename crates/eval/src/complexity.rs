//! Dataset-complexity measures: Local Intrinsic Dimensionality (LID,
//! Eq. 5) and Local Relative Contrast (LRC, Eq. 6) — the paper's Figure 4.
//!
//! Both are defined per query point against its true nearest neighbors
//! (the paper uses k = 100 on a 1M sample):
//!
//! * `LID(x) = −( (1/k) Σ log(dist_i / dist_k) )^{-1}` — low means easy;
//! * `LRC(x) = dist_mean / dist_k` — high means easy.
//!
//! Distances here are *true* Euclidean (square roots taken), since both
//! formulas are ratio-of-distance statistics.

use gass_core::distance::l2_sq;
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// LID of a single query given its sorted true k-NN distances (squared;
/// converted internally).
pub fn lid_from_knn(knn_dists_sq: &[f32]) -> f64 {
    let k = knn_dists_sq.len();
    if k < 2 {
        return 0.0;
    }
    let dk = (knn_dists_sq[k - 1] as f64).sqrt();
    if dk <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    let mut used = 0usize;
    for &d in knn_dists_sq {
        let di = (d as f64).sqrt();
        if di > 0.0 {
            acc += (di / dk).ln();
            used += 1;
        }
    }
    if used == 0 || acc == 0.0 {
        return 0.0;
    }
    -(1.0 / (acc / used as f64))
}

/// LRC of a single query: mean distance over the dataset divided by the
/// k-th NN distance.
pub fn lrc_from_stats(mean_dist: f64, kth_dist: f64) -> f64 {
    if kth_dist <= 0.0 {
        return f64::INFINITY;
    }
    mean_dist / kth_dist
}

/// Complexity summary of one dataset (means over the evaluated queries).
#[derive(Clone, Copy, Debug)]
pub struct ComplexityReport {
    /// Mean Local Intrinsic Dimensionality.
    pub mean_lid: f64,
    /// Mean Local Relative Contrast.
    pub mean_lrc: f64,
    /// Queries evaluated.
    pub queries: usize,
    /// k used.
    pub k: usize,
}

/// Estimates LID and LRC over `num_queries` points sampled from `store`
/// (each evaluated against the rest of the dataset), with `k` neighbors.
pub fn dataset_complexity(
    store: &VectorStore,
    num_queries: usize,
    k: usize,
    seed: u64,
) -> ComplexityReport {
    assert!(store.len() > k + 1, "dataset too small for k = {k}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..store.len() as u32).collect();
    ids.shuffle(&mut rng);
    ids.truncate(num_queries.max(1));

    let mut lid_sum = 0.0f64;
    let mut lrc_sum = 0.0f64;
    for &q in &ids {
        let qv = store.get(q);
        let mut dists: Vec<f32> = Vec::with_capacity(store.len() - 1);
        let mut mean_acc = 0.0f64;
        for (id, v) in store.iter() {
            if id != q {
                let d = l2_sq(qv, v);
                dists.push(d);
                mean_acc += (d as f64).sqrt();
            }
        }
        let mean_dist = mean_acc / dists.len() as f64;
        dists.sort_by(f32::total_cmp);
        dists.truncate(k);
        lid_sum += lid_from_knn(&dists);
        lrc_sum += lrc_from_stats(mean_dist, (dists[k - 1] as f64).sqrt());
    }
    ComplexityReport {
        mean_lid: lid_sum / ids.len() as f64,
        mean_lrc: lrc_sum / ids.len() as f64,
        queries: ids.len(),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::synth::{imagenet_like, rand_pow};

    #[test]
    fn lid_of_uniform_ball_tracks_dimension() {
        // Points uniform in a d-ball have LID ≈ d near any query; check
        // the estimator ranks a 2-d cloud far below a 16-d cloud.
        use gass_data::util::fill_gaussian;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let make = |dim: usize| {
            let mut rng = SmallRng::seed_from_u64(5);
            let mut s = VectorStore::new(dim);
            let mut v = vec![0.0f32; dim];
            for _ in 0..800 {
                fill_gaussian(&mut rng, &mut v);
                s.push(&v);
            }
            s
        };
        let low = dataset_complexity(&make(2), 20, 50, 1).mean_lid;
        let high = dataset_complexity(&make(16), 20, 50, 1).mean_lid;
        assert!(high > low * 2.0, "16-d LID ({high}) should dwarf 2-d LID ({low})");
        assert!(low > 0.8 && low < 5.0, "2-d LID estimate off: {low}");
    }

    #[test]
    fn easy_dataset_beats_hard_dataset_like_figure4() {
        // Figure 4 ordering at miniature scale: ImageNet analog (easy) has
        // lower LID and higher LRC than RandPow0 (hard).
        let easy = imagenet_like(600, 3);
        let hard = rand_pow(600, 0.0, 4);
        let ce = dataset_complexity(&easy, 15, 50, 7);
        let ch = dataset_complexity(&hard, 15, 50, 7);
        assert!(ce.mean_lid < ch.mean_lid, "LID: easy {} vs hard {}", ce.mean_lid, ch.mean_lid);
        assert!(ce.mean_lrc > ch.mean_lrc, "LRC: easy {} vs hard {}", ce.mean_lrc, ch.mean_lrc);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(lid_from_knn(&[]), 0.0);
        assert_eq!(lid_from_knn(&[0.0, 0.0]), 0.0);
        assert!(lrc_from_stats(1.0, 0.0).is_infinite());
    }
}
