//! Figure 6: the impact of Seed Selection on query answering — distance
//! calculations to reach 0.99 recall under SN / KD / MD / SF / KS, all on
//! the *same* II+RND graph.
//!
//! Paper shape to reproduce: SN and KS best everywhere (KS ahead at the
//! small/medium tiers, SN ahead at the largest); KD competitive until the
//! largest tier; MD and SF worst.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig06_ss
//! ```

use gass_bench::{num_queries, results_dir, small_tiers, tiers};
use gass_core::distance::{DistCounter, Space};
use gass_core::index::QueryParams;
use gass_core::nd::NdStrategy;
use gass_core::seed::{FixedSeed, MedoidSeed, RandomSeeds, SeedProvider};
use gass_data::DatasetKind;
use gass_eval::{recall_at_k, Table};
use gass_graphs::{IiGraph, IiParams, SnSeeds};
use gass_trees::kdtree::KdForest;

/// Mean recall + per-query distance calls of one provider at one L.
fn run(
    g: &IiGraph,
    provider: &dyn SeedProvider,
    queries: &gass_core::VectorStore,
    truth: &[Vec<gass_core::Neighbor>],
    k: usize,
    l: usize,
) -> (f64, u64) {
    let counter = DistCounter::new();
    let params = QueryParams::new(k, l).with_seed_count(k.max(16));
    let mut recall = 0.0;
    for (qi, t) in truth.iter().enumerate() {
        let res = g.search_with(provider, queries.get(qi as u32), &params, &counter);
        recall += recall_at_k(t, &res.neighbors, k);
    }
    (recall / truth.len() as f64, counter.get() / truth.len() as u64)
}

fn main() {
    // The paper uses 100-NN queries for the SS study (more seed-selection
    // overhead); we use k=20 to keep tier runtimes friendly.
    let k = 20;
    let target = 0.99;
    let ls = [20usize, 30, 40, 50, 60, 80, 100, 120, 160, 200, 240, 320, 480, 640];
    let use_all_tiers = std::env::var("GASS_ALL_TIERS").is_ok();
    let tier_list = if use_all_tiers { tiers() } else { small_tiers() };

    let mut table =
        Table::new(vec!["dataset", "tier", "ss", "L@0.99", "recall", "dists_per_query"]);

    for kind in [DatasetKind::Deep, DatasetKind::Sift] {
        for tier in &tier_list {
            let (base, queries) = kind.generate(tier.n, num_queries(), 67);
            let truth = gass_data::ground_truth(&base, &queries, k);
            let g = IiGraph::build(
                base.clone(),
                IiParams {
                    max_degree: 24,
                    beam_width: 128,
                    nd: NdStrategy::Rnd,
                    build_seeds: 8,
                    seed: 5,
                    threads: 1,
                },
            );
            let setup = DistCounter::new();
            let space = Space::new(g.store(), &setup);
            let sn = SnSeeds::build(space, 12, 48, 1);
            let kd = KdForest::build(g.store(), 4, 24, 2);
            let md = MedoidSeed::compute(space);
            let sf = FixedSeed::random(tier.n, 3);
            let ks = RandomSeeds::new(tier.n, 4);
            let providers: Vec<(&str, &dyn SeedProvider)> =
                vec![("SN", &sn), ("KS", &ks), ("KD", &kd), ("MD", &md), ("SF", &sf)];

            for (label, provider) in providers {
                let mut reached = None;
                for &l in &ls {
                    let (recall, dists) = run(&g, provider, &queries, &truth, k, l);
                    if recall >= target {
                        reached = Some((l, recall, dists));
                        break;
                    }
                    reached = Some((l, recall, dists)); // keep the best try
                }
                let (l, recall, dists) = reached.expect("at least one L tried");
                table.row(vec![
                    kind.name(),
                    tier.label.to_string(),
                    label.to_string(),
                    if recall >= target { l.to_string() } else { format!(">{l}") },
                    format!("{recall:.4}"),
                    dists.to_string(),
                ]);
                eprintln!("done: {} {} {}", kind.name(), tier.label, label);
            }
        }
    }
    table.emit(&results_dir(), "fig06_ss").expect("write results");
    println!(
        "Read as Fig. 6: compare dists_per_query at (or nearest to) 0.99 \
         recall. Expect SN/KS lowest, MD/SF highest."
    );
}
