//! The micro-batching admission queue: a bounded MPSC with striped
//! mutexes (the `gass_core::par` striping discipline applied to a queue)
//! feeding batch-draining consumers.
//!
//! Producers are connection-handler threads pushing one job per request;
//! consumers are the per-core worker executors, each draining up to
//! `max_batch` jobs per wakeup. Striping keeps producers from serializing
//! on one mutex under heavy arrival rates, and batch draining means a
//! consumer takes each stripe lock once per *batch*, not once per job —
//! that amortization is where cross-request batching wins its throughput
//! (see `ext_serve`).
//!
//! Admission control is a single atomic depth counter checked before the
//! stripe push: when the queue holds `capacity` jobs the push is refused
//! and the caller fast-rejects the request (`overloaded`) instead of
//! letting the backlog — and every admitted request's latency — grow
//! without bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed this request.
    Overloaded,
    /// [`BatchQueue::close`] was called; the server is draining.
    Closed,
}

/// Bounded, striped, batch-draining MPSC queue.
pub struct BatchQueue<T> {
    stripes: Vec<Mutex<VecDeque<T>>>,
    /// Jobs currently queued (admission bound); incremented before the
    /// stripe push, decremented after a pop.
    depth: AtomicUsize,
    capacity: usize,
    /// Round-robin producer cursor, so bursts from one connection still
    /// spread across stripes.
    next_stripe: AtomicUsize,
    closed: AtomicBool,
    /// Sleeping consumers wait here; producers notify on push.
    gate: Mutex<()>,
    bell: Condvar,
}

impl<T> BatchQueue<T> {
    /// A queue admitting at most `capacity` jobs, striped `stripes` ways
    /// (both floored at 1).
    pub fn new(capacity: usize, stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            capacity: capacity.max(1),
            next_stripe: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            gate: Mutex::new(()),
            bell: Condvar::new(),
        }
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` once [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Enqueues a job, or refuses it when the queue is full (admission
    /// control) or closed (shutdown). The item is handed back in the
    /// error so the caller can answer the request without cloning.
    pub fn push(&self, item: T) -> Result<(), (PushError, T)> {
        if self.is_closed() {
            return Err((PushError::Closed, item));
        }
        // Reserve a depth slot first: concurrent producers may transiently
        // overshoot `capacity` by the number of racing pushes, but each
        // loser gives its slot back immediately, so the bound holds.
        if self.depth.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err((PushError::Overloaded, item));
        }
        let s = self.next_stripe.fetch_add(1, Ordering::Relaxed) % self.stripes.len();
        self.stripes[s].lock().unwrap().push_back(item);
        // Wake one sleeping consumer. notify under the gate lock would be
        // stricter; the consumer side re-checks depth in a timed loop, so
        // a lost wakeup only costs one timeout tick.
        self.bell.notify_one();
        Ok(())
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers drain what remains before [`Self::pop_batch`]
    /// returns `false`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.bell.notify_all();
    }

    /// Pops up to `budget` jobs starting from the consumer's `home`
    /// stripe. Returns how many were appended to `out`.
    fn drain_into(&self, home: usize, budget: usize, out: &mut Vec<T>) -> usize {
        let stripes = self.stripes.len();
        let mut got = 0;
        for off in 0..stripes {
            if got >= budget {
                break;
            }
            let mut q = self.stripes[(home + off) % stripes].lock().unwrap();
            while got < budget {
                match q.pop_front() {
                    Some(item) => {
                        out.push(item);
                        got += 1;
                    }
                    None => break,
                }
            }
        }
        if got > 0 {
            self.depth.fetch_sub(got, Ordering::AcqRel);
        }
        got
    }

    /// The consumer loop body: blocks until at least one job is
    /// available, then keeps the batch open — draining arrivals — until
    /// it holds `max_batch` jobs or `max_wait` has elapsed since the
    /// first job was taken, whichever comes first (`max_wait` zero closes
    /// the batch as soon as the queue goes momentarily empty).
    ///
    /// Appends into `out` (cleared first) and returns `true`, or returns
    /// `false` once the queue is closed *and* fully drained — the
    /// consumer's signal to exit.
    pub fn pop_batch(
        &self,
        home: usize,
        max_batch: usize,
        max_wait: Duration,
        out: &mut Vec<T>,
    ) -> bool {
        let max_batch = max_batch.max(1);
        out.clear();

        // Phase 1: block for the first job.
        loop {
            if self.drain_into(home, max_batch, out) > 0 {
                break;
            }
            if self.is_closed() {
                // One final sweep: a push may have landed between the
                // drain above and the closed check.
                if self.drain_into(home, max_batch, out) > 0 {
                    break;
                }
                return false;
            }
            let guard = self.gate.lock().unwrap();
            if self.depth() == 0 && !self.is_closed() {
                // Timed wait: robust to the racy notify in `push`.
                let _ = self.bell.wait_timeout(guard, Duration::from_millis(5)).unwrap();
            }
        }

        // Phase 2: hold the batch open for stragglers. Sleep in fixed
        // ticks rather than waking per push: the point of the window is
        // to pay one consumer wakeup for many arrivals, so the consumer
        // re-drains a few times per window instead of once per job.
        if out.len() >= max_batch || max_wait.is_zero() {
            return true;
        }
        let tick = (max_wait / 4).max(Duration::from_micros(50));
        let batch_deadline = Instant::now() + max_wait;
        loop {
            self.drain_into(home, max_batch - out.len(), out);
            if out.len() >= max_batch || self.is_closed() {
                return true;
            }
            let now = Instant::now();
            if now >= batch_deadline {
                return true;
            }
            std::thread::sleep(tick.min(batch_deadline - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_jobs() {
        let q = BatchQueue::new(16, 4);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        assert_eq!(q.depth(), 10);
        let mut out = Vec::new();
        assert!(q.pop_batch(0, 32, Duration::ZERO, &mut out));
        out.sort_unstable();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn admission_bound_sheds_excess() {
        let q = BatchQueue::new(4, 2);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        match q.push(99) {
            Err((PushError::Overloaded, item)) => assert_eq!(item, 99),
            other => panic!("expected overload, got {other:?}"),
        }
        // Draining frees capacity again.
        let mut out = Vec::new();
        q.pop_batch(0, 2, Duration::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        q.push(99).unwrap();
    }

    #[test]
    fn batch_respects_max_batch() {
        let q = BatchQueue::new(64, 4);
        for i in 0..20 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(1, 8, Duration::ZERO, &mut out));
        assert_eq!(out.len(), 8);
        assert_eq!(q.depth(), 12);
    }

    #[test]
    fn closed_and_drained_returns_false() {
        let q: BatchQueue<u32> = BatchQueue::new(8, 2);
        q.push(7).unwrap();
        q.close();
        assert!(matches!(q.push(8), Err((PushError::Closed, 8))));
        let mut out = Vec::new();
        assert!(q.pop_batch(0, 4, Duration::ZERO, &mut out), "drain the backlog");
        assert_eq!(out, vec![7]);
        assert!(!q.pop_batch(0, 4, Duration::ZERO, &mut out), "then exit");
    }

    #[test]
    fn batch_window_coalesces_late_arrivals() {
        let q = Arc::new(BatchQueue::new(64, 4));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                for i in 1..5 {
                    q.push(i).unwrap();
                }
            })
        };
        let mut out = Vec::new();
        // A generous window: the consumer must pick up the late pushes
        // into the same batch instead of closing at size 1.
        assert!(q.pop_batch(0, 5, Duration::from_millis(500), &mut out));
        producer.join().unwrap();
        assert_eq!(out.len(), 5, "late arrivals coalesced: {out:?}");
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BatchQueue::new(1 << 20, 8));
        let n_producers = 4;
        let per = 5_000u32;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.push(p * per + i).unwrap();
                }
            }));
        }
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let mut consumers = Vec::new();
        for w in 0..3 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            consumers.push(std::thread::spawn(move || {
                let mut batch = Vec::new();
                while q.pop_batch(w, 16, Duration::ZERO, &mut batch) {
                    consumed.lock().unwrap().extend_from_slice(&batch);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got.len(), (n_producers * per) as usize);
        assert_eq!(got, (0..n_producers * per).collect::<Vec<_>>());
    }
}
