//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no registry access, so this shim declares
//! exactly the memory-mapping subset `gass-core::mmap` uses. No code is
//! vendored: `std` already links the platform C library, so an `extern
//! "C"` block is all a binding needs — the loader resolves the symbols
//! from the same `libc.so`/`libSystem` the real crate would.
//!
//! Constants are the Linux/macOS values (they agree on everything below
//! except `MAP_PRIVATE`, where both use `0x02`). The declarations are
//! Unix-only; on other targets the crate compiles to just the type
//! aliases so dependents can keep a single manifest.

#![warn(missing_docs)]
#![allow(non_camel_case_types)] // C type names, matching the real crate

/// C `int`.
pub type c_int = i32;
/// C `void` (pointer target only).
pub type c_void = core::ffi::c_void;
/// C `size_t`.
pub type size_t = usize;
/// C `off_t` (64-bit file offsets on every supported target).
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 0x1;
/// Modifications are private (copy-on-write).
pub const MAP_PRIVATE: c_int = 0x02;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
/// Expect random page references (curb readahead).
pub const MADV_RANDOM: c_int = 1;
/// Expect sequential page references (aggressive readahead).
pub const MADV_SEQUENTIAL: c_int = 2;
/// Expect access soon (fault pages in ahead of use).
pub const MADV_WILLNEED: c_int = 3;

#[cfg(unix)]
extern "C" {
    /// Maps `len` bytes of the object behind `fd` at `offset`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmaps a region previously mapped with [`mmap`].
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Advises the kernel about expected access patterns for a region.
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
}
