//! Figure 4: dataset complexity — mean LID (4a) and LRC (4b) per dataset.
//!
//! Paper shape to reproduce: Pow0/Pow5/Pow50, Seismic and Text2Img have
//! the highest LID and lowest LRC (hard); Sift, Deep and ImageNet are the
//! easiest.
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig04_complexity
//! ```

use gass_bench::results_dir;
use gass_data::DatasetKind;
use gass_eval::{dataset_complexity, Table};

fn main() {
    // The paper samples 1M points and k=100; we sample a tier-scaled
    // subset with k=100 against the whole subset.
    let n = 4_000 * gass_bench::scale();
    let probes = 25;
    let k = 100;
    println!("Figure 4: LID / LRC on {n}-vector samples, {probes} probes, k={k}\n");

    let mut table = Table::new(vec!["dataset", "mean_LID", "mean_LRC", "paper_expectation"]);
    let expectations = |name: &str| match name {
        "ImageNet" | "Deep" | "Sift" => "easy (low LID, high LRC)",
        "GIST" | "SALD" => "moderate",
        _ => "hard (high LID, low LRC)",
    };
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for kind in
        DatasetKind::real_datasets().into_iter().chain(DatasetKind::power_law_datasets())
    {
        // GIST is 960-d: keep its sample smaller so the harness stays
        // laptop-friendly.
        let nn = if kind == DatasetKind::Gist { n / 4 } else { n };
        let store = kind.generate_base(nn, 1234);
        let rep = dataset_complexity(&store, probes, k, 99);
        rows.push((kind.name(), rep.mean_lid, rep.mean_lrc));
        table.row(vec![
            kind.name(),
            format!("{:.2}", rep.mean_lid),
            format!("{:.3}", rep.mean_lrc),
            expectations(&kind.name()).to_string(),
        ]);
        eprintln!("done: {}", kind.name());
    }
    table.emit(&results_dir(), "fig04_complexity").expect("write results");

    // Shape check: the easy trio must rank below the hard trio on LID.
    let lid_of = |name: &str| rows.iter().find(|r| r.0 == name).map(|r| r.1).unwrap();
    let easy = ["ImageNet", "Deep", "Sift"].iter().map(|d| lid_of(d)).fold(0.0, f64::max);
    let hard =
        ["Seismic", "RandPow0", "Text2Img"].iter().map(|d| lid_of(d)).fold(f64::MAX, f64::min);
    println!(
        "shape check — max(easy LID) = {easy:.2} < min(hard LID) = {hard:.2}: {}",
        easy < hard
    );
}
