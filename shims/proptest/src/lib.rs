//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/runner subset the workspace's property tests
//! use: range strategies over integers and floats, `prop::collection::vec`,
//! tuple strategies, the `proptest!` block macro with an optional
//! `proptest_config` attribute, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Failing cases are **not shrunk** — the panic message reports the case
//! seed instead, which together with the deterministic per-test RNG is
//! enough to reproduce. That trades debugging convenience for zero
//! dependencies, not coverage: generation is as random as the real crate.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies during a test case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds a case RNG.
    pub fn seed(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }

    /// Access to the underlying generator.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// no shrinking).
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps each drawn value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Draws a value, builds a dependent strategy from it with `f`, and
    /// draws from that (e.g. pick a dimension, then vectors of exactly
    /// that dimension).
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        let seed = self.base.sample(rng);
        (self.f)(seed).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng.inner(), self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng.inner(), self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng.inner(), self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
}

/// Number-of-elements specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max_inclusive: *r.end() }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len =
            rand::RngExt::random_range(rng.inner(), self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Module-path mirror of `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// `Vec` strategy with `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[doc(hidden)]
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..cfg.cases {
        let seed = h ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i} (seed {seed:#x}): {e}");
        }
    }
}

/// Property-test block macro (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their strategies.
        #[test]
        fn ranges_and_collections(
            xs in prop::collection::vec(-1.0f32..1.0, 3..=7),
            n in 1usize..5,
            pair in (0u8..3, 0u32..64),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() <= 7);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!((1..5).contains(&n));
            prop_assert!(pair.0 < 3 && pair.1 < 64);
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::run_cases(&crate::ProptestConfig::with_cases(1), "always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
