//! # gass-eval
//!
//! The evaluation harness for the GASS experiments:
//!
//! * [`recall`] — recall@k, beam-width sweeps, cost-to-reach-target
//!   (Figures 5–6, 11–16);
//! * [`complexity`] — LID and LRC dataset-hardness estimators (Figure 4);
//! * [`mem`] — structural and process-level memory accounting
//!   (Figures 8–10);
//! * [`report`] — aligned console tables + TSV/JSON records under
//!   `results/`;
//! * [`throughput`] — concurrent QPS and latency percentiles.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod complexity;
pub mod mem;
pub mod recall;
pub mod report;
pub mod throughput;

pub use complexity::{dataset_complexity, ComplexityReport};
pub use mem::{current_rss_bytes, footprint, vm_peak_bytes, FootprintReport};
pub use recall::{cost_to_reach, evaluate_at, evaluate_params, recall_at_k, sweep, SweepPoint};
pub use report::{fmt_bytes, fmt_count, write_json, Table};
pub use throughput::{measure_throughput, measure_throughput_batch, ThroughputReport};
