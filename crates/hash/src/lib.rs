//! # gass-hash
//!
//! Locality-sensitive hashing substrate: Euclidean (p-stable) LSH with
//! multiple tables, used as
//!
//! * the **LSH** seed-selection strategy (IEH-style) from the paper's
//!   taxonomy, and
//! * LSHAPG's auxiliary structure: multi-table seed retrieval plus a
//!   projected-distance sketch for probabilistic routing.
//!
//! Each table concatenates `m` quantized random projections
//! `h(v) = ⌊(a·v + b)/w⌋` (Gaussian `a`, uniform `b ∈ [0, w)`) into a
//! bucket key. Queries retrieve the colliding buckets of every table;
//! multi-probe (visiting neighboring quantization cells) fills the budget
//! when exact collisions are sparse.

#![warn(missing_docs)]
#![warn(clippy::all)]

use gass_core::distance::Space;
use gass_core::reorder::IdRemap;
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Samples a standard normal via Box–Muller (the `rand` crate alone ships
/// no Gaussian distribution; `rand_distr` is outside the allowed
/// dependency set).
pub fn gaussian(rng: &mut SmallRng) -> f32 {
    // Avoid log(0).
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// One hash table: `m` projections and a bucket map.
#[derive(Clone, Debug)]
struct LshTable {
    /// `m` projection vectors, row-major.
    projections: Vec<Vec<f32>>,
    offsets: Vec<f32>,
    width: f32,
    buckets: HashMap<u64, Vec<u32>>,
}

fn mix_key(codes: &[i32]) -> u64 {
    // FNV-1a over the i32 codes.
    let mut h: u64 = 0xcbf29ce484222325;
    for &c in codes {
        for b in c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl LshTable {
    fn new(dim: usize, m: usize, width: f32, rng: &mut SmallRng) -> Self {
        let projections = (0..m).map(|_| (0..dim).map(|_| gaussian(rng)).collect()).collect();
        let offsets = (0..m).map(|_| rng.random_range(0.0..width)).collect();
        Self { projections, offsets, width, buckets: HashMap::new() }
    }

    fn raw_projections(&self, v: &[f32]) -> Vec<f32> {
        self.projections
            .iter()
            .zip(&self.offsets)
            .map(|(p, b)| gass_core::distance::dot(p, v) + b)
            .collect()
    }

    fn codes(&self, v: &[f32]) -> Vec<i32> {
        self.raw_projections(v).into_iter().map(|x| (x / self.width).floor() as i32).collect()
    }

    fn insert(&mut self, id: u32, v: &[f32]) {
        let key = mix_key(&self.codes(v));
        self.buckets.entry(key).or_default().push(id);
    }

    /// Exact-collision candidates plus (optionally) single-coordinate
    /// perturbations — a cheap multi-probe scheme.
    fn probe(&self, v: &[f32], multi_probe: bool, out: &mut Vec<u32>) {
        let codes = self.codes(v);
        if let Some(b) = self.buckets.get(&mix_key(&codes)) {
            out.extend_from_slice(b);
        }
        if multi_probe {
            let mut perturbed = codes.clone();
            for i in 0..codes.len() {
                for delta in [-1i32, 1] {
                    perturbed[i] = codes[i] + delta;
                    if let Some(b) = self.buckets.get(&mix_key(&perturbed)) {
                        out.extend_from_slice(b);
                    }
                }
                perturbed[i] = codes[i];
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        let proj: usize =
            self.projections.iter().map(|p| p.capacity() * std::mem::size_of::<f32>()).sum();
        let buckets: usize =
            self.buckets.values().map(|b| b.capacity() * std::mem::size_of::<u32>() + 16).sum();
        proj + buckets + self.offsets.capacity() * std::mem::size_of::<f32>()
    }
}

/// Multi-table Euclidean LSH index over a [`VectorStore`].
#[derive(Clone, Debug)]
pub struct LshIndex {
    tables: Vec<LshTable>,
    /// Per-vector sketch: concatenated raw projections of table 0, used
    /// for projected-distance estimation (LSHAPG's routing).
    sketches: Vec<f32>,
    sketch_dim: usize,
    dim: usize,
    /// After a reorder: `new → old` table used as the sort key so the
    /// truncated candidate set is identical before and after relabeling.
    orig: Option<Vec<u32>>,
}

impl LshIndex {
    /// Builds the index.
    ///
    /// * `num_tables` — independent hash tables (paper's `L`);
    /// * `m` — projections concatenated per table;
    /// * `width` — quantization cell width `w` (scale to data spread).
    ///
    /// # Panics
    /// Panics if the store is empty or any parameter is zero/non-positive.
    pub fn build(
        store: &VectorStore,
        num_tables: usize,
        m: usize,
        width: f32,
        seed: u64,
    ) -> Self {
        assert!(!store.is_empty(), "LSH over empty store");
        assert!(num_tables > 0 && m > 0, "tables and projections must be positive");
        assert!(width > 0.0, "bucket width must be positive");
        let dim = store.dim();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tables: Vec<LshTable> =
            (0..num_tables).map(|_| LshTable::new(dim, m, width, &mut rng)).collect();
        for (id, v) in store.iter() {
            for t in &mut tables {
                t.insert(id, v);
            }
        }
        let sketch_dim = m;
        let mut sketches = Vec::with_capacity(store.len() * sketch_dim);
        for (_, v) in store.iter() {
            sketches.extend(tables[0].raw_projections(v));
        }
        Self { tables, sketches, sketch_dim, dim, orig: None }
    }

    /// Like [`Self::build`], but the bucket width adapts to the data:
    /// `width = width_factor × std` of the raw projections, estimated on a
    /// sample. A factor around 0.5–1 puts near neighbors in the same or
    /// adjacent cells regardless of the dataset's scale.
    pub fn build_scaled(
        store: &VectorStore,
        num_tables: usize,
        m: usize,
        width_factor: f32,
        seed: u64,
    ) -> Self {
        assert!(!store.is_empty(), "LSH over empty store");
        assert!(width_factor > 0.0, "width factor must be positive");
        // Probe the projection spread with a throwaway single projection.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1ed);
        let probe: Vec<f32> = (0..store.dim()).map(|_| gaussian(&mut rng)).collect();
        let sample = store.len().min(256);
        let mut acc = 0.0f64;
        let mut acc2 = 0.0f64;
        let step = (store.len() / sample).max(1);
        let mut count = 0usize;
        for i in (0..store.len()).step_by(step) {
            let p = gass_core::distance::dot(&probe, store.get(i as u32)) as f64;
            acc += p;
            acc2 += p * p;
            count += 1;
        }
        let mean = acc / count as f64;
        let std = (acc2 / count as f64 - mean * mean).max(1e-12).sqrt() as f32;
        Self::build(store, num_tables, m, (width_factor * std).max(1e-6), seed)
    }

    /// Candidate ids colliding with `query` across all tables,
    /// deduplicated; multi-probes when an exact pass yields fewer than
    /// `budget`.
    pub fn candidates(&self, query: &[f32], budget: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for t in &self.tables {
            t.probe(query, false, &mut out);
        }
        if out.len() < budget {
            for t in &self.tables {
                t.probe(query, true, &mut out);
            }
        }
        match &self.orig {
            Some(orig) => out.sort_unstable_by_key(|&id| orig[id as usize]),
            None => out.sort_unstable(),
        }
        out.dedup();
        out.truncate(budget.max(1));
        out
    }

    /// Relabels bucket contents and permutes the sketch rows through `map`
    /// after the vector store was permuted. Hash keys depend only on the
    /// vector contents, so bucket membership is unchanged.
    pub fn reorder(&mut self, map: &IdRemap) {
        for t in &mut self.tables {
            for bucket in t.buckets.values_mut() {
                for id in bucket.iter_mut() {
                    *id = map.to_new(*id);
                }
            }
        }
        let n = self.sketches.len() / self.sketch_dim.max(1);
        let mut permuted = Vec::with_capacity(self.sketches.len());
        for new in 0..n {
            let old = map.to_old(new as u32) as usize;
            permuted.extend_from_slice(
                &self.sketches[old * self.sketch_dim..(old + 1) * self.sketch_dim],
            );
        }
        self.sketches = permuted;
        self.orig = Some(match self.orig.take() {
            Some(prev) => {
                (0..prev.len()).map(|id| prev[map.to_old(id as u32) as usize]).collect()
            }
            None => map.new_to_old().to_vec(),
        });
    }

    /// Projection sketch of an arbitrary query vector (table 0's raw
    /// projections).
    pub fn query_sketch(&self, query: &[f32]) -> Vec<f32> {
        self.tables[0].raw_projections(query)
    }

    /// Estimated squared distance between a query sketch and stored vector
    /// `id`: `(dim / m) · ‖sketch_q − sketch_id‖²`. Unbiased for Gaussian
    /// projections; LSHAPG uses this to rank neighbors before computing
    /// exact distances.
    pub fn projected_dist_sq(&self, query_sketch: &[f32], id: u32) -> f32 {
        let base = id as usize * self.sketch_dim;
        let s = &self.sketches[base..base + self.sketch_dim];
        let d = gass_core::distance::l2_sq(query_sketch, s);
        d * (self.dim as f32 / self.sketch_dim as f32)
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.tables.iter().map(LshTable::heap_bytes).sum::<usize>()
            + self.sketches.capacity() * std::mem::size_of::<f32>()
    }
}

/// LSH seed provider (**LSH** strategy; IEH, LSHAPG).
#[derive(Clone, Debug)]
pub struct LshSeeds {
    index: LshIndex,
    fallback: u32,
}

impl LshSeeds {
    /// Wraps an [`LshIndex`]; `fallback` is returned when no bucket
    /// collides (e.g. far out-of-distribution queries).
    pub fn new(index: LshIndex, fallback: u32) -> Self {
        Self { index, fallback }
    }

    /// The underlying index.
    pub fn index(&self) -> &LshIndex {
        &self.index
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.index.heap_bytes()
    }
}

impl SeedProvider for LshSeeds {
    fn seeds(&self, _space: Space<'_>, query: &[f32], count: usize, out: &mut Vec<u32>) {
        let cands = self.index.candidates(query, count.max(1));
        if cands.is_empty() {
            out.push(self.fallback);
        } else {
            out.extend(cands);
        }
    }

    fn label(&self) -> &'static str {
        "LSH"
    }

    fn reorder(&mut self, map: &IdRemap) {
        self.index.reorder(map);
        self.fallback = map.to_new(self.fallback);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::distance::{l2_sq, DistCounter};

    fn clustered_store(seed: u64, n_per: usize) -> VectorStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorStore::new(8);
        for c in 0..4 {
            let center = c as f32 * 10.0;
            for _ in 0..n_per {
                let v: Vec<f32> =
                    (0..8).map(|_| center + rng.random_range(-0.3..0.3f32)).collect();
                s.push(&v);
            }
        }
        s
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SmallRng::seed_from_u64(5);
        let samples: Vec<f32> = (0..20000).map(|_| gaussian(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn same_cluster_collides() {
        let store = clustered_store(1, 25);
        let idx = LshIndex::build(&store, 4, 4, 8.0, 42);
        // Query at the center of cluster 2 (ids 50..75).
        let q = vec![20.0f32; 8];
        let cands = idx.candidates(&q, 30);
        assert!(!cands.is_empty());
        let hits = cands.iter().filter(|&&id| (50..75).contains(&id)).count();
        assert!(
            hits * 2 >= cands.len(),
            "most collisions should come from the home cluster: {hits}/{}",
            cands.len()
        );
    }

    #[test]
    fn projected_distance_correlates_with_true_distance() {
        let store = clustered_store(3, 25);
        let idx = LshIndex::build(&store, 2, 12, 4.0, 7);
        let q = vec![0.1f32; 8];
        let sketch = idx.query_sketch(&q);
        // Same-cluster point must project closer than a far-cluster point.
        let near_est = idx.projected_dist_sq(&sketch, 0); // cluster 0
        let far_est = idx.projected_dist_sq(&sketch, 99); // cluster 3
        assert!(near_est < far_est);
        let near_true = l2_sq(&q, store.get(0));
        let far_true = l2_sq(&q, store.get(99));
        assert!(near_true < far_true, "sanity");
        // Estimate within a loose multiplicative band of the truth.
        assert!(far_est > 0.1 * far_true && far_est < 10.0 * far_true);
    }

    #[test]
    fn seed_provider_falls_back_when_no_collision() {
        let store = clustered_store(5, 10);
        let idx = LshIndex::build(&store, 2, 6, 0.5, 9);
        let seeds = LshSeeds::new(idx, 3);
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        // Absurdly far query: no bucket can collide even multi-probed.
        let mut out = Vec::new();
        seeds.seeds(space, &[1e6f32; 8], 5, &mut out);
        assert_eq!(out, vec![3]);
        assert_eq!(seeds.label(), "LSH");
    }

    #[test]
    fn reorder_preserves_the_truncated_candidate_set() {
        let store = clustered_store(8, 25);
        let idx = LshIndex::build(&store, 4, 4, 8.0, 42);
        let q = vec![20.0f32; 8];
        let before = idx.candidates(&q, 12);
        let rev: Vec<u32> = (0..store.len() as u32).rev().collect();
        let map = IdRemap::from_new_to_old(rev).unwrap();
        let mut relabeled = idx.clone();
        relabeled.reorder(&map);
        let after = relabeled.candidates(&q, 12);
        // The kept set must be the same *vectors*, reported under new ids.
        let translated: Vec<u32> = after.iter().map(|&id| map.to_old(id)).collect();
        assert_eq!(translated, before);
    }

    #[test]
    fn candidates_are_deduplicated_and_bounded() {
        let store = clustered_store(8, 25);
        let idx = LshIndex::build(&store, 6, 3, 20.0, 11);
        let cands = idx.candidates(&[0.0f32; 8], 10);
        assert!(cands.len() <= 10);
        let mut sorted = cands.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), cands.len());
    }
}
