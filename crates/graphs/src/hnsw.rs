//! **HNSW** — Hierarchical Navigable Small World graphs: NSW made scalable
//! by (i) RND diversification of every neighborhood and (ii) the stacked
//! hierarchy (**SN**) that shortens search paths during both construction
//! and query answering.
//!
//! The base layer holds all points with maximum out-degree `2M`; upper
//! layers (in [`crate::hierarchy`]) hold exponentially thinning samples
//! with out-degree `M`. Insertion descends the hierarchy to find its
//! entry, beam-searches the base layer with `ef_construction`, selects `M`
//! neighbors via RND, and re-prunes overflowing reverse lists.

use crate::common::{add_reverse_edges, add_reverse_edges_concurrent, BuildReport};
use crate::hierarchy::{draw_level, Hierarchy};
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, CsrGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::nd::NdStrategy;
use gass_core::par::ConcurrentAdjacency;
use gass_core::reorder::{IdRemap, ReorderStrategy, ServingState};
use gass_core::search::{beam_search, beam_search_frozen, SearchResult, SearchScratch};
use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Parallel batches are capped at 1/8 of the already-built prefix: batch
/// members don't see each other, and bounding that blindness keeps the
/// batched build's recall within noise of the serial build.
const BATCH_FRAC: usize = 8;

/// HNSW construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct HnswParams {
    /// Out-degree `M` of hierarchy layers; the base layer allows `2M`.
    pub m: usize,
    /// Construction beam width (`efConstruction`).
    pub ef_construction: usize,
    /// RNG seed (level draws).
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). At `1` the
    /// build runs the exact sequential insertion — bit-for-bit the serial
    /// result. Above 1 it switches to ParlayANN-style prefix-doubling
    /// batches: each batch's members search the graph of all previous
    /// batches in parallel, then apply edges under striped locks.
    pub threads: usize,
}

impl HnswParams {
    /// Small-scale defaults: `M=12`, `ef=80`, serial build.
    pub fn small() -> Self {
        Self { m: 12, ef_construction: 80, seed: 42, threads: 1 }
    }
}

/// A built HNSW index.
pub struct HnswIndex {
    store: VectorStore,
    base: FlatGraph,
    serving: ServingState,
    hierarchy: Hierarchy,
    params: HnswParams,
    scratch: ScratchPool,
    build: BuildReport,
}

/// Search + diversify for one insertion against the graph so far. Pure
/// with respect to the graph (reads only), so the parallel path runs it
/// concurrently against a frozen batch prefix.
fn prepare_insertion<G: GraphView + ?Sized>(
    store: &VectorStore,
    space: Space<'_>,
    graph: &G,
    hierarchy: &Hierarchy,
    params: &HnswParams,
    scratch: &mut SearchScratch,
    id: u32,
) -> Vec<gass_core::Neighbor> {
    let query = store.get(id);
    // SN descent over the current hierarchy gives the base entry point.
    let entry = hierarchy.descend(space, query).unwrap_or(0);
    let res = beam_search(
        graph,
        space,
        query,
        &[entry],
        params.ef_construction,
        params.ef_construction,
        scratch,
    );
    let cands = if res.neighbors.is_empty() {
        // Base graph may still be edgeless around the entry.
        vec![gass_core::Neighbor::new(entry, space.dist_to(query, entry))]
    } else {
        res.neighbors
    };
    NdStrategy::Rnd.diversify(space, id, &cands, params.m)
}

impl HnswIndex {
    /// Builds the index by incremental insertion. `params.threads <= 1`
    /// runs the exact sequential algorithm; higher values insert
    /// prefix-doubling batches in parallel (see [`HnswParams::threads`]).
    pub fn build(store: VectorStore, params: HnswParams) -> Self {
        assert!(store.len() >= 2, "need at least two vectors");
        assert!(params.m >= 2, "M must be at least 2");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let m0 = params.m * 2;
        let mut hierarchy = Hierarchy::new(n, params.m, params.ef_construction);
        let threads = gass_core::effective_threads(params.threads.max(1));
        let base = {
            let space = Space::new(&store, &counter);
            // Levels are pre-drawn so serial and parallel builds consume
            // the identical RNG stream (one draw per node, in id order —
            // the only RNG use in the insertion loop).
            let mut rng = SmallRng::seed_from_u64(params.seed);
            let levels: Vec<usize> = (0..n).map(|_| draw_level(params.m, &mut rng)).collect();
            if threads <= 1 {
                Self::build_serial(&store, space, &mut hierarchy, &params, m0, &levels)
            } else {
                Self::build_parallel(
                    &store,
                    space,
                    &mut hierarchy,
                    &params,
                    m0,
                    &levels,
                    threads,
                )
            }
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let base = FlatGraph::from_adjacency(&base, Some(m0));
        Self {
            store,
            base,
            serving: ServingState::new(),
            hierarchy,
            params,
            scratch: ScratchPool::new(),
            build,
        }
    }

    fn build_serial(
        store: &VectorStore,
        space: Space<'_>,
        hierarchy: &mut Hierarchy,
        params: &HnswParams,
        m0: usize,
        levels: &[usize],
    ) -> AdjacencyGraph {
        let n = store.len();
        let mut base = AdjacencyGraph::with_degree_hint(n, m0 + 1);
        let mut scratch = SearchScratch::new(n, params.ef_construction);
        // First node: hierarchy entry only.
        hierarchy.insert(space, 0, levels[0]);
        for id in 1..n as u32 {
            let selected =
                prepare_insertion(store, space, &base, hierarchy, params, &mut scratch, id);
            base.set_neighbors(id, selected.iter().map(|s| s.id).collect());
            add_reverse_edges(space, &mut base, id, &selected, m0, NdStrategy::Rnd);
            hierarchy.insert(space, id, levels[id as usize]);
        }
        base
    }

    /// ParlayANN-style batch insertion: a serial prefix seeds the graph,
    /// then batch sizes double. Within a batch: (A) every member searches
    /// the frozen prefix graph concurrently, (B) forward + reverse edges
    /// are applied under striped locks, (C) hierarchy insertions run
    /// serially in id order. Batch members do not see same-batch inserts,
    /// which is the one semantic difference from the serial build.
    fn build_parallel(
        store: &VectorStore,
        space: Space<'_>,
        hierarchy: &mut Hierarchy,
        params: &HnswParams,
        m0: usize,
        levels: &[usize],
        threads: usize,
    ) -> AdjacencyGraph {
        let n = store.len();
        let ef = params.ef_construction;
        let batches = gass_core::bounded_prefix_batches(ef.max(64).min(n), BATCH_FRAC, n);
        let prefix_end = batches.first().map_or(n, |b| b.start);

        // Serial seed prefix — identical to the serial build over these ids.
        let mut base = AdjacencyGraph::with_degree_hint(n, m0 + 1);
        let mut scratch = SearchScratch::new(n, ef);
        hierarchy.insert(space, 0, levels[0]);
        for id in 1..prefix_end as u32 {
            let selected =
                prepare_insertion(store, space, &base, hierarchy, params, &mut scratch, id);
            base.set_neighbors(id, selected.iter().map(|s| s.id).collect());
            add_reverse_edges(space, &mut base, id, &selected, m0, NdStrategy::Rnd);
            hierarchy.insert(space, id, levels[id as usize]);
        }

        let conc = ConcurrentAdjacency::from_adjacency(base);
        for batch in batches {
            // Phase A: read-only searches against the frozen prefix. No
            // writer is active, so unlocked GraphView reads are safe.
            let prepared: Vec<(u32, Vec<gass_core::Neighbor>)> = gass_core::par_map_with(
                threads,
                batch.len(),
                || SearchScratch::new(n, ef),
                |scratch, i| {
                    let id = (batch.start + i) as u32;
                    let selected =
                        prepare_insertion(store, space, &conc, hierarchy, params, scratch, id);
                    (id, selected)
                },
            );
            // Phase B: apply edges under the stripe locks.
            gass_core::par_for(threads, prepared.len(), |range| {
                for (id, selected) in &prepared[range] {
                    conc.set_neighbors(*id, selected.iter().map(|s| s.id).collect());
                    add_reverse_edges_concurrent(
                        space,
                        &conc,
                        *id,
                        selected,
                        m0,
                        NdStrategy::Rnd,
                    );
                }
            });
            // Phase C: hierarchy updates are serial (upper layers are
            // cheap: ~1/M of nodes appear above the base layer).
            for (id, _) in &prepared {
                hierarchy.insert(space, *id, levels[*id as usize]);
            }
        }
        conc.freeze()
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The base-layer graph.
    pub fn base_graph(&self) -> &FlatGraph {
        &self.base
    }

    /// The frozen CSR form of the base layer, once
    /// [`AnnIndex::freeze`] has run.
    pub fn csr(&self) -> Option<&CsrGraph> {
        self.serving.csr()
    }

    /// The compressed codes, once [`AnnIndex::quantize`] has run (LSHAPG
    /// routes its probabilistic traversal through these directly).
    pub fn quantized(&self) -> Option<&dyn gass_core::CodecStore> {
        self.serving.quant()
    }

    /// The serving state (CSR + codes + reorder map).
    pub fn serving(&self) -> &ServingState {
        &self.serving
    }

    /// Applies a cache-locality reordering and returns the incremental
    /// `old → new` permutation so wrappers (LSHAPG) can relabel their own
    /// auxiliary structures through the same map. Freezes first; `None`
    /// when `strategy` is [`ReorderStrategy::None`].
    pub fn reorder_with(&mut self, strategy: ReorderStrategy) -> Option<IdRemap> {
        let entries: Vec<u32> = self.hierarchy.entry_node().into_iter().collect();
        let map = self.serving.reorder(&self.base, &mut self.store, strategy, &entries)?;
        self.hierarchy.reorder(&map);
        Some(map)
    }

    /// The seed-selection hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The vector store.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Converts the vector store to the cache-aligned, padded layout
    /// (idempotent; search results are unaffected — only memory layout
    /// changes).
    pub fn align_store(&mut self) {
        if !self.store.is_aligned() {
            self.store = self.store.to_aligned();
        }
    }
}

impl AnnIndex for HnswIndex {
    fn name(&self) -> String {
        "HNSW".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        // The SN descent stays at full precision (upper layers are a few
        // dozen nodes; quantizing them saves nothing and costs accuracy).
        // A `max_dists` budget covers routing too: a budget-squeezed
        // descent hands the base search its best node so far.
        let entry = self
            .hierarchy
            .descend_budgeted(space, query, params.max_dists)
            .unwrap_or_else(|| self.serving.to_new(0));
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.base,
                self.serving.csr(),
                space,
                query,
                &[entry],
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.base);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        self.reorder_with(strategy);
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.base.num_nodes(),
            edges: self.base.num_edges(),
            avg_degree: self.base.avg_degree(),
            max_degree: self.base.max_degree(),
            graph_bytes: self.base.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.hierarchy.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::{deep_like, seismic_like};

    fn recall(idx: &HnswIndex, base: &VectorStore, queries: &VectorStore, l: usize) -> f64 {
        let gt = ground_truth(base, queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, l);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        hit as f64 / (10 * gt.len()) as f64
    }

    #[test]
    fn hnsw_high_recall_on_easy_data() {
        let base = deep_like(800, 1);
        let queries = deep_like(20, 2);
        let idx = HnswIndex::build(base.clone(), HnswParams::small());
        let r = recall(&idx, &base, &queries, 64);
        assert!(r > 0.95, "HNSW recall too low: {r}");
    }

    #[test]
    fn recall_grows_with_beam_width() {
        let base = seismic_like(600, 3);
        let queries = seismic_like(15, 4);
        let idx = HnswIndex::build(base.clone(), HnswParams::small());
        let narrow = recall(&idx, &base, &queries, 10);
        let wide = recall(&idx, &base, &queries, 120);
        assert!(wide >= narrow, "wider beam lost recall: {narrow} -> {wide}");
        assert!(wide > 0.6, "hard-data recall too low even at L=120: {wide}");
    }

    #[test]
    fn base_degree_bounded_by_2m() {
        let base = deep_like(500, 5);
        let idx = HnswIndex::build(base, HnswParams::small());
        assert!(idx.stats().max_degree <= 24);
        assert!(idx.hierarchy().num_layers() >= 1);
        assert!(idx.stats().aux_bytes > 0);
    }

    #[test]
    fn exact_member_query_finds_itself() {
        let base = deep_like(300, 7);
        let idx = HnswIndex::build(base.clone(), HnswParams::small());
        let counter = DistCounter::new();
        let res = idx.search(base.get(123), &QueryParams::new(1, 32), &counter);
        assert_eq!(res.neighbors[0].id, 123);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }
}
