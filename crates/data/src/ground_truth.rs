//! Exact k-NN ground truth via parallel brute force.
//!
//! Recall — the paper's accuracy measure — needs the true nearest
//! neighbors of every query. Brute force is `O(n·d)` per query;
//! we shard queries across threads with `gass_core::par`.
//! Ground-truth distance evaluations are *not* charged to any experiment
//! counter (they are the referee, not a contestant).

use gass_core::distance::{l2_sq, l2_sq_batch};
use gass_core::neighbor::{BoundedMaxHeap, Neighbor};
use gass_core::store::VectorStore;

/// Exact `k` nearest neighbors in `base` for every vector of `queries`,
/// each sorted closest first.
pub fn ground_truth(base: &VectorStore, queries: &VectorStore, k: usize) -> Vec<Vec<Neighbor>> {
    assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
    assert!(k > 0, "k must be positive");
    let nq = queries.len();
    if nq == 0 {
        return Vec::new();
    }
    let threads = gass_core::par::effective_threads(0).min(nq);
    gass_core::par::par_map(threads, nq, |i| exact_knn(base, queries.get(i as u32), k))
}

/// Exact `k`-NN of a single query (sequential). Scans four base vectors at
/// a time through the batched kernel (bit-identical to one-at-a-time) with
/// a scalar tail.
pub fn exact_knn(base: &VectorStore, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut heap = BoundedMaxHeap::new(k);
    let n = base.len() as u32;
    let mut id = 0u32;
    while id + 4 <= n {
        let ds = l2_sq_batch(
            query,
            [base.get(id), base.get(id + 1), base.get(id + 2), base.get(id + 3)],
        );
        for (j, &d) in ds.iter().enumerate() {
            heap.push(Neighbor::new(id + j as u32, d));
        }
        id += 4;
    }
    while id < n {
        heap.push(Neighbor::new(id, l2_sq(query, base.get(id))));
        id += 1;
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::deep_like;

    #[test]
    fn parallel_matches_sequential() {
        let base = deep_like(300, 1);
        let queries = deep_like(17, 2);
        let gt = ground_truth(&base, &queries, 5);
        assert_eq!(gt.len(), 17);
        for (qi, row) in gt.iter().enumerate() {
            let seq = exact_knn(&base, queries.get(qi as u32), 5);
            assert_eq!(row, &seq, "query {qi} mismatch");
            // Sorted ascending.
            for w in row.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn self_query_finds_itself() {
        let base = deep_like(100, 3);
        let q = base.get(42).to_vec();
        let res = exact_knn(&base, &q, 3);
        assert_eq!(res[0].id, 42);
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let base = deep_like(4, 5);
        let res = exact_knn(&base, base.get(0), 10);
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn empty_query_set() {
        let base = deep_like(10, 6);
        let queries = gass_core::VectorStore::new(96);
        assert!(ground_truth(&base, &queries, 3).is_empty());
    }
}
