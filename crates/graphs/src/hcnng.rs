//! **HCNNG** — Hierarchical Clustering-based Nearest Neighbor Graph: the
//! dataset is divided by *random hierarchical clustering* (recursively:
//! pick two random pivots, split by nearer pivot) several times; a
//! degree-capped Minimum Spanning Tree is built inside every leaf; all MST
//! edges are merged into one undirected graph. K-D trees provide query
//! seeds.

use crate::common::BuildReport;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::SeedProvider;
use gass_core::store::VectorStore;
use gass_trees::kdtree::KdForest;
use gass_trees::mst::prim_mst;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// HCNNG construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct HcnngParams {
    /// Number of independent random hierarchical clusterings.
    pub num_clusterings: usize,
    /// Maximum leaf (cluster) size.
    pub leaf_size: usize,
    /// Degree cap inside each MST (the reference uses 3).
    pub mst_degree: usize,
    /// K-D trees for seed selection.
    pub num_seed_trees: usize,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). HCNNG is
    /// deterministic at any thread count: every clustering has its own
    /// derived seed and the MST edge sets are merged in clustering order.
    pub threads: usize,
}

impl HcnngParams {
    /// Small-scale defaults: 8 clusterings, leaves of ≤ 64, MST degree 3.
    pub fn small() -> Self {
        // The reference HCNNG merges MSTs from dozens of clusterings,
        // which is what makes its construction footprint and time balloon
        // in the paper; 16 clusterings keep that character at our tiers.
        Self {
            num_clusterings: 16,
            leaf_size: 96,
            mst_degree: 3,
            num_seed_trees: 4,
            seed: 42,
            threads: 0,
        }
    }
}

/// Recursive two-pivot random division (HCNNG's clustering).
fn random_divide(
    space: Space<'_>,
    ids: &[u32],
    leaf_size: usize,
    rng: &mut SmallRng,
    leaves: &mut Vec<Vec<u32>>,
) {
    if ids.len() <= leaf_size {
        leaves.push(ids.to_vec());
        return;
    }
    let a = ids[rng.random_range(0..ids.len())];
    let mut b = a;
    while b == a {
        b = ids[rng.random_range(0..ids.len())];
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &u in ids {
        if space.dist(u, a) <= space.dist(u, b) {
            left.push(u);
        } else {
            right.push(u);
        }
    }
    // Degenerate split (identical pivots / duplicated points): halve
    // arbitrarily to guarantee progress.
    if left.is_empty() || right.is_empty() {
        let mid = ids.len() / 2;
        left = ids[..mid].to_vec();
        right = ids[mid..].to_vec();
    }
    random_divide(space, &left, leaf_size, rng, leaves);
    random_divide(space, &right, leaf_size, rng, leaves);
}

/// A built HCNNG index.
pub struct HcnngIndex {
    store: VectorStore,
    graph: AdjacencyGraph,
    serving: ServingState,
    forest: KdForest,
    scratch: ScratchPool,
    build: BuildReport,
}

impl HcnngIndex {
    /// Builds the index: repeated clusterings → per-leaf MSTs → merge.
    /// Clusterings run in parallel (deterministic per-clustering seeds,
    /// merged in order).
    pub fn build(store: VectorStore, params: HcnngParams) -> Self {
        assert!(store.len() > 2, "need at least three vectors");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let n = store.len();
        let all_ids: Vec<u32> = (0..n as u32).collect();
        let threads = gass_core::effective_threads(params.threads);
        let graph = {
            let space = Space::new(&store, &counter);
            let edge_sets: Vec<Vec<(u32, u32)>> =
                gass_core::par_map(threads, params.num_clusterings.max(1), |c| {
                    let mut rng = SmallRng::seed_from_u64(params.seed.wrapping_add(c as u64));
                    let mut leaves = Vec::new();
                    random_divide(space, &all_ids, params.leaf_size, &mut rng, &mut leaves);
                    let mut edges = Vec::new();
                    for leaf in &leaves {
                        for e in prim_mst(space, leaf, params.mst_degree) {
                            edges.push((e.a, e.b));
                        }
                    }
                    edges
                });
            let mut g = AdjacencyGraph::with_degree_hint(n, params.mst_degree * 2);
            for edges in edge_sets {
                for (a, b) in edges {
                    g.add_undirected(a, b);
                }
            }
            g
        };
        let forest = KdForest::build(&store, params.num_seed_trees, 16, params.seed ^ 0x4d);
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        Self {
            store,
            graph,
            forest,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The merged MST graph.
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }
}

impl AnnIndex for HcnngIndex {
    fn name(&self) -> String {
        "HCNNG".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.forest.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.forest.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.forest.heap_bytes() + self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn hcnng_recall() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = HcnngIndex::build(base.clone(), HcnngParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 80).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.85, "HCNNG recall too low: {recall}");
    }

    #[test]
    fn merged_graph_is_undirected() {
        let base = deep_like(250, 3);
        let idx = HcnngIndex::build(base, HcnngParams::small());
        let g = idx.graph();
        for u in 0..g.num_nodes() as u32 {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn more_clusterings_add_edges() {
        let base = deep_like(300, 5);
        let few = HcnngIndex::build(
            base.clone(),
            HcnngParams { num_clusterings: 2, ..HcnngParams::small() },
        );
        let many = HcnngIndex::build(
            base,
            HcnngParams { num_clusterings: 10, ..HcnngParams::small() },
        );
        assert!(many.stats().edges > few.stats().edges);
    }

    #[test]
    fn build_is_deterministic() {
        let base = deep_like(200, 7);
        let a = HcnngIndex::build(base.clone(), HcnngParams::small());
        let b = HcnngIndex::build(base, HcnngParams::small());
        assert_eq!(a.stats().edges, b.stats().edges);
        for u in 0..a.graph().num_nodes() as u32 {
            let mut na = a.graph().neighbors(u).to_vec();
            let mut nb = b.graph().neighbors(u).to_vec();
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "node {u} differs between identical builds");
        }
    }
}
