//! Integration tests for the paper's paradigm-level claims at test scale:
//! the ND pruning-ratio ordering of Table 1, the SS interchangeability of
//! Section 4.3, and the beam-width accuracy/efficiency trade-off every
//! search-performance figure rests on.

use gass::prelude::*;
use gass_core::seed::{FixedSeed, MedoidSeed, RandomSeeds};
use gass_core::Space;
use gass_eval::recall_at_k;
use gass_graphs::SnSeeds;
use gass_trees::kdtree::KdForest;

/// Table 1's ordering: RND prunes most, then MOND, then RRND — measured
/// on real candidate lists from beam searches, not synthetic clouds.
#[test]
fn table1_pruning_ratio_ordering() {
    let base = gass::data::synth::deep_like(800, 3);
    let counter = DistCounter::new();
    let space = Space::new(&base, &counter);
    let truth = gass::data::ground_truth(&base, &base.subset(&[5, 99, 300, 650]), 60);

    let mut ratios = [0.0f64; 3]; // rnd, mond, rrnd
    for (qi, list) in truth.iter().enumerate() {
        let query_id = [5u32, 99, 300, 650][qi];
        let cands: Vec<Neighbor> = list.clone();
        ratios[0] += NdStrategy::Rnd.pruning_ratio(space, query_id, &cands);
        ratios[1] += NdStrategy::mond_default().pruning_ratio(space, query_id, &cands);
        ratios[2] += NdStrategy::rrnd_default().pruning_ratio(space, query_id, &cands);
    }
    assert!(
        ratios[0] >= ratios[1] && ratios[1] >= ratios[2],
        "expected RND >= MOND >= RRND, got {ratios:?}"
    );
    assert!(ratios[0] > 0.0, "RND must prune something");
}

/// Section 4.3: the same II+RND graph answers correctly under every seed
/// strategy; smarter strategies don't change correctness, only cost.
#[test]
fn all_seed_strategies_work_on_one_graph() {
    let n = 900;
    let base = gass::data::synth::deep_like(n, 9);
    let queries = gass::data::synth::deep_like(8, 10);
    let truth = gass::data::ground_truth(&base, &queries, 10);
    let g = IiGraph::build(base.clone(), IiParams::small(NdStrategy::Rnd));

    let counter = DistCounter::new();
    let space = Space::new(g.store(), &counter);
    let sn = SnSeeds::build(space, 8, 32, 1);
    let kd = KdForest::build(g.store(), 3, 16, 2);
    let md = MedoidSeed::compute(space);
    let sf = FixedSeed::random(n, 3);
    let ks = RandomSeeds::new(n, 4);
    let providers: Vec<(&str, &dyn SeedProvider)> =
        vec![("SN", &sn), ("KD", &kd), ("MD", &md), ("SF", &sf), ("KS", &ks)];

    for (label, provider) in providers {
        let qc = DistCounter::new();
        let params = QueryParams::new(10, 80).with_seed_count(16);
        let mut recall = 0.0;
        for (qi, t) in truth.iter().enumerate() {
            let res = g.search_with(provider, queries.get(qi as u32), &params, &qc);
            recall += recall_at_k(t, &res.neighbors, 10);
        }
        recall /= truth.len() as f64;
        assert!(recall > 0.85, "{label} recall collapsed to {recall:.3}");
        assert!(qc.get() > 0, "{label} did no counted work");
    }
}

/// The universal trade-off: recall is non-decreasing and distance calls
/// non-trivially increasing in the beam width, for a representative
/// method on a hard dataset.
#[test]
fn beam_width_tradeoff_is_monotone() {
    let base = gass::data::synth::seismic_like(700, 5);
    let queries = gass::data::synth::seismic_like(8, 6);
    let truth = gass::data::ground_truth(&base, &queries, 10);
    let built = build_method(MethodKind::Hnsw, base, 7);

    // Under a forced codec the rerank pool must deepen with the code
    // coarseness for the final floor to be about the graph, not the
    // codec (PQ keeps well under a bit per dimension).
    let rerank = match gass::core::quant_forced() {
        Some(gass::core::CodecSpec::Pq { .. }) => 32,
        Some(_) => 8,
        None => 4,
    };
    let mut last_recall = -1.0f64;
    let mut last_cost = 0u64;
    for l in [10usize, 40, 160] {
        let params = QueryParams::new(10, l).with_seed_count(8).with_rerank_factor(rerank);
        let p = gass_eval::evaluate_params(built.index.as_ref(), &queries, &truth, &params);
        assert!(
            p.recall + 0.05 >= last_recall,
            "recall dropped sharply with wider beam: {last_recall} -> {}",
            p.recall
        );
        // A forced codec (`GASS_QUANT`) floors the candidate pool at
        // `rerank_factor * k`, so small beams cost the same; strict
        // growth only holds on the exact path.
        if gass::core::quant_forced().is_some() {
            assert!(p.dist_calcs >= last_cost, "wider beam must not do less work");
        } else {
            assert!(p.dist_calcs > last_cost, "wider beam must do more work");
        }
        last_recall = p.recall;
        last_cost = p.dist_calcs;
    }
    assert!(last_recall > 0.6, "L=160 recall too low on seismic analog: {last_recall}");
}

/// Divide-and-conquer sanity: ELPIS's leaf pruning never returns results
/// worse than its own nprobe=1 configuration, and both are subsets of the
/// dataset ids.
#[test]
fn elpis_leaf_pruning_is_consistent() {
    let base = gass::data::synth::imagenet_like(800, 13);
    let queries = gass::data::synth::imagenet_like(6, 14);
    let truth = gass::data::ground_truth(&base, &queries, 10);
    let wide =
        ElpisIndex::build(base.clone(), ElpisParams { nprobe: 6, ..ElpisParams::small() });
    let narrow = ElpisIndex::build(base, ElpisParams { nprobe: 1, ..ElpisParams::small() });
    let counter = DistCounter::new();
    let params = QueryParams::new(10, 64);
    let mut r_wide = 0.0;
    let mut r_narrow = 0.0;
    for (qi, t) in truth.iter().enumerate() {
        let rw = wide.search(queries.get(qi as u32), &params, &counter);
        let rn = narrow.search(queries.get(qi as u32), &params, &counter);
        r_wide += recall_at_k(t, &rw.neighbors, 10);
        r_narrow += recall_at_k(t, &rn.neighbors, 10);
    }
    assert!(r_wide + 1e-9 >= r_narrow, "nprobe=6 ({r_wide}) lost to nprobe=1 ({r_narrow})");
}
