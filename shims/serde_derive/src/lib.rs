//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input by walking the raw token stream (no `syn` in an
//! offline build) and emits impls for the shapes this workspace actually
//! declares: non-generic structs with named fields, and non-generic enums
//! whose variants are unit or struct-like. Anything else is a compile
//! error, which is the right failure mode for a shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<String>>,
}

enum Input {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips attribute tokens (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(...)`) starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses `name: Type, ...` named-field bodies, returning field names.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        fields.push(name.to_string());
        // Skip past `: Type` to the next top-level comma. Generic angle
        // brackets never appear in this workspace's field types beyond
        // `Vec<...>` etc., whose commas (if any) sit inside `<...>`; track
        // angle depth to stay at the top level.
        i += 1;
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("unexpected token {other} in derive input"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type {name}");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream().into_iter().collect::<Vec<_>>();
            }
            Some(_) => i += 1,
            None => panic!("no braced body found for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Input::Struct { name, fields: parse_named_fields(&body) },
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                let Some(TokenTree::Ident(vname)) = body.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                let fields = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Some(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde_derive shim does not support tuple variant {vname}")
                    }
                    _ => None,
                };
                variants.push(Variant { name: vname, fields });
                // Skip to past the next comma (discriminants don't occur
                // in this workspace).
                while j < body.len() {
                    if matches!(&body[j], TokenTree::Punct(p) if p.as_char() == ',') {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
            }
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive shim cannot derive for {other} items"),
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut body = format!(
                "let mut st = serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in &fields {
                body.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut st, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("serde::ser::SerializeStruct::end(st)\n");
            wrap_serialize_impl(&name, &body)
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => serde::Serializer::serialize_unit_variant(\
                         serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let mut arm = format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut sv = serde::Serializer::serialize_struct_variant(\
                             serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStructVariant::end(sv)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            wrap_serialize_impl(&name, &format!("match self {{\n{arms}}}\n"))
        }
    };
    out.parse().expect("generated Serialize impl failed to parse")
}

fn wrap_serialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}}}\n}}\n"
    )
}

/// Derives the marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_input(input) {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    };
    format!("#[automatically_derived]\nimpl<'de> serde::Deserialize<'de> for {name} {{}}\n")
        .parse()
        .expect("generated Deserialize impl failed to parse")
}
