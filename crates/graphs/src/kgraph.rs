//! **KGraph** — the original Neighborhood-Propagation method: an
//! approximate k-NN graph obtained by refining a random graph with
//! NNDescent. Queries run the shared beam search with K-sampled random
//! seeds (KS).

use crate::common::BuildReport;
use crate::nndescent::KnnGraphState;
use gass_core::distance::{DistCounter, Space};
use gass_core::graph::{AdjacencyGraph, FlatGraph, GraphView};
use gass_core::index::{AnnIndex, IndexStats, QueryParams, ScratchPool};
use gass_core::reorder::{ReorderStrategy, ServingState};
use gass_core::search::{beam_search_frozen, SearchResult};
use gass_core::seed::{RandomSeeds, SeedProvider};
use gass_core::store::VectorStore;

/// KGraph construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct KGraphParams {
    /// Neighbors kept per node (the k of the k-NN graph).
    pub k: usize,
    /// Maximum NNDescent iterations.
    pub iters: usize,
    /// Per-node join sample size.
    pub sample: usize,
    /// Early-termination threshold (fraction of `n·k` updates).
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Construction worker threads (0 = all available cores). NNDescent's
    /// join distances parallelize without changing the result: the built
    /// graph is bit-identical at any thread count.
    pub threads: usize,
}

impl KGraphParams {
    /// Small-scale defaults: `k=20`, 12 iterations, sample 24.
    pub fn small() -> Self {
        Self { k: 20, iters: 12, sample: 24, delta: 0.002, seed: 42, threads: 0 }
    }
}

/// A built KGraph index.
pub struct KGraphIndex {
    store: VectorStore,
    graph: FlatGraph,
    serving: ServingState,
    seeds: RandomSeeds,
    scratch: ScratchPool,
    build: BuildReport,
}

impl KGraphIndex {
    /// Builds the index (random init + NNDescent).
    pub fn build(store: VectorStore, params: KGraphParams) -> Self {
        assert!(store.len() > params.k, "need more points than k");
        let counter = DistCounter::new();
        let start = std::time::Instant::now();
        let graph = {
            let space = Space::new(&store, &counter);
            let threads = gass_core::effective_threads(params.threads);
            let mut state = KnnGraphState::random_init(space, params.k, params.seed);
            state.run_with(
                space,
                params.iters,
                params.sample,
                params.delta,
                params.seed ^ 0xd5,
                threads,
            );
            let mut g = AdjacencyGraph::new(store.len());
            for (u, list) in state.lists().iter().enumerate() {
                g.set_neighbors(u as u32, list.iter().map(|n| n.id).collect());
            }
            FlatGraph::from_adjacency(&g, Some(params.k))
        };
        let build =
            BuildReport { seconds: start.elapsed().as_secs_f64(), dist_calcs: counter.get() };
        let seeds = RandomSeeds::new(store.len(), params.seed ^ 0x5eed);
        Self {
            store,
            graph,
            seeds,
            serving: ServingState::new(),
            scratch: ScratchPool::new(),
            build,
        }
    }

    /// Construction cost report.
    pub fn build_report(&self) -> BuildReport {
        self.build
    }

    /// The underlying graph.
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl AnnIndex for KGraphIndex {
    fn name(&self) -> String {
        "KGraph".to_string()
    }

    fn num_vectors(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn search(
        &self,
        query: &[f32],
        params: &QueryParams,
        counter: &DistCounter,
    ) -> SearchResult {
        let space =
            Space::new(&self.store, counter).with_quant(self.serving.quant_view(params));
        let mut seeds = Vec::new();
        self.seeds.seeds(space, query, params.seed_count, &mut seeds);
        let res = self.scratch.with(self.store.len(), params.beam_width, |scratch| {
            beam_search_frozen(
                &self.graph,
                self.serving.csr(),
                space,
                query,
                &seeds,
                params.k,
                params.beam_width,
                scratch,
                params.termination(),
            )
        });
        self.serving.finish(res)
    }

    fn freeze(&mut self) {
        self.serving.freeze(&self.graph);
    }

    fn is_frozen(&self) -> bool {
        self.serving.is_frozen()
    }

    fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.serving.quantize(&self.store, spec);
    }

    fn is_quantized(&self) -> bool {
        self.serving.is_quantized()
    }

    fn reorder(&mut self, strategy: ReorderStrategy) {
        if let Some(map) = self.serving.reorder(&self.graph, &mut self.store, strategy, &[]) {
            self.seeds.reorder(&map);
        }
    }

    fn is_reordered(&self) -> bool {
        self.serving.is_reordered()
    }

    fn reorder_strategy(&self) -> ReorderStrategy {
        self.serving.strategy()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            max_degree: self.graph.max_degree(),
            graph_bytes: self.graph.heap_bytes() + self.serving.graph_bytes(),
            aux_bytes: self.serving.aux_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_data::ground_truth::ground_truth;
    use gass_data::synth::deep_like;

    #[test]
    fn kgraph_reaches_reasonable_recall() {
        let base = deep_like(500, 1);
        let queries = deep_like(15, 2);
        let idx = KGraphIndex::build(base.clone(), KGraphParams::small());
        let gt = ground_truth(&base, &queries, 10);
        let counter = DistCounter::new();
        let params = QueryParams::new(10, 80).with_seed_count(16);
        let mut hit = 0;
        for (qi, row) in gt.iter().enumerate() {
            let res = idx.search(queries.get(qi as u32), &params, &counter);
            hit += row.iter().filter(|t| res.neighbors.iter().any(|r| r.id == t.id)).count();
        }
        let recall = hit as f64 / 150.0;
        assert!(recall > 0.8, "KGraph recall too low: {recall}");
    }

    #[test]
    fn build_report_is_populated() {
        let base = deep_like(120, 3);
        let idx = KGraphIndex::build(base, KGraphParams::small());
        assert!(idx.build_report().dist_calcs > 0);
        assert!(idx.build_report().seconds >= 0.0);
        assert_eq!(idx.name(), "KGraph");
        let s = idx.stats();
        assert_eq!(s.nodes, 120);
        assert!(s.max_degree <= 20);
    }
}
