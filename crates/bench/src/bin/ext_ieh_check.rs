//! Extension experiment: was the paper right to exclude IEH?
//!
//! The paper drops IEH from its evaluation "due to suboptimal
//! performance" (citing NSG's and the earlier survey's results). We
//! implemented IEH anyway; this harness pits it against EFANNA — the
//! method with the same NNDescent core but tree-based instead of
//! hash-based candidates/seeds — and KGraph (no bootstrap at all).
//!
//! ```sh
//! cargo run --release -p gass-bench --bin ext_ieh_check
//! ```

use gass_bench::{beam_sweep, num_queries, results_dir, tiers};
use gass_core::index::AnnIndex;
use gass_data::DatasetKind;
use gass_eval::{sweep, Table};
use gass_graphs::{EfannaIndex, EfannaParams, IehIndex, IehParams, KGraphIndex, KGraphParams};

fn main() {
    let n = tiers()[0].n;
    let k = 10;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 271);
    let truth = gass_data::ground_truth(&base, &queries, k);
    println!("Extension: IEH vs EFANNA vs KGraph on Deep (n={n})\n");

    let ieh = IehIndex::build(base.clone(), IehParams::small());
    let efanna = EfannaIndex::build(base.clone(), EfannaParams::small());
    let kgraph = KGraphIndex::build(base.clone(), KGraphParams::small());

    let mut table = Table::new(vec!["method", "build_dists", "L", "recall", "dists_per_query"]);
    let indexes: Vec<(&dyn AnnIndex, u64)> = vec![
        (&ieh, ieh.build_report().dist_calcs),
        (&efanna, efanna.build_report().dist_calcs),
        (&kgraph, kgraph.build_report().dist_calcs),
    ];
    for (idx, build_dists) in indexes {
        for p in sweep(idx, &queries, &truth, k, &beam_sweep(), 16) {
            table.row(vec![
                idx.name(),
                build_dists.to_string(),
                p.beam_width.to_string(),
                format!("{:.4}", p.recall),
                (p.dist_calcs / queries.len() as u64).to_string(),
            ]);
        }
        eprintln!("done: {}", idx.name());
    }
    table.emit(&results_dir(), "ext_ieh_check").expect("write results");
    println!(
        "The paper's exclusion is justified if IEH needs more distance \
         calls than EFANNA at matched recall (hash buckets route worse \
         than randomized K-D trees on dense embeddings)."
    );
}
