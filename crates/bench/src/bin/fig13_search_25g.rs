//! Figure 13: query performance at the 25GB tier (Deep, Sift, SALD,
//! Seismic) plus the power-law distribution study (13e/13f: RandPow 0, 5
//! and 50), plus the file-backed mapped-tier leg that actually serves a
//! 25GB-class on-disk Deep analog through the sharded mmap path.
//!
//! Paper shape: SSG/NSG/NGT/HCNNG drop off relative to their 1M showing;
//! ELPIS takes the overall lead (sharing it with SPTAG-BKT on SALD); no
//! method exceeds ~0.8 recall on Seismic; on the power-law family ELPIS
//! stays on top across skew levels and most methods improve as skew
//! grows.
//!
//! The mapped leg replaces the old in-memory stand-in for "25GB": the
//! base streams to disk in the mapped `KIND_MSTORE` layout, the sharded
//! index builds one shard at a time ([`ShardedIndex::build_to_dir`]),
//! and the reloaded index page-faults vector rows from disk during the
//! sweep — peak heap never approaches the tier size. The default run
//! keeps CI scale (`tiers()[1]`); `GASS_FULL=1` raises it to the paper's
//! ~25GB row count (65M x 96d, ~25 GB on disk; size with `GASS_FULL_N`,
//! point `GASS_MAPPED_DIR` at a disk that fits).
//!
//! [`ShardedIndex::build_to_dir`]: gass_core::ShardedIndex::build_to_dir
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig13_search_25g
//! ```

use gass_bench::{mapped_tier_n, run_mapped_sharded_tier, run_search_figure, tiers};
use gass_data::DatasetKind;
use gass_graphs::MethodKind;

/// The paper's 25GB Deep tier in 96d f32 rows (aligned 384-byte rows).
const PAPER_25G_ROWS: usize = 65_000_000;

fn main() {
    let tier = tiers()[1];
    let n = tier.n;
    // The paper drops KGraph, DPG, SPTAG-KDT, HCNNG and EFANNA from the
    // 25GB plots for clarity (far behind the leaders).
    let methods = [
        MethodKind::Elpis,
        MethodKind::Hnsw,
        MethodKind::Vamana,
        MethodKind::Nsg,
        MethodKind::Ssg,
        MethodKind::Ngt,
        MethodKind::SptagBkt,
        MethodKind::Lshapg,
    ];
    let workloads = [
        (DatasetKind::Deep, n),
        (DatasetKind::Sift, n),
        (DatasetKind::Sald, n),
        (DatasetKind::Seismic, n),
    ];
    run_search_figure("fig13_search_25g", &workloads, &methods, 10, 103);

    // 13e/13f: data distributions.
    let dist_methods = [
        MethodKind::Efanna,
        MethodKind::Vamana,
        MethodKind::Ssg,
        MethodKind::Hnsw,
        MethodKind::Elpis,
        MethodKind::SptagBkt,
    ];
    let pow_workloads = [
        (DatasetKind::RandPow(0), n),
        (DatasetKind::RandPow(5), n),
        (DatasetKind::RandPow(50), n),
    ];
    run_search_figure("fig13ef_powerlaw", &pow_workloads, &dist_methods, 10, 104);

    // The file-backed 25GB-class leg: on-disk base, bounded-heap build,
    // mapped sharded serving. Shards sized so each holds a cache-friendly
    // slice (~250K rows at full scale).
    let mapped_n = mapped_tier_n(&tier, PAPER_25G_ROWS);
    let shards = (mapped_n / 250_000).clamp(4, 64);
    run_mapped_sharded_tier("fig13_mapped_25g", "25g", mapped_n, shards, 103);
}
