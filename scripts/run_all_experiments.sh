#!/usr/bin/env bash
# Regenerates every table and figure of the paper. Outputs land in
# results/*.tsv and on stdout. Scale with GASS_SCALE / GASS_QUERIES.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig04_complexity
  table1_pruning
  fig05_nd
  fig06_ss
  table2_ss_indexing
  fig07_index_time
  fig11_beam_width
  fig12_search_1m
  fig13_search_25g
  fig15_hardness
  fig17_impl_opt
  table3_summary
  fig01_bsf_race
  fig08_index_memory
  fig09_index_size
  fig10_query_memory
  fig14_search_100g
  fig16_search_1b
  fig18_recommend
  ext_adaptive_ss
  ext_ieh_check
  ext_hvs_seeds
  ext_throughput
)

cargo build --release -p gass-bench --bins
for bin in "${BINS[@]}"; do
  echo "================================================================"
  echo "== $bin"
  echo "================================================================"
  cargo run --release -q -p gass-bench --bin "$bin"
done
