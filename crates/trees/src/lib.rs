//! # gass-trees
//!
//! Tree substrates for graph-based vector search: the auxiliary structures
//! that state-of-the-art methods use for seed selection and for
//! divide-and-conquer partitioning.
//!
//! * [`kdtree`] — randomized K-D trees (EFANNA, SPTAG-KDT, HCNNG; the
//!   paper's **KD** seed strategy);
//! * [`vptree`] — vantage-point trees (NGT's seed structure);
//! * [`tptree`] — trinary-projection partitions (SPTAG's dataset divider);
//! * [`bkt`] — balanced k-means trees (SPTAG-BKT; the **KM** strategy);
//! * [`kmeans`] — Lloyd's and balanced k-means clustering;
//! * [`eapca`] — EAPCA summarization + Hercules tree (ELPIS's partitioner
//!   and lower-bounding pruner);
//! * [`mst`] — minimum spanning trees (HCNNG's per-cluster graphs);
//! * [`centroid_seeds`] — **CS**, a data-adaptive seed strategy built for
//!   the paper's "future work" direction (see the `ext_adaptive_ss`
//!   harness).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bkt;
pub mod centroid_seeds;
pub mod eapca;
pub mod kdtree;
pub mod kmeans;
pub mod mst;
pub mod summaries;
pub mod tptree;
pub mod vptree;

pub use bkt::{BkTree, BktSeeds};
pub use centroid_seeds::CentroidSeeds;
pub use eapca::{summarize, EapcaSummary, HerculesLeaf, HerculesTree};
pub use kdtree::{KdForest, KdTree};
pub use kmeans::{balanced_kmeans, kmeans, Clustering};
pub use mst::{prim_mst, MstEdge};
pub use summaries::{paa, paa_lower_bound, sax, sax_mindist_sq, Paa, Sax};
pub use tptree::TpPartition;
pub use vptree::{VpSeeds, VpTree};
