//! Trinary-Projection (TP) trees — SPTAG's dataset-partitioning structure.
//!
//! A TP tree recursively splits a point set by its projection onto a sparse
//! random direction (a weighted combination of a few coordinate axes, per
//! Wang et al.), cutting the projected values into three children at the
//! 1/3 and 2/3 quantiles. SPTAG runs several random TP-tree divisions and
//! builds an exact k-NN graph inside each resulting leaf; repeated
//! divisions give overlapping neighborhoods that the merge step fuses.
//!
//! Projections are axis combinations, not full distance computations, so
//! partitioning itself adds no counted distance calls.

use gass_core::store::VectorStore;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Number of coordinate axes combined into one projection direction.
const PROJECTION_AXES: usize = 3;

/// A single hierarchical trinary division of a point set: only the leaves
/// are retained (SPTAG consumes the partition, not the tree).
#[derive(Clone, Debug)]
pub struct TpPartition {
    leaves: Vec<Vec<u32>>,
}

impl TpPartition {
    /// Partitions `ids` into leaves of at most `leaf_size` points.
    ///
    /// # Panics
    /// Panics if `ids` is empty or `leaf_size == 0`.
    pub fn build(store: &VectorStore, ids: &[u32], leaf_size: usize, seed: u64) -> Self {
        assert!(!ids.is_empty(), "TP partition over empty id set");
        assert!(leaf_size > 0, "leaf size must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut leaves = Vec::new();
        split_rec(store, ids.to_vec(), leaf_size, &mut rng, &mut leaves);
        Self { leaves }
    }

    /// The leaf id lists.
    pub fn leaves(&self) -> &[Vec<u32>] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }
}

fn random_direction(dim: usize, rng: &mut SmallRng) -> Vec<(usize, f32)> {
    let axes = PROJECTION_AXES.min(dim);
    let mut chosen = Vec::with_capacity(axes);
    while chosen.len() < axes {
        let a = rng.random_range(0..dim);
        if !chosen.iter().any(|&(d, _)| d == a) {
            let w: f32 = if rng.random_range(0..2) == 0 { 1.0 } else { -1.0 };
            chosen.push((a, w));
        }
    }
    chosen
}

fn project(v: &[f32], dir: &[(usize, f32)]) -> f32 {
    dir.iter().map(|&(d, w)| v[d] * w).sum()
}

fn split_rec(
    store: &VectorStore,
    ids: Vec<u32>,
    leaf_size: usize,
    rng: &mut SmallRng,
    leaves: &mut Vec<Vec<u32>>,
) {
    if ids.len() <= leaf_size {
        leaves.push(ids);
        return;
    }
    let dir = random_direction(store.dim(), rng);
    let mut proj: Vec<(f32, u32)> =
        ids.iter().map(|&id| (project(store.get(id), &dir), id)).collect();
    proj.sort_by(|a, b| a.0.total_cmp(&b.0));
    let third = proj.len() / 3;
    // Trinary cut at 1/3 and 2/3; guarantee progress even for tiny sets.
    let c1 = third.max(1);
    let c2 = (2 * third).max(c1 + 1).min(proj.len() - 1);
    let low: Vec<u32> = proj[..c1].iter().map(|&(_, id)| id).collect();
    let mid: Vec<u32> = proj[c1..c2].iter().map(|&(_, id)| id).collect();
    let high: Vec<u32> = proj[c2..].iter().map(|&(_, id)| id).collect();
    for part in [low, mid, high] {
        if !part.is_empty() {
            split_rec(store, part, leaf_size, rng, leaves);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = VectorStore::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0f32)).collect();
            s.push(&v);
        }
        s
    }

    #[test]
    fn leaves_partition_input() {
        let store = random_store(500, 8, 1);
        let ids: Vec<u32> = (0..500).collect();
        let p = TpPartition::build(&store, &ids, 32, 2);
        let mut all: Vec<u32> = p.leaves().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, ids);
    }

    #[test]
    fn leaf_size_respected() {
        let store = random_store(300, 4, 3);
        let ids: Vec<u32> = (0..300).collect();
        let p = TpPartition::build(&store, &ids, 20, 4);
        for leaf in p.leaves() {
            assert!(leaf.len() <= 20, "oversized leaf: {}", leaf.len());
            assert!(!leaf.is_empty());
        }
        assert!(p.num_leaves() >= 300 / 20);
    }

    #[test]
    fn different_seeds_give_different_partitions() {
        let store = random_store(200, 6, 5);
        let ids: Vec<u32> = (0..200).collect();
        let a = TpPartition::build(&store, &ids, 25, 10);
        let b = TpPartition::build(&store, &ids, 25, 11);
        // Overwhelmingly likely the first leaves differ.
        assert_ne!(a.leaves()[0], b.leaves()[0]);
    }

    #[test]
    fn tiny_input_single_leaf() {
        let store = random_store(3, 2, 7);
        let p = TpPartition::build(&store, &[0, 1, 2], 8, 1);
        assert_eq!(p.num_leaves(), 1);
        assert_eq!(p.leaves()[0].len(), 3);
    }

    #[test]
    fn identical_points_terminate() {
        let mut s = VectorStore::new(2);
        for _ in 0..64 {
            s.push(&[5.0, 5.0]);
        }
        let ids: Vec<u32> = (0..64).collect();
        let p = TpPartition::build(&s, &ids, 8, 9);
        let total: usize = p.leaves().iter().map(Vec::len).sum();
        assert_eq!(total, 64);
    }
}
