//! Method registry: build any of the evaluated methods by name, with
//! parameter presets scaled to the dataset tier. This is what the figure
//! harnesses iterate over.

use crate::baseline::{IiGraph, IiParams};
use crate::common::BuildReport;
use crate::dpg::{DpgIndex, DpgParams};
use crate::efanna::{EfannaIndex, EfannaParams};
use crate::elpis::{ElpisIndex, ElpisParams};
use crate::hcnng::{HcnngIndex, HcnngParams};
use crate::hnsw::{HnswIndex, HnswParams};
use crate::kgraph::{KGraphIndex, KGraphParams};
use crate::lshapg::{LshapgIndex, LshapgParams};
use crate::ngt::{NgtIndex, NgtParams};
use crate::nsg::{NsgIndex, NsgParams};
use crate::nsw::{NswIndex, NswParams};
use crate::sptag::{SptagIndex, SptagParams, SptagVariant};
use crate::ssg::{SsgIndex, SsgParams};
use crate::vamana::{VamanaIndex, VamanaParams};
use gass_core::index::AnnIndex;
use gass_core::nd::NdStrategy;
use gass_core::store::VectorStore;

/// Every method in the paper's evaluation (Section 4.1 "Algorithms").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MethodKind {
    /// HNSW (Malkov & Yashunin).
    Hnsw,
    /// NSG (Fu et al.).
    Nsg,
    /// SSG (Fu et al.) — NSG's MOND-based successor.
    Ssg,
    /// Vamana / DiskANN graph.
    Vamana,
    /// DPG (Li et al.).
    Dpg,
    /// EFANNA (Fu & Cai).
    Efanna,
    /// HCNNG (Munoz et al.).
    Hcnng,
    /// KGraph (Dong).
    KGraph,
    /// NGT (Yahoo Japan).
    Ngt,
    /// SPTAG with K-D-tree seeds.
    SptagKdt,
    /// SPTAG with balanced-k-means-tree seeds.
    SptagBkt,
    /// ELPIS (Azizi et al.).
    Elpis,
    /// LSHAPG (Zhao et al.).
    Lshapg,
    /// NSW (Malkov et al. 2014) — predecessor included for the taxonomy.
    Nsw,
    /// The paper's instrumented II baseline with the given ND strategy.
    Baseline(NdStrategy),
}

impl MethodKind {
    /// The twelve methods of the paper's evaluation.
    pub fn all_sota() -> Vec<MethodKind> {
        vec![
            MethodKind::Hnsw,
            MethodKind::Nsg,
            MethodKind::Ssg,
            MethodKind::Vamana,
            MethodKind::Dpg,
            MethodKind::Efanna,
            MethodKind::Hcnng,
            MethodKind::KGraph,
            MethodKind::Ngt,
            MethodKind::SptagKdt,
            MethodKind::SptagBkt,
            MethodKind::Elpis,
            MethodKind::Lshapg,
        ]
    }

    /// The subset that scales to the largest tiers in the paper
    /// (Figures 14 and 16: only HNSW, ELPIS and Vamana built 100GB+
    /// indexes in time/memory budget).
    pub fn scalable() -> Vec<MethodKind> {
        vec![MethodKind::Hnsw, MethodKind::Elpis, MethodKind::Vamana]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            MethodKind::Hnsw => "HNSW".into(),
            MethodKind::Nsg => "NSG".into(),
            MethodKind::Ssg => "SSG".into(),
            MethodKind::Vamana => "Vamana".into(),
            MethodKind::Dpg => "DPG".into(),
            MethodKind::Efanna => "EFANNA".into(),
            MethodKind::Hcnng => "HCNNG".into(),
            MethodKind::KGraph => "KGraph".into(),
            MethodKind::Ngt => "NGT".into(),
            MethodKind::SptagKdt => "SPTAG-KDT".into(),
            MethodKind::SptagBkt => "SPTAG-BKT".into(),
            MethodKind::Elpis => "ELPIS".into(),
            MethodKind::Lshapg => "LSHAPG".into(),
            MethodKind::Nsw => "NSW".into(),
            MethodKind::Baseline(nd) => format!("II+{}", nd.label()),
        }
    }
}

/// A built method plus its construction report (the figure harnesses need
/// both).
pub struct BuiltMethod {
    /// The index, behind the common interface.
    pub index: Box<dyn AnnIndex>,
    /// Construction cost.
    pub build: BuildReport,
}

impl BuiltMethod {
    /// Freezes the index's traversal graph(s) into the contiguous CSR
    /// serving layout (see [`AnnIndex::freeze`]). Results are identical
    /// before and after; only the memory layout changes.
    pub fn freeze(&mut self) {
        self.index.freeze();
    }

    /// Builds compressed codes for quantized serving with the codec named
    /// by `spec` (see [`AnnIndex::quantize`]). Idempotent per codec
    /// family; searches afterwards traverse on code-space distances and
    /// re-score a `rerank_factor * k` pool exactly.
    pub fn quantize(&mut self, spec: gass_core::CodecSpec) {
        self.index.quantize(spec);
    }

    /// Relabels the frozen serving state with a locality-preserving
    /// permutation (see [`AnnIndex::reorder`]). Freezes first when
    /// needed; results still report original ids.
    pub fn reorder(&mut self, strategy: gass_core::ReorderStrategy) {
        self.index.reorder(strategy);
    }
}

/// Builds `kind` on `store` with parameter presets scaled by `n`
/// (degree/beam grow mildly with the tier, mirroring how the paper tunes
/// per dataset size). Uses each method's default construction threading.
pub fn build_method(kind: MethodKind, store: VectorStore, seed: u64) -> BuiltMethod {
    build_method_with_threads(kind, store, seed, None)
}

/// [`build_method`] with an explicit construction-thread override.
/// `None` keeps each method's own default: serial for the
/// incremental-insertion methods (HNSW, Vamana, the II baseline) whose
/// parallel builds change the algorithm, automatic (all cores) for the
/// methods whose parallel builds are bit-identical to serial. `Some(t)`
/// forces `t` threads everywhere a method has a knob (NGT, SPTAG and NSW
/// construct serially regardless).
pub fn build_method_with_threads(
    kind: MethodKind,
    store: VectorStore,
    seed: u64,
    threads: Option<usize>,
) -> BuiltMethod {
    let n = store.len();
    // Per-method defaults when no override is given (see the doc above).
    let t_serial = threads.unwrap_or(1);
    let t_auto = threads.unwrap_or(0);
    // Tier-scaled knobs.
    let degree = if n < 2_000 {
        16
    } else if n < 20_000 {
        24
    } else {
        32
    };
    let build_l = (degree * 4).max(64);
    let mut built = match kind {
        MethodKind::Hnsw => {
            let idx = HnswIndex::build(
                store,
                HnswParams { m: degree / 2, ef_construction: build_l, seed, threads: t_serial },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Nsg => {
            let idx = NsgIndex::build(
                store,
                NsgParams {
                    max_degree: degree,
                    build_l,
                    base: EfannaParams { seed, threads: t_auto, ..EfannaParams::small() },
                    seed,
                    threads: t_auto,
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Ssg => {
            let idx = SsgIndex::build(
                store,
                SsgParams {
                    max_degree: degree,
                    base: EfannaParams { seed, threads: t_auto, ..EfannaParams::small() },
                    seed,
                    threads: t_auto,
                    ..SsgParams::small()
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Vamana => {
            let idx = VamanaIndex::build(
                store,
                VamanaParams {
                    max_degree: degree,
                    build_l,
                    alpha: 1.3,
                    seed,
                    threads: t_serial,
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Dpg => {
            let idx = DpgIndex::build(
                store,
                DpgParams {
                    base_k: degree,
                    target_degree: degree / 2,
                    nd: NdStrategy::mond_default(),
                    iters: 10,
                    seed,
                    threads: t_auto,
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Efanna => {
            let idx = EfannaIndex::build(
                store,
                EfannaParams { k: degree, seed, threads: t_auto, ..EfannaParams::small() },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Hcnng => {
            let idx = HcnngIndex::build(
                store,
                HcnngParams { seed, threads: t_auto, ..HcnngParams::small() },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::KGraph => {
            let idx = KGraphIndex::build(
                store,
                KGraphParams { k: degree, seed, threads: t_auto, ..KGraphParams::small() },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Ngt => {
            let idx = NgtIndex::build(
                store,
                NgtParams { base_k: degree, max_degree: degree, seed, ..NgtParams::small() },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::SptagKdt => {
            let idx = SptagIndex::build(
                store,
                SptagParams { seed, ..SptagParams::small(SptagVariant::Kdt) },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::SptagBkt => {
            let idx = SptagIndex::build(
                store,
                SptagParams { seed, ..SptagParams::small(SptagVariant::Bkt) },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Elpis => {
            let leaf = (n / 8).clamp(128, 4096);
            let idx = ElpisIndex::build(
                store,
                ElpisParams {
                    leaf_size: leaf,
                    // Leaf graphs stay serial: they are small, and the
                    // leaf-level fan-out supplies the parallelism.
                    hnsw: HnswParams {
                        m: degree / 3,
                        ef_construction: build_l / 2,
                        seed,
                        threads: 1,
                    },
                    threads: t_auto,
                    // The paper tunes nprobes per dataset; at our tiers
                    // the EAPCA lower-bound filter does the pruning and a
                    // generous cap keeps recall robust on embedding-style
                    // data whose neighbors straddle leaf boundaries.
                    nprobe: 8,
                    ..ElpisParams::small()
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Lshapg => {
            let idx = LshapgIndex::build(
                store,
                LshapgParams {
                    hnsw: HnswParams {
                        m: degree / 2,
                        ef_construction: build_l,
                        seed,
                        threads: t_serial,
                    },
                    // Looser routing slack than the method's default: the
                    // paper observes LSHAPG's probabilistic rooting prunes
                    // promising neighbors and needs compensation.
                    gamma: 2.5,
                    ..LshapgParams::small()
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Nsw => {
            let idx = NswIndex::build(
                store,
                NswParams { m: degree / 2, ef_construction: build_l, seed },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
        MethodKind::Baseline(nd) => {
            let idx = IiGraph::build(
                store,
                IiParams {
                    max_degree: degree,
                    beam_width: build_l,
                    nd,
                    build_seeds: 8,
                    seed,
                    threads: t_serial,
                },
            );
            let build = idx.build_report();
            BuiltMethod { index: Box::new(idx), build }
        }
    };
    // `GASS_QUANT=sq8|sq4|pq` force-quantizes every registry-built index
    // with the named codec so the whole suite (CI legs) exercises each
    // compressed serving path. Encoding is deterministic, so plain and
    // frozen builds still answer in lockstep.
    if let Some(spec) = gass_core::quant_forced() {
        built.quantize(spec);
    }
    // `GASS_REORDER=<strategy>` likewise force-reorders every
    // registry-built index (freezing it first) so the CI leg runs the
    // whole suite over relabeled serving layouts.
    if let Some(strategy) = gass_core::reorder_forced() {
        built.reorder(strategy);
    }
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use gass_core::index::QueryParams;
    use gass_core::DistCounter;
    use gass_data::synth::deep_like;

    #[test]
    fn every_method_builds_and_answers() {
        let base = deep_like(400, 1);
        for kind in MethodKind::all_sota() {
            let built = build_method(kind, base.clone(), 7);
            assert_eq!(built.index.num_vectors(), 400, "{}", kind.name());
            assert!(built.build.dist_calcs > 0, "{}", kind.name());
            let counter = DistCounter::new();
            let res = built.index.search(
                base.get(11),
                &QueryParams::new(5, 48).with_seed_count(8),
                &counter,
            );
            assert!(!res.neighbors.is_empty(), "{}", kind.name());
            assert!(counter.get() > 0, "{}", kind.name());
            // The query vector is a dataset member; any healthy method
            // finds it at moderate beam width on easy data.
            assert_eq!(
                res.neighbors[0].id,
                11,
                "{} failed to find the exact member",
                kind.name()
            );
        }
    }

    #[test]
    fn every_method_freezes_with_identical_results() {
        // Acceptance-level invariant: freezing into CSR changes the memory
        // layout only — same neighbors, same distances, same number of
        // distance evaluations, for every registry method.
        // Stochastic seed providers (KS) advance an RNG per query, so the
        // fair comparison is two identically built indexes — one frozen —
        // queried in lockstep: identical RNG streams, identical everything
        // except the graph layout.
        let base = deep_like(300, 2);
        let queries = deep_like(6, 9);
        let params = QueryParams::new(5, 32).with_seed_count(8);
        for kind in MethodKind::all_sota() {
            let plain = build_method(kind, base.clone(), 7);
            let mut frozen = build_method(kind, base.clone(), 7);
            // A forced GASS_REORDER freezes at build time by design.
            if gass_core::reorder_forced().is_none() {
                assert!(!frozen.index.is_frozen(), "{} born frozen", kind.name());
            }
            frozen.freeze();
            assert!(frozen.index.is_frozen(), "{} did not freeze", kind.name());
            frozen.freeze(); // idempotent
            let (cp, cf) = (DistCounter::new(), DistCounter::new());
            for q in 0..queries.len() as u32 {
                let rp = plain.index.search(queries.get(q), &params, &cp);
                let rf = frozen.index.search(queries.get(q), &params, &cf);
                assert_eq!(rp.neighbors, rf.neighbors, "{} q{}", kind.name(), q);
                assert_eq!(rp.stats, rf.stats, "{} q{}", kind.name(), q);
            }
            assert_eq!(
                cp.get(),
                cf.get(),
                "{} dist-call totals differ between layouts",
                kind.name()
            );
        }
    }

    #[test]
    fn every_method_reorders_with_identical_results() {
        // Tentpole invariant: relabeling the frozen serving state with any
        // strategy is invisible to callers — same neighbor ids (original
        // label space), same distances, same traversal stats, same counted
        // distance evaluations. As with freezing, stochastic seeders make
        // the fair comparison two identically built indexes queried in
        // lockstep.
        let base = deep_like(300, 6);
        let queries = deep_like(6, 13);
        let params = QueryParams::new(5, 32).with_seed_count(8);
        // Bitwise lockstep needs effectively tie-free candidate
        // distances. The exact f32 path and the affine codecs qualify;
        // forced PQ does not — its 16-entry integer LUT sums collide
        // freely at this scale, and equal-distance candidates at the
        // beam margin resolve in label order, so pool composition (and
        // thus stats/results at the margin) is legitimately
        // label-dependent. The PQ reorder contract — permuted code rows
        // are bit-identical to the unreordered rows relabeled — is
        // property-tested in `quant::pq` and `tests/reorder.rs`.
        let lockstep =
            !matches!(gass_core::quant_forced(), Some(gass_core::CodecSpec::Pq { .. }));
        for strategy in gass_core::ReorderStrategy::ALL {
            for kind in MethodKind::all_sota() {
                let mut frozen = build_method(kind, base.clone(), 7);
                frozen.freeze();
                let mut reordered = build_method(kind, base.clone(), 7);
                reordered.reorder(strategy);
                if strategy == gass_core::ReorderStrategy::None {
                    // `None` is the explicit no-op: it must not even
                    // freeze, so the unreordered path stays bit-identical.
                    // (A forced GASS_REORDER relabels at build time, so
                    // only assert the no-op without forcing.)
                    if gass_core::reorder_forced().is_none() {
                        assert!(!reordered.index.is_reordered(), "{}", kind.name());
                    }
                    reordered.freeze();
                } else {
                    assert!(reordered.index.is_frozen(), "{} reorder must freeze", kind.name());
                    assert!(
                        reordered.index.is_reordered(),
                        "{} not reordered under {strategy}",
                        kind.name()
                    );
                    assert_eq!(reordered.index.reorder_strategy(), strategy);
                }
                let (cf, cr) = (DistCounter::new(), DistCounter::new());
                for q in 0..queries.len() as u32 {
                    let rf = frozen.index.search(queries.get(q), &params, &cf);
                    let rr = reordered.index.search(queries.get(q), &params, &cr);
                    if lockstep {
                        assert_eq!(
                            rf.neighbors,
                            rr.neighbors,
                            "{} {strategy} q{q}",
                            kind.name()
                        );
                        assert_eq!(rf.stats, rr.stats, "{} {strategy} q{q}", kind.name());
                    } else {
                        assert_eq!(rf.neighbors.len(), rr.neighbors.len());
                    }
                }
                if lockstep {
                    assert_eq!(
                        cf.get(),
                        cr.get(),
                        "{} {strategy}: dist-call totals differ across labelings",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_method_quantizes_and_still_answers() {
        // Compressed serving contract, for all 13 methods × all codecs:
        // `quantize(spec)` is idempotent per family, flips
        // `is_quantized`, routes traversal through the codes (visible in
        // the counter split), and — with the default rerank factor —
        // still pins the exact dataset member at rank 0 with its exact
        // (re-scored) distance of 0.
        let base = deep_like(400, 4);
        for kind in MethodKind::all_sota() {
            let mut built = build_method(kind, base.clone(), 7);
            for spec in gass_core::CodecSpec::ALL {
                built.quantize(spec);
                assert!(built.index.is_quantized(), "{} {spec}", kind.name());
                built.quantize(spec); // idempotent per family
                                      // The 4-bit codecs are coarser in code space: on the
                                      // weakly-connected kNN graphs (DPG, KGraph) one wrong
                                      // turn can strand the walk on an island, so give the
                                      // traversal more entry points and the exact rerank a
                                      // deeper pool than the defaults.
                let counter = DistCounter::new();
                let res = built.index.search(
                    base.get(23),
                    &QueryParams::new(5, 48).with_seed_count(16).with_rerank_factor(8),
                    &counter,
                );
                assert_eq!(
                    res.neighbors[0].id,
                    23,
                    "{} {spec} lost the exact member",
                    kind.name()
                );
                assert_eq!(res.neighbors[0].dist, 0.0, "{} {spec} inexact top-1", kind.name());
                assert!(counter.get_u8() > 0, "{} {spec} never used the codes", kind.name());
                assert!(
                    counter.get_f32() > 0,
                    "{} {spec} never re-scored exactly",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn names_align_with_paper() {
        assert_eq!(MethodKind::SptagBkt.name(), "SPTAG-BKT");
        assert_eq!(MethodKind::Baseline(NdStrategy::Rnd).name(), "II+RND");
        assert_eq!(MethodKind::all_sota().len(), 13);
        assert_eq!(MethodKind::scalable().len(), 3);
    }
}
