//! Beam search — Algorithm 1 of the paper — plus the greedy 1-NN descent
//! used by hierarchical seed selection.
//!
//! Every state-of-the-art graph method answers queries with the *same*
//! best-first beam search; they differ only in the graph they traverse and
//! the seeds they start from. This module is therefore the single search
//! implementation shared by all methods in `gass-graphs`, which is exactly
//! the normalization the paper performs across its twelve baselines.

use crate::distance::Space;
use crate::graph::GraphView;
use crate::neighbor::{Neighbor, SortedBuffer};
use crate::quant::PreparedQuery;
use crate::term::{TermState, Termination};
use crate::visited::VisitedSet;

/// Counters describing one beam-search invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes expanded (popped from the candidate buffer).
    pub hops: usize,
    /// Nodes whose distance to the query was evaluated.
    pub evaluated: usize,
}

/// Result of a beam search: the `k` best neighbors found plus traversal
/// counters.
#[derive(Clone, Debug, Default)]
pub struct SearchResult {
    /// Up to `k` nearest candidates found, closest first.
    pub neighbors: Vec<Neighbor>,
    /// Traversal counters.
    pub stats: SearchStats,
}

/// Reusable per-thread scratch (visited set + candidate buffer). Allocate
/// once, reuse across queries; `prepare` handles growth and epoch reset.
#[derive(Clone, Debug)]
pub struct SearchScratch {
    /// Epoch-versioned visited set.
    pub visited: VisitedSet,
    /// Sorted linear candidate buffer.
    pub buffer: SortedBuffer,
    /// Query mapped into quantized code space (reused across queries so
    /// the quantized path allocates nothing per search after warmup).
    pub prepared: PreparedQuery,
}

impl SearchScratch {
    /// Scratch sized for a graph of `n` nodes and beam width `l`.
    pub fn new(n: usize, l: usize) -> Self {
        Self {
            visited: VisitedSet::new(n),
            buffer: SortedBuffer::new(l.max(1)),
            prepared: PreparedQuery::default(),
        }
    }

    /// Readies the scratch for a search over `n` nodes with beam width `l`.
    pub fn prepare(&mut self, n: usize, l: usize) {
        self.visited.resize(n);
        self.visited.clear();
        self.buffer.reset(l.max(1));
    }
}

/// Beam search (Algorithm 1): warm the candidate buffer with `seeds`, then
/// repeatedly expand the closest unexpanded candidate until the buffer
/// stabilizes. Returns the `k` closest discovered nodes.
///
/// `beam_width` (the paper's `L`) controls the accuracy/efficiency
/// trade-off; it must be `>= k` for a full result set.
///
/// ```
/// use gass_core::{beam_search, AdjacencyGraph, DistCounter, SearchScratch, Space, VectorStore};
///
/// // Points 0..5 on a line, chained into a path graph.
/// let store = VectorStore::from_flat(1, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
/// let mut graph = AdjacencyGraph::new(5);
/// for i in 0..4 {
///     graph.add_undirected(i, i + 1);
/// }
/// let counter = DistCounter::new();
/// let space = Space::new(&store, &counter);
/// let mut scratch = SearchScratch::new(5, 4);
///
/// let res = beam_search(&graph, space, &[3.2], &[0], 2, 4, &mut scratch);
/// assert_eq!(res.neighbors[0].id, 3);
/// assert!(counter.get() > 0); // every evaluation was counted
/// ```
pub fn beam_search<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    scratch: &mut SearchScratch,
) -> SearchResult {
    beam_search_terminated(
        graph,
        space,
        query,
        seeds,
        k,
        beam_width,
        scratch,
        Termination::FIXED,
    )
}

/// [`beam_search`] with an adaptive [`Termination`] attached. With
/// [`Termination::FIXED`] this *is* `beam_search` — the policy hooks are
/// emission-time only (one check per expansion, right after the buffer
/// pops its best unexpanded candidate), so the visited-filter + 4-wide
/// kernel hot loop is untouched and the fixed path stays bit-identical
/// by construction.
///
/// Any other policy may stop the traversal early; because expansion
/// order is deterministic, an early-stopped run's work is a prefix of
/// the fixed run's, so relaxing `patience`/`eps`/`max_dists` can only
/// improve the result. On the quantized path the exact rerank always
/// runs, even after a budget stop — returned distances stay exact.
#[allow(clippy::too_many_arguments)]
pub fn beam_search_terminated<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    scratch: &mut SearchScratch,
    term: Termination,
) -> SearchResult {
    if space.quant().is_some() {
        return beam_search_quantized(graph, space, query, seeds, k, beam_width, scratch, term);
    }
    beam_search_full(graph, space, query, seeds, k, beam_width, scratch, None, term)
}

/// Two-phase quantized beam search: the traversal is the exact shape of
/// [`beam_search_with_sink`] but every candidate is scored with the `u8`
/// asymmetric-distance kernel over the attached
/// [`QuantizedStore`](crate::quant::QuantizedStore); the candidate buffer
/// is widened to hold at least `rerank_factor * k` entries, and the
/// leading `rerank_factor * k` candidates are re-scored with exact `f32`
/// distances before the final top-`k` cut. Returned distances are
/// therefore always exact; only the traversal ranking is approximate.
///
/// `stats.evaluated` (and the [`DistCounter`](crate::distance::DistCounter)
/// total) counts both phases — the `u8`/`f32` split is on the counter.
#[allow(clippy::too_many_arguments)]
fn beam_search_quantized<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    scratch: &mut SearchScratch,
    term: Termination,
) -> SearchResult {
    let qv = space.quant().expect("quantized beam search without a quant view");
    let n = graph.num_nodes();
    let mut stats = SearchStats::default();
    if n == 0 || seeds.is_empty() {
        return SearchResult { neighbors: Vec::new(), stats };
    }
    let rerank = qv.rerank_factor();
    let pool = beam_width.max(k.saturating_mul(rerank));
    scratch.prepare(n, pool);
    qv.store().prepare_into(query, &mut scratch.prepared);
    let mut tstate = TermState::new(term, k);

    for &s in seeds {
        if (s as usize) < n && scratch.visited.insert(s) {
            let d = space.qdist_to(&scratch.prepared, s);
            stats.evaluated += 1;
            scratch.buffer.insert(Neighbor::new(s, d));
        }
    }

    while let Some(current) = scratch.buffer.next_unexpanded() {
        // Emission-time termination: `current` is the closest unexpanded
        // candidate, so the DistRatio margin and the budget are checked
        // once per expansion, never per distance.
        if tstate.should_stop(current.dist, &scratch.buffer, stats.evaluated) {
            break;
        }
        stats.hops += 1;
        let mut pending = [0u32; 4];
        let mut fill = 0usize;
        for &nb in graph.neighbors(current.id) {
            if scratch.visited.insert(nb) {
                space.qprefetch(nb);
                pending[fill] = nb;
                fill += 1;
                if fill == 4 {
                    let ds = space.qdist_to_batch(&scratch.prepared, pending);
                    stats.evaluated += 4;
                    for (&id, &d) in pending.iter().zip(ds.iter()) {
                        scratch.buffer.insert(Neighbor::new(id, d));
                    }
                    fill = 0;
                }
            }
        }
        for &id in &pending[..fill] {
            let d = space.qdist_to(&scratch.prepared, id);
            stats.evaluated += 1;
            scratch.buffer.insert(Neighbor::new(id, d));
        }
        tstate.note_expansion(&scratch.buffer);
    }

    // Phase 2: exact rerank. Re-score the `rerank_factor * k` best
    // quantized candidates with full-precision distances (4-wide batched)
    // and return the exact top `k` of that pool.
    let cands = scratch.buffer.top_k(k.saturating_mul(rerank));
    let take = cands.len();
    let mut exact = Vec::with_capacity(take);
    let mut i = 0usize;
    while i + 4 <= take {
        let ids = [cands[i].id, cands[i + 1].id, cands[i + 2].id, cands[i + 3].id];
        let ds = space.dist_to_batch(query, ids);
        for (&id, &d) in ids.iter().zip(ds.iter()) {
            exact.push(Neighbor::new(id, d));
        }
        i += 4;
    }
    while i < take {
        exact.push(Neighbor::new(cands[i].id, space.dist_to(query, cands[i].id)));
        i += 1;
    }
    stats.evaluated += take;
    exact.sort_unstable();
    exact.truncate(k);
    SearchResult { neighbors: exact, stats }
}

/// [`beam_search`] variant that can also record **every** evaluated node in
/// `sink` (in evaluation order). Construction algorithms that select edges
/// from the *visited list* of a search (NSG, Vamana) need this.
///
/// Always runs at full precision: construction quality must not depend on
/// quantization, so any quant view on `space` is ignored here.
#[allow(clippy::too_many_arguments)]
pub fn beam_search_with_sink<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    scratch: &mut SearchScratch,
    sink: Option<&mut Vec<Neighbor>>,
) -> SearchResult {
    // Construction must see the complete visited list, so the sink path
    // is always Fixed: adaptive termination is a query-time knob only.
    beam_search_full(
        graph,
        space,
        query,
        seeds,
        k,
        beam_width,
        scratch,
        sink,
        Termination::FIXED,
    )
}

/// Full-precision traversal shared by [`beam_search_with_sink`] (always
/// Fixed) and the non-quantized arm of [`beam_search_terminated`].
#[allow(clippy::too_many_arguments)]
fn beam_search_full<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    scratch: &mut SearchScratch,
    mut sink: Option<&mut Vec<Neighbor>>,
    term: Termination,
) -> SearchResult {
    let n = graph.num_nodes();
    let mut stats = SearchStats::default();
    if n == 0 || seeds.is_empty() {
        return SearchResult { neighbors: Vec::new(), stats };
    }
    scratch.prepare(n, beam_width.max(k));
    let mut tstate = TermState::new(term, k);

    for &s in seeds {
        if (s as usize) < n && scratch.visited.insert(s) {
            let d = space.dist_to(query, s);
            stats.evaluated += 1;
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(Neighbor::new(s, d));
            }
            scratch.buffer.insert(Neighbor::new(s, d));
        }
    }

    while let Some(current) = scratch.buffer.next_unexpanded() {
        if tstate.should_stop(current.dist, &scratch.buffer, stats.evaluated) {
            break;
        }
        stats.hops += 1;
        // First-visit neighbors are evaluated four at a time through the
        // batched kernel (`l2_sq_batch`, bit-identical per vector), with a
        // scalar tail. Evaluation order — and hence sink order, counter
        // total, and buffer content — matches the one-at-a-time loop.
        //
        // Each accepted candidate's vector is software-prefetched as soon
        // as it enters the pending batch: the remaining visited-filter work
        // for the rest of the neighbor list overlaps the memory latency of
        // the rows the batched kernel is about to touch.
        let mut pending = [0u32; 4];
        let mut fill = 0usize;
        for &nb in graph.neighbors(current.id) {
            if scratch.visited.insert(nb) {
                space.prefetch(nb);
                pending[fill] = nb;
                fill += 1;
                if fill == 4 {
                    let ds = space.dist_to_batch(query, pending);
                    stats.evaluated += 4;
                    for (&id, &d) in pending.iter().zip(ds.iter()) {
                        if let Some(sink) = sink.as_deref_mut() {
                            sink.push(Neighbor::new(id, d));
                        }
                        scratch.buffer.insert(Neighbor::new(id, d));
                    }
                    fill = 0;
                }
            }
        }
        for &id in &pending[..fill] {
            let d = space.dist_to(query, id);
            stats.evaluated += 1;
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(Neighbor::new(id, d));
            }
            scratch.buffer.insert(Neighbor::new(id, d));
        }
        tstate.note_expansion(&scratch.buffer);
    }

    SearchResult { neighbors: scratch.buffer.top_k(k), stats }
}

/// How many queries [`beam_search_coalesced`] interleaves in lockstep.
///
/// Calibrated with a dependent-chain microbenchmark on the serving path:
/// one lane pays full memory latency per expansion (~130 ns/eval on the
/// 100K SQ8 tier), four lanes reach the kernel's throughput floor
/// (~28 ns/eval), and the curve is flat beyond that. Eight keeps margin
/// on deeper memory systems without outgrowing L1 (8 lanes × one
/// neighbor list of codes ≈ 24 KB in flight).
pub const COALESCE_LANES: usize = 8;

/// Interleaved multi-query quantized beam search: runs up to
/// [`COALESCE_LANES`]-sized groups of independent queries in lockstep on
/// *one* thread, alternating a traversal stage (pop the next candidate,
/// visited-filter its neighbor list, software-prefetch the surviving
/// code rows) with an evaluation stage across all lanes. Between a
/// lane's prefetch and its evaluation the other lanes' traversal work
/// executes, so each query's dependent memory accesses — the pop →
/// adjacency row → code rows chain that in-query prefetching cannot
/// cover, because the next frontier depends on the current distances —
/// overlap another query's compute. This is the execution-level payoff
/// of cross-request micro-batching (`gass-serve`): a batch is faster
/// than the sum of its queries, not just cheaper to dispatch.
///
/// Every lane's state evolution — visited-filter order, 4-wide kernel
/// grouping, candidate-buffer inserts, expansion sequence, exact rerank —
/// is exactly that of the sequential [`beam_search`], so results
/// (neighbors, distances, per-query stats, counter totals) are
/// bit-identical to running the lanes one at a time; only the hardware
/// sees the difference. Lanes without a quant view fall back to the
/// sequential search per lane (the exact path's in-query 4-wide
/// prefetching already covers most of its latency).
///
/// `seeds` holds one seed set per query; `scratches` one scratch per
/// lane (prepared internally).
///
/// A lane whose [`Termination`] fires is *retired* — dropped from both
/// stages while the remaining lanes keep interleaving — so a batch mixing
/// easy and hard queries stops paying for its easy lanes as soon as each
/// converges. With [`Termination::FIXED`] behavior and results are
/// bit-identical to the pre-policy coalesced search.
///
/// # Panics
/// Panics if `queries`, `seeds` and `scratches` lengths disagree
/// (`scratches` may be longer).
#[allow(clippy::too_many_arguments)]
pub fn beam_search_coalesced<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    queries: &[&[f32]],
    seeds: &[Vec<u32>],
    k: usize,
    beam_width: usize,
    scratches: &mut [SearchScratch],
    term: Termination,
) -> Vec<SearchResult> {
    assert_eq!(queries.len(), seeds.len(), "one seed set per query");
    assert!(scratches.len() >= queries.len(), "one scratch per lane");
    let Some(qv) = space.quant() else {
        return queries
            .iter()
            .zip(seeds)
            .enumerate()
            .map(|(i, (q, s))| {
                beam_search_terminated(
                    graph,
                    space,
                    q,
                    s,
                    k,
                    beam_width,
                    &mut scratches[i],
                    term,
                )
            })
            .collect();
    };

    let n = graph.num_nodes();
    let lanes = queries.len();
    let rerank = qv.rerank_factor();
    let pool = beam_width.max(k.saturating_mul(rerank));
    let mut stats = vec![SearchStats::default(); lanes];
    let mut active = vec![false; lanes];
    let mut tstates = vec![TermState::new(term, k); lanes];
    // Lanes that expanded a candidate this round: they owe a
    // `note_expansion` after stage B even when the expansion produced no
    // first-visit neighbors, matching the sequential search's
    // per-expansion fingerprint updates exactly.
    let mut expanded = vec![false; lanes];
    // Per-lane first-visit neighbors awaiting evaluation (prefetch issued).
    let mut pend: Vec<Vec<u32>> = vec![Vec::new(); lanes];

    // Seed phase: filter + prefetch every lane first, then evaluate, so
    // even the seed rows arrive under another lane's filter work. The
    // per-lane visit/evaluation order matches the sequential search.
    for li in 0..lanes {
        let scratch = &mut scratches[li];
        scratch.prepare(n, pool);
        if n == 0 || seeds[li].is_empty() {
            continue;
        }
        qv.store().prepare_into(queries[li], &mut scratch.prepared);
        for &s in &seeds[li] {
            if (s as usize) < n && scratch.visited.insert(s) {
                space.qprefetch(s);
                pend[li].push(s);
            }
        }
        active[li] = true;
    }
    for li in 0..lanes {
        let scratch = &mut scratches[li];
        for &s in &pend[li] {
            let d = space.qdist_to(&scratch.prepared, s);
            stats[li].evaluated += 1;
            scratch.buffer.insert(Neighbor::new(s, d));
        }
        pend[li].clear();
    }

    // Main loop: stage A (traverse + prefetch) then stage B (evaluate)
    // across all still-active lanes, until every lane's buffer stabilizes.
    loop {
        let mut any = false;
        for li in 0..lanes {
            if !active[li] {
                continue;
            }
            let scratch = &mut scratches[li];
            match scratch.buffer.next_unexpanded() {
                Some(current) => {
                    // Per-lane emission-time termination → lane retirement.
                    if tstates[li].should_stop(
                        current.dist,
                        &scratch.buffer,
                        stats[li].evaluated,
                    ) {
                        active[li] = false;
                        continue;
                    }
                    stats[li].hops += 1;
                    expanded[li] = true;
                    for &nb in graph.neighbors(current.id) {
                        if scratch.visited.insert(nb) {
                            space.qprefetch(nb);
                            pend[li].push(nb);
                        }
                    }
                    any = true;
                }
                None => active[li] = false,
            }
        }
        if !any {
            break;
        }
        for li in 0..lanes {
            if !expanded[li] {
                continue;
            }
            expanded[li] = false;
            let scratch = &mut scratches[li];
            let p = &mut pend[li];
            // Same 4-wide grouping (and scalar tail) as the sequential
            // quantized search — bit-identical distances in both arms.
            let m = p.len();
            let mut i = 0usize;
            while i + 4 <= m {
                let ids = [p[i], p[i + 1], p[i + 2], p[i + 3]];
                let ds = space.qdist_to_batch(&scratch.prepared, ids);
                stats[li].evaluated += 4;
                for (&id, &d) in ids.iter().zip(ds.iter()) {
                    scratch.buffer.insert(Neighbor::new(id, d));
                }
                i += 4;
            }
            while i < m {
                let d = space.qdist_to(&scratch.prepared, p[i]);
                stats[li].evaluated += 1;
                scratch.buffer.insert(Neighbor::new(p[i], d));
                i += 1;
            }
            p.clear();
            tstates[li].note_expansion(&scratch.buffer);
        }
    }

    // Exact rerank, cross-lane pipelined the same way: prefetch every
    // lane's candidate rows, then re-score lane by lane (the sequential
    // search's exact 4-wide grouping, so distances stay bit-identical).
    let mut cands: Vec<Vec<Neighbor>> = Vec::with_capacity(lanes);
    for scratch in scratches.iter().take(lanes) {
        let c = scratch.buffer.top_k(k.saturating_mul(rerank));
        for nb in &c {
            space.prefetch(nb.id);
        }
        cands.push(c);
    }
    let mut out = Vec::with_capacity(lanes);
    for (li, lane_cands) in cands.iter().enumerate() {
        let take = lane_cands.len();
        let mut exact = Vec::with_capacity(take);
        let mut i = 0usize;
        while i + 4 <= take {
            let ids = [
                lane_cands[i].id,
                lane_cands[i + 1].id,
                lane_cands[i + 2].id,
                lane_cands[i + 3].id,
            ];
            let ds = space.dist_to_batch(queries[li], ids);
            for (&id, &d) in ids.iter().zip(ds.iter()) {
                exact.push(Neighbor::new(id, d));
            }
            i += 4;
        }
        while i < take {
            exact.push(Neighbor::new(
                lane_cands[i].id,
                space.dist_to(queries[li], lane_cands[i].id),
            ));
            i += 1;
        }
        stats[li].evaluated += take;
        exact.sort_unstable();
        exact.truncate(k);
        out.push(SearchResult { neighbors: exact, stats: stats[li] });
    }
    out
}

/// [`beam_search`] over an index that may have been frozen into CSR form:
/// traverses `csr` when present, `graph` otherwise. Both arms are
/// statically dispatched — this is the one `match` every method's `search`
/// does, hoisted out of the traversal so the hot loop never pays virtual
/// dispatch per neighbor list.
#[allow(clippy::too_many_arguments)]
pub fn beam_search_frozen<G: GraphView + ?Sized>(
    graph: &G,
    csr: Option<&crate::graph::CsrGraph>,
    space: Space<'_>,
    query: &[f32],
    seeds: &[u32],
    k: usize,
    beam_width: usize,
    scratch: &mut SearchScratch,
    term: Termination,
) -> SearchResult {
    match csr {
        Some(c) => beam_search_terminated(c, space, query, seeds, k, beam_width, scratch, term),
        None => {
            beam_search_terminated(graph, space, query, seeds, k, beam_width, scratch, term)
        }
    }
}

/// Greedy 1-NN descent from `entry`: repeatedly move to the closest
/// neighbor until no neighbor improves. This is the per-layer routine of
/// HNSW's hierarchical seed selection (SN) and of ELPIS's leaf routing.
///
/// Allocates a fresh [`VisitedSet`]; hot paths that descend repeatedly
/// should reuse one via [`greedy_search_with`].
pub fn greedy_search<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    entry: u32,
) -> (Neighbor, SearchStats) {
    let mut visited = VisitedSet::new(graph.num_nodes());
    greedy_search_with(graph, space, query, entry, &mut visited)
}

/// [`greedy_search`] with caller-provided scratch. Every node is evaluated
/// at most once: on undirected graphs the naive descent re-scores the node
/// it just came from (and other mutual neighbors) on every hop, and the
/// visited filter removes exactly those redundant evaluations — safe
/// because the running best distance is the minimum over everything
/// already evaluated, so a revisit can never improve it. Neighbor
/// evaluations go through the 4-wide batched kernel like [`beam_search`].
///
/// With a quant view attached to `space`, the descent runs on quantized
/// distances and the final best is re-scored exactly (one `f32`
/// evaluation), so the returned distance is always exact.
pub fn greedy_search_with<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    entry: u32,
    visited: &mut VisitedSet,
) -> (Neighbor, SearchStats) {
    greedy_search_budgeted(graph, space, query, entry, visited, 0)
}

/// [`greedy_search_with`] under a hard `max_dists` evaluation budget
/// (`0` = unlimited, exactly [`greedy_search_with`]). The budget is
/// checked once per hop — before the neighbor list is touched — so an
/// exhausted descent returns the best node found so far instead of
/// finishing the climb. Routing (HNSW's upper-layer descent) degrades
/// gracefully: a mid-quality entry point costs recall far less than a
/// dropped query.
pub fn greedy_search_budgeted<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    entry: u32,
    visited: &mut VisitedSet,
    max_dists: usize,
) -> (Neighbor, SearchStats) {
    if space.quant().is_some() {
        return greedy_search_quantized(graph, space, query, entry, visited, max_dists);
    }
    let mut stats = SearchStats::default();
    visited.resize(graph.num_nodes());
    visited.clear();
    visited.insert(entry);
    let mut best = Neighbor::new(entry, space.dist_to(query, entry));
    stats.evaluated += 1;
    loop {
        if max_dists > 0 && stats.evaluated >= max_dists {
            return (best, stats);
        }
        stats.hops += 1;
        let mut improved = false;
        let mut pending = [0u32; 4];
        let mut fill = 0usize;
        for &nb in graph.neighbors(best.id) {
            if visited.insert(nb) {
                space.prefetch(nb);
                pending[fill] = nb;
                fill += 1;
                if fill == 4 {
                    let ds = space.dist_to_batch(query, pending);
                    stats.evaluated += 4;
                    for (&id, &d) in pending.iter().zip(ds.iter()) {
                        if d < best.dist {
                            best = Neighbor::new(id, d);
                            improved = true;
                        }
                    }
                    fill = 0;
                }
            }
        }
        for &id in &pending[..fill] {
            let d = space.dist_to(query, id);
            stats.evaluated += 1;
            if d < best.dist {
                best = Neighbor::new(id, d);
                improved = true;
            }
        }
        if !improved {
            return (best, stats);
        }
    }
}

/// Quantized greedy descent (see [`greedy_search_with`]): same hill-climb,
/// `u8` distances, exact re-score of the final best.
fn greedy_search_quantized<G: GraphView + ?Sized>(
    graph: &G,
    space: Space<'_>,
    query: &[f32],
    entry: u32,
    visited: &mut VisitedSet,
    max_dists: usize,
) -> (Neighbor, SearchStats) {
    let qv = space.quant().expect("quantized greedy search without a quant view");
    let mut stats = SearchStats::default();
    visited.resize(graph.num_nodes());
    visited.clear();
    visited.insert(entry);
    let mut pq = PreparedQuery::default();
    qv.store().prepare_into(query, &mut pq);
    let mut best = Neighbor::new(entry, space.qdist_to(&pq, entry));
    stats.evaluated += 1;
    loop {
        if max_dists > 0 && stats.evaluated >= max_dists {
            // Exhausted mid-climb: re-score the running best exactly so
            // the returned distance stays exact like the converged path.
            let exact = space.dist_to(query, best.id);
            stats.evaluated += 1;
            return (Neighbor::new(best.id, exact), stats);
        }
        stats.hops += 1;
        let mut improved = false;
        let mut pending = [0u32; 4];
        let mut fill = 0usize;
        for &nb in graph.neighbors(best.id) {
            if visited.insert(nb) {
                space.qprefetch(nb);
                pending[fill] = nb;
                fill += 1;
                if fill == 4 {
                    let ds = space.qdist_to_batch(&pq, pending);
                    stats.evaluated += 4;
                    for (&id, &d) in pending.iter().zip(ds.iter()) {
                        if d < best.dist {
                            best = Neighbor::new(id, d);
                            improved = true;
                        }
                    }
                    fill = 0;
                }
            }
        }
        for &id in &pending[..fill] {
            let d = space.qdist_to(&pq, id);
            stats.evaluated += 1;
            if d < best.dist {
                best = Neighbor::new(id, d);
                improved = true;
            }
        }
        if !improved {
            let exact = space.dist_to(query, best.id);
            stats.evaluated += 1;
            return (Neighbor::new(best.id, exact), stats);
        }
    }
}

/// Exhaustive scan: evaluates the query against *every* vector and returns
/// the exact `k` nearest. The paper's serial-scan baseline (Figure 1) and
/// the reference answer for recall. Runs four vectors at a time through the
/// batched kernel (bit-identical to one-at-a-time evaluation) with a scalar
/// tail, so the exact baseline benefits from the SIMD kernels too.
pub fn serial_scan(space: Space<'_>, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut heap = crate::neighbor::BoundedMaxHeap::new(k.max(1));
    let n = space.len() as u32;
    let mut id = 0u32;
    while id + 4 <= n {
        let ids = [id, id + 1, id + 2, id + 3];
        let ds = space.dist_to_batch(query, ids);
        for (&i, &d) in ids.iter().zip(ds.iter()) {
            heap.push(Neighbor::new(i, d));
        }
        id += 4;
    }
    while id < n {
        heap.push(Neighbor::new(id, space.dist_to(query, id)));
        id += 1;
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistCounter;
    use crate::graph::AdjacencyGraph;
    use crate::store::VectorStore;

    /// A 1-d line of points 0..10 chained left-right: beam search from one
    /// end must walk to the true nearest neighbor.
    fn line_world() -> (VectorStore, AdjacencyGraph) {
        let store = VectorStore::from_flat(1, (0..10).map(|i| i as f32).collect());
        let mut g = AdjacencyGraph::new(10);
        for i in 0..9u32 {
            g.add_undirected(i, i + 1);
        }
        (store, g)
    }

    #[test]
    fn beam_search_walks_to_true_nn() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 4);
        let res = beam_search(&g, space, &[7.2], &[0], 3, 4, &mut scratch);
        assert_eq!(res.neighbors[0].id, 7);
        assert_eq!(res.neighbors[1].id, 8); // |8-7.2|=0.8 < |6-7.2|=1.2
        assert_eq!(res.neighbors[2].id, 6);
        assert!(res.stats.evaluated >= 8, "must traverse the chain");
        assert_eq!(counter.get(), res.stats.evaluated as u64);
    }

    #[test]
    fn larger_beam_never_reduces_result_quality() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 8);
        let narrow = beam_search(&g, space, &[4.4], &[0], 2, 2, &mut scratch);
        let wide = beam_search(&g, space, &[4.4], &[0], 2, 8, &mut scratch);
        assert!(wide.neighbors[0].dist <= narrow.neighbors[0].dist);
        assert_eq!(wide.neighbors[0].id, 4);
    }

    #[test]
    fn empty_seeds_return_empty() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 4);
        let res = beam_search(&g, space, &[1.0], &[], 3, 4, &mut scratch);
        assert!(res.neighbors.is_empty());
    }

    #[test]
    fn sink_records_every_evaluation() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 16);
        let mut sink = Vec::new();
        let res = beam_search_with_sink(
            &g,
            space,
            &[9.0],
            &[0],
            1,
            16,
            &mut scratch,
            Some(&mut sink),
        );
        assert_eq!(sink.len(), res.stats.evaluated);
        // With beam width >= n on a connected chain, everything is visited.
        assert_eq!(sink.len(), 10);
    }

    #[test]
    fn greedy_descends_to_local_minimum() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let (best, stats) = greedy_search(&g, space, &[6.1], 0);
        assert_eq!(best.id, 6);
        assert!(stats.hops >= 6);
        // The visited filter caps evaluations at one per node: walking
        // 0->6 on the chain touches nodes 0..=7 exactly once each.
        assert_eq!(stats.evaluated, 8);
        assert_eq!(counter.get(), stats.evaluated as u64);
    }

    #[test]
    fn greedy_with_reused_scratch_matches_fresh() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut visited = crate::visited::VisitedSet::new(10);
        for q in [0.4f32, 8.7, 3.2] {
            let fresh = greedy_search(&g, space, &[q], 0);
            let reused = greedy_search_with(&g, space, &[q], 0, &mut visited);
            assert_eq!(fresh.0, reused.0);
            assert_eq!(fresh.1.evaluated, reused.1.evaluated);
        }
    }

    #[test]
    fn serial_scan_is_exact() {
        let (store, _) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let exact = serial_scan(space, &[3.3], 2);
        assert_eq!(exact[0].id, 3);
        assert_eq!(exact[1].id, 4);
        assert_eq!(counter.get(), 10);
    }

    #[test]
    fn beam_search_duplicate_seeds_counted_once() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 4);
        let res = beam_search(&g, space, &[0.0], &[5, 5, 5], 1, 4, &mut scratch);
        assert_eq!(res.neighbors[0].id, 0);
        // Seed 5 evaluated exactly once despite triplication.
        let evaluated_seed_phase = 1;
        assert!(res.stats.evaluated >= evaluated_seed_phase);
    }

    #[test]
    fn quantized_beam_search_matches_exact_on_line() {
        let (store, g) = line_world();
        let qs = crate::quant::QuantizedStore::from_store(&store);
        let counter = DistCounter::new();
        let space =
            Space::new(&store, &counter).with_quant(Some(crate::QuantView::new(&qs, 2)));
        let mut scratch = SearchScratch::new(10, 4);
        let res = beam_search(&g, space, &[7.2], &[0], 3, 4, &mut scratch);
        assert_eq!(res.neighbors[0].id, 7);
        // Rerank restores exact distances: |7 - 7.2|^2.
        assert!((res.neighbors[0].dist - 0.04).abs() < 1e-5, "{}", res.neighbors[0].dist);
        // Both phases counted, total still matches the stats.
        assert_eq!(counter.get(), res.stats.evaluated as u64);
        assert!(counter.get_u8() > 0, "traversal must run on u8 distances");
        assert!(counter.get_f32() > 0, "rerank must run on f32 distances");
    }

    #[test]
    fn quantized_buffer_holds_the_rerank_pool() {
        let (store, g) = line_world();
        let qs = crate::quant::QuantizedStore::from_store(&store);
        let counter = DistCounter::new();
        let space =
            Space::new(&store, &counter).with_quant(Some(crate::QuantView::new(&qs, 3)));
        let mut scratch = SearchScratch::new(10, 2);
        // beam_width 2 < rerank_factor * k = 6: the pool must widen.
        let res = beam_search(&g, space, &[9.0], &[0], 2, 2, &mut scratch);
        assert_eq!(res.neighbors.len(), 2);
        assert_eq!(res.neighbors[0].id, 9);
    }

    #[test]
    fn quantized_greedy_returns_exact_distance() {
        let (store, g) = line_world();
        let qs = crate::quant::QuantizedStore::from_store(&store);
        let counter = DistCounter::new();
        let space =
            Space::new(&store, &counter).with_quant(Some(crate::QuantView::new(&qs, 2)));
        let (best, stats) = greedy_search(&g, space, &[6.1], 0);
        assert_eq!(best.id, 6);
        assert!((best.dist - 0.01).abs() < 1e-4, "{}", best.dist);
        assert_eq!(counter.get(), stats.evaluated as u64);
        assert_eq!(counter.get_f32(), 1, "exactly one exact re-score");
    }

    #[test]
    fn coalesced_search_is_bit_identical_to_sequential() {
        // A 16-d random-ish world big enough that lanes traverse distinct
        // regions, with a connected ring plus chords.
        let n = 400usize;
        let dim = 16usize;
        let mut flat = Vec::with_capacity(n * dim);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..n * dim {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            flat.push((state >> 40) as f32 / 1024.0 - 8.0);
        }
        let store = VectorStore::from_flat(dim, flat);
        let mut g = AdjacencyGraph::new(n);
        for i in 0..n as u32 {
            g.add_undirected(i, (i + 1) % n as u32);
            g.add_undirected(i, (i * 7 + 13) % n as u32);
            g.add_undirected(i, (i * 31 + 5) % n as u32);
        }
        let qs = crate::quant::QuantizedStore::from_store(&store);

        let queries: Vec<Vec<f32>> = (0..7)
            .map(|q| (0..dim).map(|d| ((q * dim + d) % 17) as f32 - 8.0).collect())
            .collect();
        let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let seeds: Vec<Vec<u32>> = (0..7u32).map(|q| vec![q * 53 % n as u32, 0]).collect();

        let counter_seq = DistCounter::new();
        let space_seq =
            Space::new(&store, &counter_seq).with_quant(Some(crate::QuantView::new(&qs, 3)));
        let mut scratch = SearchScratch::new(n, 12);
        let seq: Vec<SearchResult> = query_refs
            .iter()
            .zip(&seeds)
            .map(|(q, s)| beam_search(&g, space_seq, q, s, 4, 12, &mut scratch))
            .collect();

        let counter_co = DistCounter::new();
        let space_co =
            Space::new(&store, &counter_co).with_quant(Some(crate::QuantView::new(&qs, 3)));
        let mut lane_scratch: Vec<SearchScratch> =
            (0..7).map(|_| SearchScratch::new(n, 12)).collect();
        let co = beam_search_coalesced(
            &g,
            space_co,
            &query_refs,
            &seeds,
            4,
            12,
            &mut lane_scratch,
            Termination::FIXED,
        );

        assert_eq!(seq.len(), co.len());
        for (s, c) in seq.iter().zip(&co) {
            assert_eq!(s.neighbors, c.neighbors, "ids and exact distances must match bitwise");
            assert_eq!(s.stats, c.stats, "traversal work must be identical");
        }
        assert_eq!(counter_seq.get(), counter_co.get());
        assert_eq!(counter_seq.get_u8(), counter_co.get_u8());
        assert_eq!(counter_seq.get_f32(), counter_co.get_f32());
    }

    #[test]
    fn coalesced_without_quant_falls_back_per_lane() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let queries: Vec<Vec<f32>> = vec![vec![7.2], vec![1.4]];
        let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let seeds = vec![vec![0u32], vec![9u32]];
        let mut lane_scratch: Vec<SearchScratch> =
            (0..2).map(|_| SearchScratch::new(10, 4)).collect();
        let res = beam_search_coalesced(
            &g,
            space,
            &query_refs,
            &seeds,
            2,
            4,
            &mut lane_scratch,
            Termination::FIXED,
        );
        assert_eq!(res[0].neighbors[0].id, 7);
        assert_eq!(res[1].neighbors[0].id, 1);
    }

    #[test]
    fn coalesced_handles_empty_and_out_of_range_lanes() {
        let (store, g) = line_world();
        let qs = crate::quant::QuantizedStore::from_store(&store);
        let counter = DistCounter::new();
        let space =
            Space::new(&store, &counter).with_quant(Some(crate::QuantView::new(&qs, 2)));
        let queries: Vec<Vec<f32>> = vec![vec![3.3], vec![5.0], vec![8.0]];
        let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        // Lane 1 has no seeds; lane 2 only an out-of-range seed.
        let seeds = vec![vec![0u32], vec![], vec![99u32]];
        let mut lane_scratch: Vec<SearchScratch> =
            (0..3).map(|_| SearchScratch::new(10, 4)).collect();
        let res = beam_search_coalesced(
            &g,
            space,
            &query_refs,
            &seeds,
            2,
            4,
            &mut lane_scratch,
            Termination::FIXED,
        );
        assert_eq!(res[0].neighbors[0].id, 3);
        assert!(res[1].neighbors.is_empty());
        assert!(res[2].neighbors.is_empty());
    }

    #[test]
    fn terminated_fixed_is_bit_identical_to_beam_search() {
        let (store, g) = line_world();
        let c1 = DistCounter::new();
        let mut scratch = SearchScratch::new(10, 8);
        let base = beam_search(&g, Space::new(&store, &c1), &[6.3], &[0], 3, 8, &mut scratch);
        let c2 = DistCounter::new();
        let fixed = beam_search_terminated(
            &g,
            Space::new(&store, &c2),
            &[6.3],
            &[0],
            3,
            8,
            &mut scratch,
            Termination::FIXED,
        );
        assert_eq!(base.neighbors, fixed.neighbors);
        assert_eq!(base.stats, fixed.stats);
        assert_eq!(c1.get(), c2.get());
    }

    #[test]
    fn budget_caps_traversal_work() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 8);
        // From node 0 toward 9.0: a budget of 3 stops the walk long
        // before the far end; the partial result is the best prefix.
        let term = Termination { policy: crate::term::TerminationPolicy::Fixed, max_dists: 3 };
        let res = beam_search_terminated(&g, space, &[9.0], &[0], 2, 8, &mut scratch, term);
        assert!(res.stats.evaluated <= 4, "budget overshoot is at most one expansion");
        assert!(!res.neighbors.is_empty(), "budgeted search still returns its best prefix");
    }

    #[test]
    fn saturation_stops_after_convergence() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 10);
        let fixed = beam_search(&g, space, &[0.1], &[0], 1, 10, &mut scratch);
        let c2 = DistCounter::new();
        let space2 = Space::new(&store, &c2);
        let term = Termination {
            policy: crate::term::TerminationPolicy::Saturation { patience: 2 },
            max_dists: 0,
        };
        let sat = beam_search_terminated(&g, space2, &[0.1], &[0], 1, 10, &mut scratch, term);
        // Query sits on node 0: the top-1 never changes, so saturation
        // stops after `patience` expansions while fixed walks the beam out.
        assert_eq!(sat.neighbors[0], fixed.neighbors[0]);
        assert!(sat.stats.evaluated < fixed.stats.evaluated);
    }

    #[test]
    fn greedy_budget_returns_partial_descent() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut visited = crate::visited::VisitedSet::new(10);
        let (full, full_stats) = greedy_search_with(&g, space, &[6.1], 0, &mut visited);
        assert_eq!(full.id, 6);
        let (capped, capped_stats) =
            greedy_search_budgeted(&g, space, &[6.1], 0, &mut visited, 3);
        assert!(capped_stats.evaluated <= full_stats.evaluated);
        assert!(capped_stats.evaluated <= 4, "budget stops the climb early");
        assert!(capped.dist >= full.dist, "partial descent can only be farther");
        // Unlimited budget is exactly the plain descent.
        let (unlimited, unlimited_stats) =
            greedy_search_budgeted(&g, space, &[6.1], 0, &mut visited, 0);
        assert_eq!(unlimited, full);
        assert_eq!(unlimited_stats, full_stats);
    }

    #[test]
    fn out_of_range_seeds_are_ignored() {
        let (store, g) = line_world();
        let counter = DistCounter::new();
        let space = Space::new(&store, &counter);
        let mut scratch = SearchScratch::new(10, 4);
        let res = beam_search(&g, space, &[0.0], &[99], 1, 4, &mut scratch);
        assert!(res.neighbors.is_empty());
    }
}
