//! Minimal `--key value` argument parsing (the workspace's dependency
//! budget excludes clap; the CLI surface is small enough for a hand-rolled
//! parser with good errors).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand plus its `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` with no value, or a stray positional argument.
    Malformed(String),
    /// A required option was absent.
    MissingOption(String),
    /// An option failed to parse as its expected type.
    BadValue {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
        /// Expected type label.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `gass help`)"),
            ArgError::Malformed(a) => {
                write!(f, "malformed argument `{a}` (expected --key value pairs)")
            }
            ArgError::MissingOption(k) => write!(f, "missing required option --{k}"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "option --{key}: `{value}` is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of raw arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut iter = raw.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| ArgError::Malformed(arg.clone()))?
                .to_string();
            let value = iter.next().ok_or_else(|| ArgError::Malformed(arg.clone()))?;
            options.insert(key, value);
        }
        Ok(Self { command, options })
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError::MissingOption(key.to_string()))
    }

    /// An optional parsed option; `Ok(None)` when absent.
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(argv("build --method hnsw --n 100")).unwrap();
        assert_eq!(a.command, "build");
        assert_eq!(a.require("method").unwrap(), "hnsw");
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 100);
        assert_eq!(a.get_or::<usize>("missing", 7).unwrap(), 7);
        assert_eq!(a.get_opt::<usize>("n").unwrap(), Some(100));
        assert_eq!(a.get_opt::<usize>("missing").unwrap(), None);
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(Args::parse(argv("")).unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn rejects_dangling_flag() {
        let err = Args::parse(argv("build --method")).unwrap_err();
        assert!(matches!(err, ArgError::Malformed(_)));
    }

    #[test]
    fn rejects_positional_garbage() {
        let err = Args::parse(argv("build oops")).unwrap_err();
        assert!(matches!(err, ArgError::Malformed(_)));
    }

    #[test]
    fn reports_bad_numeric_value() {
        let a = Args::parse(argv("build --n abc")).unwrap();
        let err = a.get_or::<usize>("n", 0).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
    }
}
