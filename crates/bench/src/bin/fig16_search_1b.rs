//! Figure 16: query performance at the largest (1B-analog) tier — HNSW,
//! ELPIS (with intra-query parallelism) and Vamana — plus the
//! file-backed mapped-tier leg serving a 1B-class on-disk Deep analog
//! through the sharded mmap path.
//!
//! Paper shape: ELPIS up to an order of magnitude faster to 0.95 accuracy
//! thanks to multi-threaded single-query answering.
//!
//! The mapped leg replaces the old in-memory stand-in for "1B": the base
//! streams to disk in the mapped `KIND_MSTORE` layout, the sharded index
//! builds one shard at a time ([`ShardedIndex::build_to_dir`]) so peak
//! heap stays near a single shard, and the reloaded index page-faults
//! vector rows from disk during the sweep. The default run keeps CI
//! scale (`tiers()[3]`); `GASS_FULL=1` targets the paper's 1B rows —
//! 1B x 96d is ~384 GB on disk, so size it to local storage with
//! `GASS_FULL_N` (e.g. `GASS_FULL_N=150000000` is ~58 GB) and point
//! `GASS_MAPPED_DIR` at a disk that fits. The serving path is identical
//! at every size; only the page population changes.
//!
//! [`ShardedIndex::build_to_dir`]: gass_core::ShardedIndex::build_to_dir
//!
//! ```sh
//! cargo run --release -p gass-bench --bin fig16_search_1b
//! ```

use gass_bench::{
    beam_sweep, mapped_tier_n, num_queries, results_dir, run_mapped_sharded_tier, tiers,
};
use gass_data::DatasetKind;
use gass_eval::{sweep, Table};
use gass_graphs::{build_method, ElpisIndex, ElpisParams, HnswParams, MethodKind};

/// The paper's 1B Deep tier in rows (sized down via `GASS_FULL_N`).
const PAPER_1B_ROWS: usize = 1_000_000_000;

fn main() {
    let tier = tiers()[3];
    let n = tier.n;
    let k = 10;
    let (base, queries) = DatasetKind::Deep.generate(n, num_queries(), 107);
    let truth = gass_data::ground_truth(&base, &queries, k);

    let mut table =
        Table::new(vec!["method", "L", "recall", "dist_calcs_per_query", "ms_per_query"]);
    for kind in MethodKind::scalable() {
        let built = build_method(kind, base.clone(), 107);
        for p in sweep(built.index.as_ref(), &queries, &truth, k, &beam_sweep(), 16) {
            table.row(vec![
                kind.name(),
                p.beam_width.to_string(),
                format!("{:.4}", p.recall),
                (p.dist_calcs / queries.len() as u64).to_string(),
                format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
            ]);
        }
        eprintln!("done: {}", kind.name());
    }

    // ELPIS with intra-query parallelism — the configuration behind its
    // Fig. 16 wall-clock lead.
    let leaf = (n / 8).clamp(128, 4096);
    let par = ElpisIndex::build(
        base.clone(),
        ElpisParams {
            leaf_size: leaf,
            hnsw: HnswParams { m: 10, ef_construction: 64, seed: 107, threads: 1 },
            nprobe: 8,
            parallel_query: true,
            ..ElpisParams::small()
        },
    );
    for p in sweep(&par, &queries, &truth, k, &beam_sweep(), 16) {
        table.row(vec![
            "ELPIS(par)".to_string(),
            p.beam_width.to_string(),
            format!("{:.4}", p.recall),
            (p.dist_calcs / queries.len() as u64).to_string(),
            format!("{:.3}", p.seconds * 1e3 / queries.len() as f64),
        ]);
    }
    eprintln!("done: ELPIS(par)");

    table.emit(&results_dir(), "fig16_search_1b").expect("write results");
    println!(
        "Read as Fig. 16: compare ms_per_query at ~0.95 recall; ELPIS(par) \
         should be fastest in wall-clock even where its dist calls match \
         sequential ELPIS."
    );

    // The file-backed 1B-class leg: on-disk base, bounded-heap one-shard-
    // at-a-time build, mapped sharded serving (~1M rows per shard at
    // full scale).
    let mapped_n = mapped_tier_n(&tier, PAPER_1B_ROWS);
    let shards = (mapped_n / 1_000_000).clamp(4, 1024);
    run_mapped_sharded_tier("fig16_mapped_1b", "1b", mapped_n, shards, 107);
}
