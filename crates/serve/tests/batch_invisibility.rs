//! Property: micro-batch coalescing is observationally invisible.
//!
//! For any mix of queries and per-request parameters, answering them as
//! one coalesced batch ([`gass_serve::execute_coalesced`]) returns
//! bit-identical neighbors (same ids, same distance *bits*) and the same
//! distance-computation total as answering them one at a time through
//! `index.search` — the frozen-CSR beam search the offline path uses.
//! Batching may change throughput and latency, never answers.

use gass_core::distance::DistCounter;
use gass_core::index::{AnnIndex, QueryParams};
use gass_graphs::{HnswIndex, HnswParams};
use gass_serve::execute_coalesced;
use proptest::prelude::*;
use std::sync::OnceLock;

const N: usize = 2_000;
const DIM: usize = 12;

/// One shared frozen serving index for every property case (building an
/// HNSW per case would dominate the run).
fn index() -> &'static HnswIndex {
    static INDEX: OnceLock<HnswIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        let base = gass_data::synth::manifold_mixture(N, DIM, 8, 16, 0.5, 0.1, 77);
        let mut idx = HnswIndex::build(
            base,
            HnswParams { m: 8, ef_construction: 64, seed: 77, threads: 2 },
        );
        idx.freeze();
        idx.align_store();
        idx
    })
}

/// A batch of 1–24 queries, each with its own parameter draw (so batches
/// mix coalescing groups, exercising the grouping + scatter path).
fn batches() -> impl Strategy<Value = Vec<(Vec<f32>, usize, usize)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-1.5f32..1.5, DIM),
            1usize..=10, // k
            0usize..=2,  // beam bump index
        ),
        1..=24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coalesced_batch_is_bit_identical_to_per_query_search(batch in batches()) {
        let idx = index();
        let jobs: Vec<(Vec<f32>, QueryParams)> = batch
            .into_iter()
            .map(|(q, k, bump)| {
                let beam = [k.max(8), 32, 64][bump];
                (q, QueryParams::new(k, beam.max(k)))
            })
            .collect();

        let one_by_one_counter = DistCounter::new();
        let expected: Vec<_> = jobs
            .iter()
            .map(|(q, p)| idx.search(q, p, &one_by_one_counter))
            .collect();

        let coalesced_counter = DistCounter::new();
        let got = execute_coalesced(idx, &jobs, &coalesced_counter);

        prop_assert_eq!(got.len(), expected.len());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                g.neighbors.len(),
                e.neighbors.len(),
                "query {} neighbor count", i
            );
            for (gn, en) in g.neighbors.iter().zip(&e.neighbors) {
                prop_assert_eq!(gn.id, en.id, "query {} id", i);
                prop_assert_eq!(
                    gn.dist.to_bits(),
                    en.dist.to_bits(),
                    "query {} distance bits", i
                );
            }
        }
        prop_assert_eq!(
            coalesced_counter.get(),
            one_by_one_counter.get(),
            "distance totals"
        );
    }
}
