//! Offline stand-in for `criterion`.
//!
//! Provides the group/`bench_with_input` API surface the workspace's
//! benches use, backed by a simple calibrated wall-clock loop: warm up,
//! estimate iterations per sample from the warm-up rate, then time
//! `sample_size` samples and report median and spread. No statistical
//! machinery, plots, or saved baselines — but `cargo bench` runs, honors
//! the same code paths, and prints comparable per-iteration timings.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { function: function.into(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm up while counting iterations to calibrate sample size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b, input);
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b, input);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{}/{:<32} time: [{} {} {}]  ({} samples x {} iters)",
            self.name,
            id.to_string(),
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi),
            samples.len(),
            iters_per_sample,
        );
        self.criterion.ran_any = true;
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    ran_any: bool,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the
            // timing loops there, mirroring real criterion.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(30))
                .warm_up_time(Duration::from_millis(10));
            let mut calls = 0u64;
            g.bench_with_input(BenchmarkId::new("noop", 1), &1usize, |b, _| {
                b.iter(|| calls += 1)
            });
            g.finish();
            assert!(calls > 0);
        }
        assert!(c.ran_any);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
