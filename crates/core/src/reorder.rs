//! Cache-locality graph reordering: permutation-based relabeling of the
//! frozen serving state.
//!
//! Graph construction assigns node ids in insertion order, so after
//! `freeze()` the beam search hops across cache lines in an order that has
//! nothing to do with traversal locality. This module computes a
//! locality-preserving permutation over the frozen [`CsrGraph`] and applies
//! it *atomically* across the whole serving state — CSR offsets/neighbors,
//! the aligned [`VectorStore`] rows, and the SQ8 [`QuantizedStore`] rows —
//! while an [`IdRemap`] keeps the original ids addressable so `search()`
//! results are unchanged.
//!
//! The permutation relabels nodes; it does not add or drop edges, so a
//! traversal from remapped seeds visits exactly the same vectors in the
//! same order and the `DistCounter` totals are identical across
//! strategies. What changes is *where* those vectors live: BFS/RCM place
//! neighbors on adjacent rows (small [`mean_edge_span`]), so each hop's
//! neighbor expansion touches fewer cache lines and the software prefetch
//! issued by the beam search covers more useful bytes per miss.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::distance::QuantView;
use crate::graph::{CsrGraph, GraphView};
use crate::index::QueryParams;
use crate::quant::{CodecSpec, CodecStore};
use crate::search::SearchResult;
use crate::store::VectorStore;

/// Node-relabeling strategy applied at (or after) freeze time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReorderStrategy {
    /// Keep construction order. The serving path is bit-identical to an
    /// index that was never reordered.
    #[default]
    None,
    /// Sort nodes by out-degree, descending (hubs first). Ties keep
    /// construction order.
    DegreeDesc,
    /// Breadth-first order seeded from the method's entry point(s);
    /// unreached components are traversed from the lowest remaining id.
    Bfs,
    /// Reverse Cuthill–McKee: BFS that enqueues neighbors in ascending
    /// degree order, final order reversed. The classic bandwidth-
    /// minimizing ordering for sparse matrices.
    Rcm,
    /// Pack the top-degree hubs first, then each hub's neighborhood, then
    /// the remainder in degree order.
    HubCluster,
}

impl ReorderStrategy {
    /// All strategies, in sweep order.
    pub const ALL: [ReorderStrategy; 5] = [
        ReorderStrategy::None,
        ReorderStrategy::DegreeDesc,
        ReorderStrategy::Bfs,
        ReorderStrategy::Rcm,
        ReorderStrategy::HubCluster,
    ];

    /// Canonical lowercase name (accepted back by [`FromStr`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            ReorderStrategy::None => "none",
            ReorderStrategy::DegreeDesc => "degree",
            ReorderStrategy::Bfs => "bfs",
            ReorderStrategy::Rcm => "rcm",
            ReorderStrategy::HubCluster => "hub",
        }
    }
}

impl fmt::Display for ReorderStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ReorderStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(ReorderStrategy::None),
            "degree" | "degree_desc" | "degreedesc" => Ok(ReorderStrategy::DegreeDesc),
            "bfs" => Ok(ReorderStrategy::Bfs),
            "rcm" => Ok(ReorderStrategy::Rcm),
            "hub" | "hubcluster" | "hub_cluster" => Ok(ReorderStrategy::HubCluster),
            other => Err(format!(
                "unknown reorder strategy '{other}' (expected none|degree|bfs|rcm|hub)"
            )),
        }
    }
}

/// A validated bijection between the original ("old") id space and the
/// permuted ("new") id space.
///
/// `new_to_old[new] = old` is the placement order; `old_to_new` is its
/// inverse. Construction rejects anything that is not a permutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdRemap {
    new_to_old: Vec<u32>,
    old_to_new: Vec<u32>,
}

impl IdRemap {
    /// Builds the remap from a placement order, validating that it is a
    /// bijection over `0..order.len()`.
    pub fn from_new_to_old(new_to_old: Vec<u32>) -> Result<Self, String> {
        let n = new_to_old.len();
        let mut old_to_new = vec![u32::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            let slot = old_to_new
                .get_mut(old as usize)
                .ok_or_else(|| format!("id {old} out of range for {n} nodes"))?;
            if *slot != u32::MAX {
                return Err(format!("id {old} appears twice — not a permutation"));
            }
            *slot = new as u32;
        }
        Ok(Self { new_to_old, old_to_new })
    }

    /// The identity remap over `n` ids.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<u32> = (0..n as u32).collect();
        Self { new_to_old: ids.clone(), old_to_new: ids }
    }

    /// Number of ids covered.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// True when the remap covers no ids.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// True when every id maps to itself.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// Original id of the node now labeled `new`.
    #[inline]
    pub fn to_old(&self, new: u32) -> u32 {
        self.new_to_old[new as usize]
    }

    /// Current label of the node originally labeled `old`.
    #[inline]
    pub fn to_new(&self, old: u32) -> u32 {
        self.old_to_new[old as usize]
    }

    /// Placement order (`new → old`).
    pub fn new_to_old(&self) -> &[u32] {
        &self.new_to_old
    }

    /// Inverse table (`old → new`).
    pub fn old_to_new(&self) -> &[u32] {
        &self.old_to_new
    }

    /// Composes this remap (original ↔ mid) with a `later` one
    /// (mid ↔ newest) into a single original ↔ newest remap.
    pub fn compose(&self, later: &IdRemap) -> IdRemap {
        assert_eq!(self.len(), later.len(), "composing remaps of different sizes");
        let new_to_old: Vec<u32> =
            later.new_to_old.iter().map(|&mid| self.to_old(mid)).collect();
        IdRemap::from_new_to_old(new_to_old).expect("composition of bijections is a bijection")
    }

    /// Approximate heap bytes of both tables.
    pub fn heap_bytes(&self) -> usize {
        (self.new_to_old.capacity() + self.old_to_new.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Computes the placement order for `strategy` over `graph`, seeded (for
/// BFS/RCM) from `entries` in the graph's *current* id space.
pub fn compute_permutation<G: GraphView + ?Sized>(
    graph: &G,
    strategy: ReorderStrategy,
    entries: &[u32],
) -> IdRemap {
    let n = graph.num_nodes();
    let order: Vec<u32> = match strategy {
        ReorderStrategy::None => (0..n as u32).collect(),
        ReorderStrategy::DegreeDesc => {
            let mut ids: Vec<u32> = (0..n as u32).collect();
            // Stable: equal degrees keep construction order.
            ids.sort_by_key(|&u| std::cmp::Reverse(graph.neighbors(u).len()));
            ids
        }
        ReorderStrategy::Bfs => bfs_order(graph, entries, false),
        ReorderStrategy::Rcm => {
            let mut order = bfs_order(graph, entries, true);
            order.reverse();
            order
        }
        ReorderStrategy::HubCluster => hub_cluster_order(graph),
    };
    IdRemap::from_new_to_old(order).expect("computed order is a permutation")
}

/// BFS placement from `entries`; unreached components restart from the
/// lowest unplaced id. With `by_degree`, neighbors are enqueued in
/// ascending degree order (the Cuthill–McKee rule) instead of stored
/// order.
fn bfs_order<G: GraphView + ?Sized>(graph: &G, entries: &[u32], by_degree: bool) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut placed = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut place = |u: u32, order: &mut Vec<u32>, queue: &mut VecDeque<u32>| {
        if !placed[u as usize] {
            placed[u as usize] = true;
            order.push(u);
            queue.push_back(u);
        }
    };
    for &e in entries {
        if (e as usize) < n {
            place(e, &mut order, &mut queue);
        }
    }
    let mut next_root = 0u32;
    loop {
        while let Some(u) = queue.pop_front() {
            if by_degree {
                scratch.clear();
                scratch.extend_from_slice(graph.neighbors(u));
                scratch.sort_by_key(|&v| (graph.neighbors(v).len(), v));
                for &v in &scratch {
                    place(v, &mut order, &mut queue);
                }
            } else {
                for &v in graph.neighbors(u) {
                    place(v, &mut order, &mut queue);
                }
            }
        }
        while (next_root as usize) < n && order.len() < n {
            let candidate = next_root;
            next_root += 1;
            place(candidate, &mut order, &mut queue);
            if !queue.is_empty() {
                break;
            }
        }
        if order.len() == n {
            break;
        }
    }
    order
}

/// Hubs (top ~3% by degree) first, then each hub's unplaced neighborhood,
/// then the remainder in degree order.
fn hub_cluster_order<G: GraphView + ?Sized>(graph: &G) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(graph.neighbors(u).len()));
    let hub_count = (n / 32).max(1).min(n);
    let mut placed = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for &h in &by_degree[..hub_count] {
        placed[h as usize] = true;
        order.push(h);
    }
    for hi in 0..hub_count {
        let h = order[hi];
        for &v in graph.neighbors(h) {
            if !placed[v as usize] {
                placed[v as usize] = true;
                order.push(v);
            }
        }
    }
    for &u in &by_degree {
        if !placed[u as usize] {
            placed[u as usize] = true;
            order.push(u);
        }
    }
    order
}

/// Mean `|u − v|` over all directed edges: the id-distance a neighbor
/// expansion spans on average. A proxy for the cache misses the traversal
/// takes per hop — adjacent ids share cache lines and prefetch strides,
/// distant ids do not.
pub fn mean_edge_span<G: GraphView + ?Sized>(graph: &G) -> f64 {
    let n = graph.num_nodes();
    let mut sum = 0.0f64;
    let mut edges = 0u64;
    for u in 0..n as u32 {
        for &v in graph.neighbors(u) {
            sum += (i64::from(u) - i64::from(v)).unsigned_abs() as f64;
            edges += 1;
        }
    }
    if edges == 0 {
        0.0
    } else {
        sum / edges as f64
    }
}

// `GASS_REORDER` forcing, mirroring the `GASS_QUANT` tri-state: the env
// var is read once, then every registry build applies the strategy after
// construction. 0 = unread, 1 = off, 2.. = strategy.
const RF_UNINIT: u8 = 0;
const RF_OFF: u8 = 1;
static REORDER_FORCED: AtomicU8 = AtomicU8::new(RF_UNINIT);

#[cold]
fn init_reorder_forced() -> u8 {
    let state = match std::env::var("GASS_REORDER") {
        Ok(v) => match v.parse::<ReorderStrategy>() {
            Ok(ReorderStrategy::None) | Err(_) => RF_OFF,
            Ok(ReorderStrategy::DegreeDesc) => RF_OFF + 1,
            Ok(ReorderStrategy::Bfs) => RF_OFF + 2,
            Ok(ReorderStrategy::Rcm) => RF_OFF + 3,
            Ok(ReorderStrategy::HubCluster) => RF_OFF + 4,
        },
        Err(_) => RF_OFF,
    };
    REORDER_FORCED.store(state, Ordering::Relaxed);
    state
}

/// The strategy forced by `GASS_REORDER` (e.g. `rcm`), if any. Read once;
/// the registry applies it to every freshly built method so the whole
/// test suite can run over a reordered serving state.
pub fn reorder_forced() -> Option<ReorderStrategy> {
    let mut state = REORDER_FORCED.load(Ordering::Relaxed);
    if state == RF_UNINIT {
        state = init_reorder_forced();
    }
    match state {
        s if s == RF_OFF + 1 => Some(ReorderStrategy::DegreeDesc),
        s if s == RF_OFF + 2 => Some(ReorderStrategy::Bfs),
        s if s == RF_OFF + 3 => Some(ReorderStrategy::Rcm),
        s if s == RF_OFF + 4 => Some(ReorderStrategy::HubCluster),
        _ => None,
    }
}

/// The shared frozen/quantized/reordered serving state every method
/// carries: the CSR snapshot, the optional compressed code store (SQ8,
/// SQ4 or PQ), and the id remap introduced by reordering.
///
/// Methods hold one `ServingState` instead of separate `csr`/`quant`
/// fields, so `freeze`/`quantize`/`reorder` wiring lands once. The state
/// machine is: `freeze()` snapshots the graph into CSR; `quantize()`
/// encodes the (current) store with the requested codec; `reorder()`
/// forces a freeze, permutes CSR + store + codes in place, and records
/// the composed [`IdRemap`] so [`ServingState::finish`] can translate
/// result ids back to the original space.
#[derive(Clone, Debug, Default)]
pub struct ServingState {
    csr: Option<CsrGraph>,
    quant: Option<Box<dyn CodecStore>>,
    remap: Option<IdRemap>,
    strategy: ReorderStrategy,
}

impl ServingState {
    /// Fresh state: not frozen, not quantized, not reordered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots `graph` into the contiguous CSR layout (idempotent).
    pub fn freeze<G: GraphView + ?Sized>(&mut self, graph: &G) {
        if self.csr.is_none() {
            self.csr = Some(CsrGraph::from_view(graph));
        }
    }

    /// True once [`ServingState::freeze`] has run.
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    /// The CSR snapshot, if frozen.
    pub fn csr(&self) -> Option<&CsrGraph> {
        self.csr.as_ref()
    }

    /// Encodes `store` with the codec named by `spec`. Idempotent when the
    /// installed codec already is the resolved spec (family *and* PQ
    /// geometry); any other request re-encodes, so one built index can
    /// walk the compression ladder. Call *after* any permutation of the
    /// store, or use [`ServingState::reorder`] which keeps the codes in
    /// sync.
    pub fn quantize(&mut self, store: &VectorStore, spec: CodecSpec) {
        let want = spec.resolve(store.dim());
        if self.quant.as_ref().map(|q| q.spec()) != Some(want) {
            self.quant = Some(want.build(store));
        }
    }

    /// True once [`ServingState::quantize`] has run.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The compressed code store, if quantized.
    pub fn quant(&self) -> Option<&dyn CodecStore> {
        self.quant.as_deref()
    }

    /// Installs a previously built (e.g. persisted) code store, replacing
    /// any present one. The caller asserts it matches the current store
    /// layout — in particular, that it was encoded *after* any reorder.
    pub fn set_quant(&mut self, quant: Box<dyn CodecStore>) {
        self.quant = Some(quant);
    }

    /// The quantized traversal view for `params`, if quantized.
    pub fn quant_view(&self, params: &QueryParams) -> Option<QuantView<'_>> {
        self.quant.as_deref().map(|q| QuantView::new(q, params.rerank_factor))
    }

    /// Relabels the whole serving state with `strategy`: forces a freeze,
    /// permutes the CSR graph, the vector store, and the SQ8 codes (if
    /// present), and records the composed id remap. `entries` seed the
    /// BFS/RCM orders and are interpreted in the *current* id space.
    ///
    /// Returns the incremental remap (current → newest ids) so the caller
    /// can relabel its seed structures; `None` when `strategy` is
    /// [`ReorderStrategy::None`] (a no-op that leaves the state
    /// bit-identical).
    pub fn reorder<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        store: &mut VectorStore,
        strategy: ReorderStrategy,
        entries: &[u32],
    ) -> Option<IdRemap> {
        if strategy == ReorderStrategy::None {
            return None;
        }
        self.freeze(graph);
        let csr = self.csr.as_ref().expect("frozen above");
        let map = compute_permutation(csr, strategy, entries);
        self.csr = Some(csr.permute(&map));
        *store = store.permute(&map);
        if let Some(q) = &self.quant {
            self.quant = Some(q.permute(&map));
        }
        self.remap = Some(match self.remap.take() {
            Some(prev) => prev.compose(&map),
            None => map.clone(),
        });
        self.strategy = strategy;
        Some(map)
    }

    /// The strategy last applied ([`ReorderStrategy::None`] if never
    /// reordered).
    pub fn strategy(&self) -> ReorderStrategy {
        self.strategy
    }

    /// True once a non-`None` reorder has been applied.
    pub fn is_reordered(&self) -> bool {
        self.remap.is_some()
    }

    /// The composed original ↔ current remap, if reordered.
    pub fn remap(&self) -> Option<&IdRemap> {
        self.remap.as_ref()
    }

    /// Installs a previously persisted remap (for indexes whose
    /// substrates were saved already-permuted). Does not move any data.
    pub fn install_remap(&mut self, remap: IdRemap, strategy: ReorderStrategy) {
        self.remap = Some(remap);
        self.strategy = strategy;
    }

    /// Maps an *original* id into the current id space (identity when not
    /// reordered). Use for hard-coded fallback entries like node `0`.
    #[inline]
    pub fn to_new(&self, original: u32) -> u32 {
        match &self.remap {
            Some(m) => m.to_new(original),
            None => original,
        }
    }

    /// Maps a *current* id back to the original id space.
    #[inline]
    pub fn to_old(&self, current: u32) -> u32 {
        match &self.remap {
            Some(m) => m.to_old(current),
            None => current,
        }
    }

    /// Translates a search result's ids back to the original id space.
    /// Distances and traversal counters are untouched.
    #[inline]
    pub fn finish(&self, mut res: SearchResult) -> SearchResult {
        if let Some(m) = &self.remap {
            for nb in &mut res.neighbors {
                nb.id = m.to_old(nb.id);
            }
        }
        res
    }

    /// Heap bytes of the CSR snapshot (counted as graph memory).
    pub fn graph_bytes(&self) -> usize {
        self.csr.as_ref().map_or(0, |c| c.heap_bytes())
    }

    /// Heap bytes of the code store plus the id remap (counted as
    /// auxiliary serving memory).
    pub fn aux_bytes(&self) -> usize {
        self.quant.as_ref().map_or(0, |q| q.heap_bytes())
            + self.remap.as_ref().map_or(0, |m| m.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjacencyGraph;

    fn ring(n: usize) -> CsrGraph {
        let mut g = AdjacencyGraph::new(n);
        for i in 0..n {
            g.add_undirected(i as u32, ((i + 1) % n) as u32);
        }
        CsrGraph::from_view(&g)
    }

    #[test]
    fn strategies_produce_bijections() {
        let g = ring(64);
        for s in ReorderStrategy::ALL {
            let map = compute_permutation(&g, s, &[3]);
            assert_eq!(map.len(), 64, "{s}");
            for old in 0..64u32 {
                assert_eq!(map.to_old(map.to_new(old)), old, "{s}");
            }
        }
    }

    #[test]
    fn non_permutations_are_rejected() {
        assert!(IdRemap::from_new_to_old(vec![0, 0, 1]).is_err());
        assert!(IdRemap::from_new_to_old(vec![0, 5]).is_err());
        assert!(IdRemap::from_new_to_old(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn quantize_reencodes_on_codec_or_geometry_change() {
        let store = VectorStore::from_flat(
            8,
            (0..64).map(|i| ((i * 7) as f32 * 0.43).sin() * 4.0).collect(),
        );
        let mut s = ServingState::new();
        s.quantize(&store, CodecSpec::Sq8);
        assert_eq!(s.quant().unwrap().spec(), CodecSpec::Sq8);
        // Same family: no re-encode.
        s.quantize(&store, CodecSpec::Sq8);
        assert_eq!(s.quant().unwrap().spec(), CodecSpec::Sq8);
        // Different family: re-encode.
        s.quantize(&store, CodecSpec::Pq { m: None });
        let auto = s.quant().unwrap().spec();
        assert_eq!(auto, CodecSpec::Pq { m: None }.resolve(8));
        // Same family but different PQ geometry: must re-encode, not
        // silently keep the old codes.
        s.quantize(&store, CodecSpec::Pq { m: Some(4) });
        assert_eq!(s.quant().unwrap().spec(), CodecSpec::Pq { m: Some(4) });
        // An auto request over a non-auto geometry re-encodes back.
        s.quantize(&store, CodecSpec::Pq { m: None });
        assert_eq!(s.quant().unwrap().spec(), auto);
    }

    #[test]
    fn bfs_from_entry_places_entry_first() {
        let g = ring(16);
        let map = compute_permutation(&g, ReorderStrategy::Bfs, &[7]);
        assert_eq!(map.to_old(0), 7);
        assert_eq!(map.to_new(7), 0);
    }

    #[test]
    fn bfs_covers_disconnected_components() {
        // Two disjoint 4-cycles.
        let mut g = AdjacencyGraph::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                g.add_undirected(base + i, base + (i + 1) % 4);
            }
        }
        let csr = CsrGraph::from_view(&g);
        for s in [ReorderStrategy::Bfs, ReorderStrategy::Rcm] {
            let map = compute_permutation(&csr, s, &[5]);
            assert_eq!(map.len(), 8, "{s}");
        }
    }

    #[test]
    fn rcm_shrinks_edge_span_on_a_shuffled_ring() {
        // A ring relabeled by a fixed stride permutation has terrible
        // locality; RCM must restore near-adjacent labels.
        let n = 128usize;
        let mut g = AdjacencyGraph::new(n);
        for i in 0..n {
            let a = (i * 53) % n;
            let b = ((i + 1) * 53) % n;
            g.add_undirected(a as u32, b as u32);
        }
        let csr = CsrGraph::from_view(&g);
        let before = mean_edge_span(&csr);
        let map = compute_permutation(&csr, ReorderStrategy::Rcm, &[0]);
        let after = mean_edge_span(&csr.permute(&map));
        assert!(
            after < before / 4.0,
            "RCM should collapse the span: before={before:.1} after={after:.1}"
        );
    }

    #[test]
    fn degree_desc_places_hubs_first() {
        let mut g = AdjacencyGraph::new(8);
        // Node 5 is a hub connected to everyone.
        for i in 0..8u32 {
            if i != 5 {
                g.add_undirected(5, i);
            }
        }
        let csr = CsrGraph::from_view(&g);
        for s in [ReorderStrategy::DegreeDesc, ReorderStrategy::HubCluster] {
            let map = compute_permutation(&csr, s, &[]);
            assert_eq!(map.to_old(0), 5, "{s} must place the hub first");
        }
    }

    #[test]
    fn compose_chains_two_remaps() {
        let a = IdRemap::from_new_to_old(vec![2, 0, 1]).unwrap();
        let b = IdRemap::from_new_to_old(vec![1, 2, 0]).unwrap();
        let c = a.compose(&b);
        for orig in 0..3u32 {
            assert_eq!(c.to_new(orig), b.to_new(a.to_new(orig)));
            assert_eq!(c.to_old(c.to_new(orig)), orig);
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in ReorderStrategy::ALL {
            assert_eq!(s.as_str().parse::<ReorderStrategy>().unwrap(), s);
        }
        assert!("bogus".parse::<ReorderStrategy>().is_err());
    }
}
