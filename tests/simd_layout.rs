//! Property-based tests (proptest) for the SIMD distance kernels and the
//! cache-aligned vector-store layout: the dispatched kernels must agree
//! with the scalar reference at every dimension (including ragged tails
//! that exercise the masked SIMD epilogue), and an aligned, padded store
//! must be observationally identical to the packed layout through every
//! public access path.

use gass_core::distance::{
    dot, dot_scalar, l2_sq, l2_sq_batch, l2_sq_batch_scalar, l2_sq_scalar,
};
use gass_core::store::VectorStore;
use proptest::prelude::*;

/// A pair of same-length vectors with dimension anywhere in `1..=200`,
/// covering full SIMD blocks, partial blocks, and sub-lane tails.
fn arb_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..=200).prop_flat_map(|dim| {
        (
            prop::collection::vec(-100.0f32..100.0, dim..=dim),
            prop::collection::vec(-100.0f32..100.0, dim..=dim),
        )
    })
}

fn rel_close(a: f32, b: f32) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-4 * scale
}

fn store_with(dim: usize, rows: &[Vec<f32>], aligned: bool) -> VectorStore {
    let mut s = if aligned { VectorStore::aligned(dim) } else { VectorStore::new(dim) };
    for r in rows {
        s.push(r);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dispatched `l2_sq` and `dot` agree with the scalar reference
    /// within 1e-4 relative tolerance for every dimension in 1..=200.
    /// (On this codebase they are in fact bit-identical — the SIMD
    /// kernels replicate the scalar lane arithmetic — but the contract
    /// the rest of the system relies on is the tolerance.)
    #[test]
    fn simd_kernels_match_scalar(pair in arb_pair()) {
        let (a, b) = pair;
        prop_assert!(rel_close(l2_sq(&a, &b), l2_sq_scalar(&a, &b)));
        prop_assert!(rel_close(dot(&a, &b), dot_scalar(&a, &b)));
    }

    /// The 4-wide batched kernel agrees with four independent scalar
    /// evaluations, lane by lane.
    #[test]
    fn batched_kernel_matches_scalar(
        pair in arb_pair(),
        lane_seed in 0u64..1000,
    ) {
        let (q, b0) = pair;
        // Derive three more rows of the same dimension from the first.
        let rot = |v: &[f32], k: usize| -> Vec<f32> {
            let mut w = v.to_vec();
            w.rotate_left(k % v.len());
            w
        };
        let b1 = rot(&b0, 1 + (lane_seed as usize % 7));
        let b2 = rot(&q, 2);
        let b3 = rot(&b0, 3);
        let batched = l2_sq_batch(&q, [&b0, &b1, &b2, &b3]);
        let scalar = l2_sq_batch_scalar(&q, [&b0, &b1, &b2, &b3]);
        for lane in 0..4 {
            prop_assert!(rel_close(batched[lane], scalar[lane]),
                "lane {lane}: {} vs {}", batched[lane], scalar[lane]);
        }
    }

    /// An aligned (64-byte, padded-stride) store is observationally
    /// identical to the packed layout: `push`/`get`/`iter`/`subset`
    /// return exactly the same logical rows, and padding is never
    /// exposed.
    #[test]
    fn aligned_store_matches_packed(
        rows in (1usize..=40).prop_flat_map(|dim| prop::collection::vec(
            prop::collection::vec(-50.0f32..50.0, dim..=dim), 1..20)),
    ) {
        let dim = rows[0].len();
        let packed = store_with(dim, &rows, false);
        let aligned = store_with(dim, &rows, true);
        prop_assert!(aligned.is_aligned());
        prop_assert_eq!(packed.len(), aligned.len());
        prop_assert_eq!(packed.dim(), aligned.dim());
        for i in 0..packed.len() as u32 {
            prop_assert_eq!(packed.get(i), aligned.get(i), "row {} differs", i);
            prop_assert_eq!(aligned.get(i).len(), dim, "padding leaked into get()");
        }
        for ((ia, ra), (ib, rb)) in packed.iter().zip(aligned.iter()) {
            prop_assert_eq!(ia, ib);
            prop_assert_eq!(ra, rb);
        }
        // Subsets preserve contents (and the source's layout).
        let ids: Vec<u32> = (0..packed.len() as u32).step_by(2).collect();
        let sub_p = packed.subset(&ids);
        let sub_a = aligned.subset(&ids);
        prop_assert!(sub_a.is_aligned() && !sub_p.is_aligned());
        for i in 0..ids.len() as u32 {
            prop_assert_eq!(sub_p.get(i), sub_a.get(i));
        }
        // Layout conversions round-trip the logical contents.
        prop_assert_eq!(packed.to_aligned().to_flat_vec(), packed.to_flat_vec());
        let repacked = aligned.to_packed();
        prop_assert_eq!(repacked.as_flat(), &packed.to_flat_vec()[..]);
    }

    /// Both layouts serialize identically (serde and the binary persist
    /// format): padding is an in-memory artifact, never an on-disk one.
    #[test]
    fn aligned_store_serializes_like_packed(
        rows in (1usize..=24).prop_flat_map(|dim| prop::collection::vec(
            prop::collection::vec(-50.0f32..50.0, dim..=dim), 1..12)),
    ) {
        let dim = rows[0].len();
        let packed = store_with(dim, &rows, false);
        let aligned = store_with(dim, &rows, true);
        let enc_p = gass_core::persist::encode_store(&packed);
        let enc_a = gass_core::persist::encode_store(&aligned);
        prop_assert_eq!(&enc_p, &enc_a, "persist bytes differ between layouts");
        let back = gass_core::persist::decode_store(enc_a).unwrap();
        prop_assert_eq!(back.as_flat(), &packed.to_flat_vec()[..]);
        // serde output (via the JSON serializer used for results files).
        let dir = std::env::temp_dir().join("gass_simd_layout_props");
        let jp = gass_eval::write_json(&dir, "packed", &packed).unwrap();
        let ja = gass_eval::write_json(&dir, "aligned", &aligned).unwrap();
        prop_assert_eq!(
            std::fs::read_to_string(jp).unwrap(),
            std::fs::read_to_string(ja).unwrap(),
            "serde JSON differs between layouts"
        );
    }
}
